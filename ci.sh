#!/usr/bin/env bash
# CI entry point: build everything, run the full test pyramid, check style.
#
# The build is fully offline — external dependencies are vendored under
# vendor/ (see README.md) — so this runs in a network-less container.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

# The whole suite runs twice: single-threaded and on a 4-thread pool. The
# execution layer's determinism contract says results are bit-identical, so
# both runs must pass the *same* assertions.
echo "== cargo test -q (TUCKER_THREADS=1) =="
TUCKER_THREADS=1 cargo test -q

echo "== cargo test -q (TUCKER_THREADS=4) =="
TUCKER_THREADS=4 cargo test -q

# The microkernel determinism contract (ISSUE 8) says the TUCKER_SIMD tier is
# invisible in the result bits. Re-run the kernel-level suites and the
# pipeline determinism suites under a forced-scalar tier and under explicit
# auto-dispatch; both must pass the same bitwise assertions. (The in-process
# force_tier sweeps inside `microkernel`/`simd_tiers` additionally compare
# the tiers directly against each other.)
echo "== linalg + determinism suites (TUCKER_SIMD=scalar) =="
TUCKER_SIMD=scalar cargo test -q -p tucker-linalg
TUCKER_SIMD=scalar cargo test -q --test determinism --test simd_tiers
echo "== linalg + determinism suites (TUCKER_SIMD=auto) =="
TUCKER_SIMD=auto cargo test -q -p tucker-linalg
TUCKER_SIMD=auto cargo test -q --test determinism --test simd_tiers

# The blocking contract (ISSUE 9) says MC/KC/NC only schedule the packed tile
# grid — a TUCKER_BLOCK override must be invisible in the result bits, for
# the raw kernels and for the blocked factorizations built on them. Re-run
# the same suites under a deliberately tiny blocking so every tile-grid edge
# case fires. (The in-process force_blocking sweeps inside `factorizations`/
# `simd_tiers` additionally compare overridden runs against the default.)
echo "== linalg + determinism suites (TUCKER_BLOCK=16,16,16) =="
TUCKER_BLOCK=16,16,16 cargo test -q -p tucker-linalg
TUCKER_BLOCK=16,16,16 cargo test -q --test determinism --test simd_tiers

echo "== cargo test -q --test service (TUCKER_THREADS=1 and 4) =="
# The daemon's concurrency suite under both pool shapes: 8-client
# byte-identity, graceful-shutdown drain, typed-Busy backpressure, and
# both fault-injection batteries must hold on a single-thread pool too.
TUCKER_THREADS=1 cargo test -q --test service
TUCKER_THREADS=4 cargo test -q --test service

echo "== cargo test -q --test streaming (TUCKER_THREADS=32, oversubscribed) =="
# The streaming determinism suite again, on a pool far larger than any CI
# machine has cores: slab decomposition and oversubscription must both be
# invisible in the bits.
TUCKER_THREADS=32 cargo test -q --test streaming

# The transport contract (ISSUE 10) says the backend behind the distmem
# Communicator — in-process threads or TCP-connected spawned processes — is
# invisible in the result bits. Re-run the transport, determinism, and
# distributed-equivalence suites with the TCP backend at 2 and 4 real
# worker processes; the env-driven tests in each suite re-exec this very
# test binary as the worker fleet.
echo "== transport suites (TUCKER_TRANSPORT=tcp, TUCKER_RANKS=2) =="
TUCKER_TRANSPORT=tcp TUCKER_RANKS=2 cargo test -q \
  --test transport --test transport_faults \
  --test determinism --test distributed_equivalence
echo "== transport suites (TUCKER_TRANSPORT=tcp, TUCKER_RANKS=4) =="
TUCKER_TRANSPORT=tcp TUCKER_RANKS=4 cargo test -q \
  --test transport --test transport_faults \
  --test determinism --test distributed_equivalence

echo "== table7_transport (cross-backend artifact-identity gate) =="
# Runs the same distributed ST-HOSVD grid over the in-process and TCP
# backends and diffs the serialized .tkr artifacts byte-for-byte; also
# checks the TCP run moved real bytes on the wire and the in-process run
# moved none. Exits non-zero on any mismatch; the watchdog turns a wedged
# transport into exit code 3.
TUCKER_RANKS=2 cargo run --release -p tucker-bench --bin table7_transport
TUCKER_RANKS=4 cargo run --release -p tucker-bench --bin table7_transport

echo "== table3_storage (storage-layer shape check) =="
# The binary asserts finite compression ratios and round-trip errors within
# the declared eps + quantization budget; any violation exits non-zero.
cargo run --release -p tucker-bench --bin table3_storage

echo "== table4_threads (kernel determinism across thread counts) =="
# Exits non-zero if any multi-threaded kernel produces different results
# than the single-threaded run (smoke shape keeps this fast).
TUCKER_TABLE4_SMOKE=1 cargo run --release -p tucker-bench --bin table4_threads

echo "== table5_memory (out-of-core peak-memory gate) =="
# Tracking-allocator measurement of the compress-and-store pipelines; exits
# non-zero if the streaming path peaks at >= 50% of the in-memory path or
# the two artifacts are not byte-identical.
cargo run --release -p tucker-bench --bin table5_memory

echo "== table6_service (daemon byte-identity + liveness gate) =="
# In-process load generation against the tucker-serve daemon: 8 concurrent
# clients, mixed workload, every response compared bit-for-bit against a
# direct reader. Exits non-zero on any mismatch, lost reply, or deadlock
# (the watchdog turns a wedged service into exit code 3).
TUCKER_TABLE6_SMOKE=1 cargo run --release -p tucker-bench --bin table6_service

echo "== obs_overhead (observability overhead gate) =="
# Full compress→store→query pipeline on the SP surrogate, alternating
# metrics-off / metrics-on trials; exits non-zero if the metrics-on median
# breaks the 5%-plus-jitter-floor budget (ARCHITECTURE §9 contract).
TUCKER_OBS_SMOKE=1 cargo run --release -p tucker-bench --bin obs_overhead

echo "== cargo doc -p tucker-api (missing/broken docs are errors) =="
# The facade crate carries #![deny(missing_docs)]; this pass additionally
# promotes rustdoc warnings (broken intra-doc links, bad code fences) to
# errors so the documented surface cannot rot.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p tucker-api --quiet

echo "== panic-grep gate on the fallible-surface modules =="
# The try_* validation layers promise "every failure is a returned value".
# The microkernel hot-path modules (pack/microkernel/simd) make the same
# promise: misconfiguration warns and falls back, it never aborts a kernel.
# Fail CI if a panic!/unwrap/expect/assert lands in them (doc comments and
# #[cfg(test)] modules are stripped before grepping).
gate_ok=1
for f in crates/api/src/lib.rs crates/api/src/error.rs \
         crates/api/src/compressor.rs crates/api/src/query.rs \
         crates/core/src/validate.rs crates/store/src/error.rs \
         crates/serve/src/proto.rs crates/serve/src/client.rs \
         crates/serve/src/metrics.rs crates/obs/src/lib.rs \
         crates/obs/src/metrics.rs crates/obs/src/trace.rs \
         crates/linalg/src/pack.rs crates/linalg/src/microkernel.rs \
         crates/linalg/src/simd.rs crates/linalg/src/blocking.rs \
         crates/net/src/frame.rs crates/net/src/error.rs; do
  if [ ! -f "$f" ]; then
    echo "panic-grep gate: fallible-surface file $f is missing (renamed? update ci.sh)"
    gate_ok=0
    continue
  fi
  if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" \
      | grep -v '^[[:space:]]*//' \
      | grep -nE 'panic!|\.unwrap\(\)|\.expect\(|unreachable!|todo!|unimplemented!|assert!|assert_eq!|assert_ne!' ; then
    echo "panic-grep gate: forbidden pattern in fallible-surface file $f"
    gate_ok=0
  fi
done
if [ "$gate_ok" -ne 1 ]; then
  echo "panic-grep gate FAILED"
  exit 1
fi
echo "panic-grep gate OK"

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
