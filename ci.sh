#!/usr/bin/env bash
# CI entry point: build everything, run the full test pyramid, check style.
#
# The build is fully offline — external dependencies are vendored under
# vendor/ (see README.md) — so this runs in a network-less container.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== table3_storage (storage-layer shape check) =="
# The binary asserts finite compression ratios and round-trip errors within
# the declared eps + quantization budget; any violation exits non-zero.
cargo run --release -p tucker-bench --bin table3_storage

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
