//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro crate
//! provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` that accept the
//! same attribute grammar but expand to nothing. The workspace only uses the
//! derives as markers today; swap in the real serde to get actual
//! serialization.

use proc_macro::TokenStream;

/// No-op `Serialize` derive. Accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. Accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
