//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` — as a plain wall-clock harness:
//! each benchmark runs a short warm-up, then `sample_size` timed samples, and
//! the median time per iteration is printed. There is no statistical analysis,
//! outlier detection, or HTML report; swap in the real criterion when a
//! registry is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark case within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing driver handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up phase, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

/// A named group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; this harness always runs exactly
    /// `sample_size` samples regardless of the measurement budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run_case(&mut self, id: String, run: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
        };
        run(&mut bencher);
        report(&format!("{}/{}", self.name, id), &mut bencher.samples);
    }

    /// Benchmarks a closure under the given id.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_case(id.to_string(), |b| f(b));
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_case(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (printing happens per-benchmark; nothing is buffered).
    pub fn finish(self) {}
}

/// Throughput declaration (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            warm_up_time: Duration::from_millis(100),
            _parent: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
            warm_up_time: Duration::from_millis(100),
        };
        f(&mut bencher);
        report(&id.to_string(), &mut bencher.samples);
        self
    }
}

fn report(label: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{label:<40} median {}  [{} .. {}]  ({} samples)",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
        samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:8.3} s ")
    } else if secs >= 1e-3 {
        format!("{:8.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:8.3} µs", secs * 1e6)
    } else {
        format!("{:8.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_all_cases() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        let mut runs = 0usize;
        group.bench_function("case", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // At least warm-up once plus three samples.
        assert!(runs >= 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("ttm", 3).to_string(), "ttm/3");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
