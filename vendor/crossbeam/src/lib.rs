//! Offline stand-in for `crossbeam`.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, Sender, Receiver}`
//! with single-consumer endpoints, so this crate wraps `std::sync::mpsc`
//! behind crossbeam's names. Multi-consumer cloning of receivers and `select!`
//! are not provided; swap in the real crossbeam when a registry is available.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (clonable, like crossbeam's).
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel (single consumer).
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Creates an unbounded FIFO channel: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails only if all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_preserved() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn works_across_threads() {
            let (tx, rx) = unbounded::<Vec<f64>>();
            let t = std::thread::spawn(move || {
                tx.send(vec![1.0, 2.0]).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), vec![1.0, 2.0]);
            t.join().unwrap();
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
