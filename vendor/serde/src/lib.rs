//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names (as both marker traits and
//! no-op derive macros) so the workspace compiles without network access to
//! crates.io. Nothing is actually serialized; replace this vendored crate with
//! the real serde when a registry is available.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

// Re-export the no-op derives under the same names, mirroring serde's
// `derive` feature: `use serde::{Serialize, Deserialize}` imports the trait
// and the derive macro together.
pub use serde_derive::{Deserialize, Serialize};
