//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! subset of the proptest API that the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * range strategies over `f64` / integer types,
//! * `prop::collection::vec` with a fixed or ranged size,
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   inner attribute, and `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Unlike the real proptest there is **no shrinking** and no failure
//! persistence: a failing case panics with the generated inputs' debug
//! representation left to the assertion message. Generation is deterministic
//! per test (the RNG is seeded from the test's name), so failures reproduce
//! across runs.

use std::ops::{Range, RangeInclusive};

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case is discarded, not counted as a failure.
    Reject,
    /// `prop_assert!`-style failure with a message.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG used to drive generation.
pub mod test_runner {
    /// splitmix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary string (the test name).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, then one scramble round.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut rng = TestRng { state: h };
            let _ = rng.next_u64();
            rng
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty f64 range strategy");
        a + (b - a) * rng.next_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty integer range strategy");
                let span = (b - a) as u64 + 1;
                a + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u8);

/// `proptest::prop`-style namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// A `Vec` strategy: `size` may be a fixed `usize`, a `Range<usize>`,
        /// or a `RangeInclusive<usize>`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a sampled length.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, SizeRange, Strategy, TestCaseError};
}

/// Fails the current case unless `cond` holds. Usable only inside
/// [`proptest!`] bodies (it returns a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left_val = $left;
        let right_val = $right;
        if !(left_val == right_val) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}` ({:?} != {:?})",
                stringify!($left),
                stringify!($right),
                left_val,
                right_val
            )));
        }
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs for
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::__proptest_impl! { config = $config; $( $(#[$meta])* fn $name($($arg in $strategy),+) $body )* }
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $( $(#[$meta])* fn $name($($arg in $strategy),+) $body )* }
    };
}

/// Internal expansion shared by both [`proptest!`] arms.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < 4096,
                                "property `{}`: too many prop_assume! rejections",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed after {} passing case(s): {}",
                                stringify!($name),
                                passed,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategy_generate_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..200 {
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let n = (2usize..=7).generate(&mut rng);
            assert!((2..=7).contains(&n));
            let v = prop::collection::vec(0.0f64..10.0, 1..20).generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 20);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = (1usize..5).prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
        let doubled = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 0usize..100, y in -1.0f64..1.0) {
            prop_assume!(x > 0);
            prop_assert!(x < 100, "x = {}", x);
            prop_assert_eq!(x, x);
            prop_assert!((-1.0..1.0).contains(&y));
        }
    }
}
