//! Offline stand-in for `rand` 0.8.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! small API subset the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over `f64`/integer ranges, and `Rng::gen_bool` — on top of
//! a splitmix64 generator. It is deterministic for a given seed (what the test
//! suites rely on) and statistically solid for generating test fixtures, but it
//! is *not* a cryptographic or research-grade RNG.

use std::ops::{Range, RangeInclusive};

/// Seeding trait mirroring `rand::SeedableRng` for the `seed_from_u64` entry
/// point the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling trait mirroring the `rand::Rng` surface the workspace uses.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b` over `f64`, `usize`,
    /// `u64`, `i64`, `u32`, `i32`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.next_f64() < p
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<G: Rng>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<G: Rng>(self, rng: &mut G) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "gen_range: empty f64 range");
        a + (b - a) * rng.next_f64()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty integer range");
                let span = (b - a) as u64 + 1;
                a + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty integer range");
                let span = b.wrapping_sub(a) as u64 + 1;
                a.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64, i32);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed once so nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn values_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi, "samples never reached the interval edges");
    }
}
