//! `parallel-tucker` — an umbrella crate re-exporting the whole workspace.
//!
//! This crate exists so that examples, integration tests, and downstream users
//! can depend on a single package and find every piece of the system:
//!
//! * [`exec`]    — the shared-pool execution layer: persistent thread pool,
//!   [`ExecContext`](tucker_exec::ExecContext), reusable workspaces.
//! * [`linalg`]  — dense linear algebra kernels (GEMM, SYRK, QR, eig, SVD).
//! * [`tensor`]  — dense tensors, logical unfoldings, local TTM/Gram kernels.
//! * [`distmem`] — the simulated distributed-memory runtime and α-β-γ cost model.
//! * [`core`]    — sequential and distributed ST-HOSVD / HOOI / T-HOSVD,
//!   reconstruction, rank selection, error analysis.
//! * [`scidata`] — synthetic combustion-surrogate datasets and normalization.
//! * [`store`]   — the `.tkr` compressed-tensor container, quantized codecs,
//!   and partial-reconstruction query engine.
//!
//! See the repository README for a guided tour and the `examples/` directory
//! for runnable end-to-end programs.

pub use tucker_core as core;
pub use tucker_distmem as distmem;
pub use tucker_exec as exec;
pub use tucker_linalg as linalg;
pub use tucker_scidata as scidata;
pub use tucker_store as store;
pub use tucker_tensor as tensor;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use tucker_core::dist::{
        dist_hooi, dist_reconstruct, dist_st_hosvd, DistTensor, DistTucker,
    };
    pub use tucker_core::prelude::*;
    pub use tucker_distmem::{
        spmd, spmd_with_grid, Communicator, CostModel, MachineParams, ProcGrid,
    };
    pub use tucker_exec::{ExecContext, Workspace};
    pub use tucker_linalg::Matrix;
    pub use tucker_scidata::{DatasetPreset, NoisyLowRank, SpectralDecay};
    pub use tucker_store::{
        gather_and_write, write_tucker, Codec, StoreOptions, TkrArtifact, TkrMetadata,
    };
    pub use tucker_tensor::{normalized_rms_error, DenseTensor, SubtensorSpec, TtmTranspose};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let x = DenseTensor::from_fn(&[8, 7, 6], |idx| (idx[0] + idx[1] * idx[2]) as f64);
        let result = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-3));
        let rec = result.tucker.reconstruct();
        assert!(normalized_rms_error(&x, &rec) <= 1e-3);
    }
}
