//! `parallel-tucker` — an umbrella crate re-exporting the whole workspace.
//!
//! **Start with [`api`]** (`tucker-api`): the unified public surface — the
//! fallible [`Compressor`](tucker_api::Compressor) builder over every
//! pipeline variant, the backend-agnostic
//! [`TensorQuery`](tucker_api::TensorQuery) reader interface behind
//! [`Open`](tucker_api::Open), and the
//! [`TuckerError`](tucker_api::TuckerError) hierarchy. The remaining crates
//! are the layers underneath:
//!
//! * [`exec`]    — the shared-pool execution layer: persistent thread pool,
//!   [`ExecContext`](tucker_exec::ExecContext), reusable workspaces.
//! * [`linalg`]  — dense linear algebra kernels (GEMM, SYRK, QR, eig, SVD).
//! * [`tensor`]  — dense tensors, logical unfoldings, local TTM/Gram kernels,
//!   the [`SlabSource`](tucker_tensor::SlabSource) streaming seam.
//! * [`distmem`] — the simulated distributed-memory runtime and α-β-γ cost model.
//! * [`core`]    — sequential and distributed ST-HOSVD / HOOI / T-HOSVD,
//!   reconstruction, rank selection, error analysis, input validation.
//! * [`scidata`] — synthetic combustion-surrogate datasets and normalization.
//! * [`store`]   — the `.tkr` compressed-tensor container, quantized codecs,
//!   and partial-reconstruction queries.
//! * [`serve`]   — the query daemon: a `std::net` TCP service exposing
//!   registered artifacts to concurrent clients over a length-prefixed
//!   binary protocol, with a shared decoded-chunk cache, bounded worker
//!   pool, and graceful drain.
//! * [`net`]     — the *real* multi-process distributed backend: a TCP mesh
//!   transport behind `distmem`'s `Transport` trait, a launcher that
//!   re-execs the current binary as worker ranks, and exact on-wire byte
//!   accounting. `TUCKER_TRANSPORT=tcp` switches the SPMD entry points in
//!   `tucker-net` from threads to spawned processes, bit-identically.
//! * [`obs`]     — workspace-wide observability: the process-global metrics
//!   registry (counters, gauges, latency histograms; `TUCKER_METRICS=0`
//!   turns every instrument into a no-op) and structured span tracing
//!   (`TUCKER_TRACE=<path>` exports JSON-lines or chrome-trace). Every
//!   layer above records into it; the daemon serves it over the wire.
//!
//! See the repository README for a guided tour and the `examples/` directory
//! for runnable end-to-end programs (all written against [`api`]).

pub use tucker_api as api;
pub use tucker_core as core;
pub use tucker_distmem as distmem;
pub use tucker_exec as exec;
pub use tucker_linalg as linalg;
pub use tucker_net as net;
pub use tucker_obs as obs;
pub use tucker_scidata as scidata;
pub use tucker_serve as serve;
pub use tucker_store as store;
pub use tucker_tensor as tensor;

/// Commonly used items, re-exported for convenience. The facade types
/// ([`Compressor`](tucker_api::Compressor), [`Open`](tucker_api::Open),
/// [`TensorQuery`](tucker_api::TensorQuery),
/// [`TuckerError`](tucker_api::TuckerError)) come first; the direct kernel
/// entry points remain available for code that addresses a specific layer.
pub mod prelude {
    pub use tucker_api::{
        Compressed, CompressionPlan, Compressor, KernelPath, Open, PlanError, Reader, Refine,
        TensorQuery, TuckerError, Written,
    };
    pub use tucker_core::dist::{
        dist_hooi, dist_reconstruct, dist_st_hosvd, try_dist_hooi, try_dist_st_hosvd, DistTensor,
        DistTucker,
    };
    pub use tucker_core::prelude::*;
    pub use tucker_distmem::{
        spmd, spmd_with_grid, Communicator, CostModel, MachineParams, ProcGrid,
    };
    pub use tucker_exec::{ExecContext, Workspace};
    pub use tucker_linalg::Matrix;
    pub use tucker_net::{
        env_ranks, spmd_transport, test_exec_args, transport_from_env, try_spmd_transport,
        TransportKind,
    };
    pub use tucker_scidata::{DatasetPreset, NoisyLowRank, SpectralDecay};
    pub use tucker_serve::{serve, ServeClient, ServeConfig, ServerHandle};
    pub use tucker_store::{
        gather_and_write, try_write_tucker, write_tucker, Codec, SharedChunkCache, StoreOptions,
        TkrArtifact, TkrMetadata, TkrReader,
    };
    pub use tucker_tensor::{
        normalized_rms_error, DenseTensor, SlabSource, SubtensorSpec, TtmTranspose,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let x = DenseTensor::from_fn(&[8, 7, 6], |idx| (idx[0] + idx[1] * idx[2]) as f64);
        let result = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-3));
        let rec = result.tucker.reconstruct();
        assert!(normalized_rms_error(&x, &rec) <= 1e-3);
    }

    #[test]
    fn builder_facade_matches_direct_call() {
        let x = DenseTensor::from_fn(&[8, 7, 6], |idx| (idx[0] + idx[1] * idx[2]) as f64);
        let direct = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-3));
        let built = Compressor::new(&x)
            .tolerance(1e-3)
            .run()
            .expect("valid input must plan");
        assert_eq!(built.kernel(), KernelPath::InMemory);
        assert_eq!(
            built.tucker().core.as_slice(),
            direct.tucker.core.as_slice()
        );
    }
}
