//! Dense N-way tensor with first-mode-fastest (natural) memory layout.

use serde::{Deserialize, Serialize};

/// Error returned by the checked slab accessors
/// [`DenseTensor::try_last_mode_slab`] / [`DenseTensor::try_last_mode_slab_mut`]
/// when the requested last-mode range does not fit inside the tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlabRangeError {
    /// First last-mode index of the requested slab.
    pub start: usize,
    /// Number of last-mode steps requested.
    pub len: usize,
    /// The size of the last mode.
    pub last_dim: usize,
}

impl std::fmt::Display for SlabRangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.len == 0 {
            write!(
                f,
                "empty last-mode slab (start {}, len 0, last dim {})",
                self.start, self.last_dim
            )
        } else {
            write!(
                f,
                "last-mode slab {}..{} exceeds last dim {}",
                self.start,
                self.start.saturating_add(self.len),
                self.last_dim
            )
        }
    }
}

impl std::error::Error for SlabRangeError {}

/// A dense, owned, N-way tensor of `f64`.
///
/// Element `(i_1, i_2, …, i_N)` is stored at linear offset
/// `i_1 + I_1·(i_2 + I_2·(i_3 + …))`, so the mode-1 unfolding of the tensor is
/// the data buffer viewed as an `I_1 × (I/I_1)` column-major matrix, matching
/// the layout assumed throughout Sec. IV of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseTensor {
    dims: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Creates a tensor of zeros with the given dimensions.
    ///
    /// # Panics
    /// Panics if `dims` is empty.
    pub fn zeros(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "DenseTensor: dims must be non-empty");
        let len: usize = dims.iter().product();
        DenseTensor {
            dims: dims.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor from an existing data buffer in natural (first-mode-fastest) order.
    ///
    /// # Panics
    /// Panics if the buffer length does not equal the product of the dimensions.
    pub fn from_vec(dims: &[usize], data: Vec<f64>) -> Self {
        assert!(!dims.is_empty(), "DenseTensor: dims must be non-empty");
        let len: usize = dims.iter().product();
        assert_eq!(
            data.len(),
            len,
            "DenseTensor::from_vec: data length {} does not match dims {:?}",
            data.len(),
            dims
        );
        DenseTensor {
            dims: dims.to_vec(),
            data,
        }
    }

    /// Creates a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut t = DenseTensor::zeros(dims);
        let mut idx = vec![0usize; dims.len()];
        for off in 0..t.data.len() {
            t.data[off] = f(&idx);
            // Increment the multi-index with mode 1 fastest.
            for (k, i) in idx.iter_mut().enumerate() {
                *i += 1;
                if *i < dims[k] {
                    break;
                }
                *i = 0;
            }
        }
        t
    }

    /// Number of modes (ways) of the tensor.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// The dimension sizes `I_1, …, I_N`.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The size of mode `n`.
    #[inline]
    pub fn dim(&self, n: usize) -> usize {
        self.dims[n]
    }

    /// Total number of elements `I = ∏ I_n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `Î_n = I / I_n`, the product of all dimensions except mode `n`.
    #[inline]
    pub fn codim(&self, n: usize) -> usize {
        if self.dims[n] == 0 {
            return 0;
        }
        self.len() / self.dims[n]
    }

    /// Immutable access to the backing data in natural order.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the backing data in natural order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Number of elements in one slab of the **last** mode: `∏_{n<N} I_n`.
    ///
    /// Because the layout is first-mode-fastest, the elements with last-mode
    /// index `t` form one contiguous range of this length — the unit of
    /// streaming (e.g. one timestep of a time-last field).
    #[inline]
    pub fn last_mode_stride(&self) -> usize {
        self.dims[..self.dims.len() - 1].iter().product()
    }

    /// Borrows the contiguous slab covering last-mode indices
    /// `[start, start + len)` — zero-copy, in natural order.
    ///
    /// # Panics
    /// Panics if `start + len` exceeds the last dimension.
    pub fn last_mode_slab(&self, start: usize, len: usize) -> &[f64] {
        let last = *self.dims.last().expect("tensor has at least one mode");
        assert!(
            start + len <= last,
            "last_mode_slab: range {start}+{len} exceeds last dim {last}"
        );
        let stride = self.last_mode_stride();
        &self.data[start * stride..(start + len) * stride]
    }

    /// Mutable borrow of the contiguous slab covering last-mode indices
    /// `[start, start + len)` — the write-side counterpart of
    /// [`DenseTensor::last_mode_slab`], used by the pass-2 streaming driver to
    /// assemble the truncated tensor slab by slab in place.
    ///
    /// # Panics
    /// Panics if `start + len` exceeds the last dimension.
    pub fn last_mode_slab_mut(&mut self, start: usize, len: usize) -> &mut [f64] {
        let last = *self.dims.last().expect("tensor has at least one mode");
        assert!(
            start + len <= last,
            "last_mode_slab_mut: range {start}+{len} exceeds last dim {last}"
        );
        let stride = self.last_mode_stride();
        &mut self.data[start * stride..(start + len) * stride]
    }

    /// Checked variant of [`DenseTensor::last_mode_slab`]: returns a typed
    /// error instead of panicking on an empty or out-of-range request
    /// (overflow-safe).
    pub fn try_last_mode_slab(&self, start: usize, len: usize) -> Result<&[f64], SlabRangeError> {
        self.check_slab_range(start, len)?;
        Ok(self.last_mode_slab(start, len))
    }

    /// Checked variant of [`DenseTensor::last_mode_slab_mut`].
    pub fn try_last_mode_slab_mut(
        &mut self,
        start: usize,
        len: usize,
    ) -> Result<&mut [f64], SlabRangeError> {
        self.check_slab_range(start, len)?;
        Ok(self.last_mode_slab_mut(start, len))
    }

    fn check_slab_range(&self, start: usize, len: usize) -> Result<(), SlabRangeError> {
        let last = *self.dims.last().expect("tensor has at least one mode");
        let in_range = len > 0 && start.checked_add(len).is_some_and(|end| end <= last);
        if in_range {
            Ok(())
        } else {
            Err(SlabRangeError {
                start,
                len,
                last_dim: last,
            })
        }
    }

    /// Converts a multi-index to the linear offset in the backing buffer.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len());
        let mut off = 0usize;
        let mut stride = 1usize;
        for (k, &i) in index.iter().enumerate() {
            debug_assert!(i < self.dims[k], "index out of bounds in mode {k}");
            off += i * stride;
            stride *= self.dims[k];
        }
        off
    }

    /// Converts a linear offset back to a multi-index.
    pub fn multi_index(&self, mut off: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.dims.len()];
        for (k, d) in self.dims.iter().enumerate() {
            idx[k] = off % d;
            off /= d;
        }
        idx
    }

    /// Element accessor by multi-index.
    #[inline]
    pub fn get(&self, index: &[usize]) -> f64 {
        self.data[self.offset(index)]
    }

    /// Element mutator by multi-index.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f64) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// The Frobenius-style tensor norm `‖X‖` (square root of the sum of squares).
    pub fn norm(&self) -> f64 {
        tucker_linalg::blas1::nrm2(&self.data)
    }

    /// Squared norm `‖X‖²`.
    pub fn norm_sq(&self) -> f64 {
        tucker_linalg::blas1::sumsq(&self.data)
    }

    /// Fills the tensor with values drawn from the closure over the linear offset.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize) -> f64) {
        for (off, v) in self.data.iter_mut().enumerate() {
            *v = f(off);
        }
    }

    /// Elementwise difference `self - other` as a new tensor.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn sub(&self, other: &DenseTensor) -> DenseTensor {
        assert_eq!(self.dims, other.dims, "sub: dimension mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        DenseTensor {
            dims: self.dims.clone(),
            data,
        }
    }

    /// Elementwise sum `self + other` as a new tensor.
    pub fn add(&self, other: &DenseTensor) -> DenseTensor {
        assert_eq!(self.dims, other.dims, "add: dimension mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        DenseTensor {
            dims: self.dims.clone(),
            data,
        }
    }

    /// Scales every element in place.
    pub fn scale(&mut self, a: f64) {
        tucker_linalg::blas1::scal(a, &mut self.data);
    }

    /// Returns an iterator over `(multi_index, value)` pairs in storage order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = (Vec<usize>, f64)> + '_ {
        let dims = self.dims.clone();
        self.data.iter().enumerate().map(move |(off, &v)| {
            let mut idx = vec![0usize; dims.len()];
            let mut o = off;
            for (k, d) in dims.iter().enumerate() {
                idx[k] = o % d;
                o /= d;
            }
            (idx, v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let t = DenseTensor::zeros(&[2, 3, 4]);
        assert_eq!(t.ndims(), 3);
        assert_eq!(t.len(), 24);
        assert_eq!(t.dims(), &[2, 3, 4]);
        assert_eq!(t.codim(0), 12);
        assert_eq!(t.codim(2), 6);
    }

    #[test]
    #[should_panic]
    fn empty_dims_panics() {
        DenseTensor::zeros(&[]);
    }

    #[test]
    fn last_mode_slabs_are_contiguous_timesteps() {
        let t = DenseTensor::from_fn(&[3, 2, 4], |idx| idx[2] as f64);
        assert_eq!(t.last_mode_stride(), 6);
        // Slab t holds exactly the elements with last-mode index t.
        for step in 0..4 {
            let slab = t.last_mode_slab(step, 1);
            assert_eq!(slab.len(), 6);
            assert!(slab.iter().all(|&v| v == step as f64));
        }
        // A multi-step slab is the concatenation of its steps.
        let slab = t.last_mode_slab(1, 2);
        assert_eq!(slab.len(), 12);
        assert_eq!(slab, &t.as_slice()[6..18]);
    }

    #[test]
    #[should_panic]
    fn last_mode_slab_out_of_range_panics() {
        DenseTensor::zeros(&[2, 3]).last_mode_slab(2, 2);
    }

    #[test]
    fn last_mode_slab_mut_writes_in_place() {
        let mut t = DenseTensor::zeros(&[2, 3, 4]);
        t.last_mode_slab_mut(1, 2).fill(7.0);
        for step in 0..4 {
            let expect = if (1..3).contains(&step) { 7.0 } else { 0.0 };
            assert!(t.last_mode_slab(step, 1).iter().all(|&v| v == expect));
        }
    }

    #[test]
    fn try_last_mode_slab_rejects_degenerate_ranges() {
        let mut t = DenseTensor::from_fn(&[2, 3], |idx| idx[1] as f64);
        // Valid request round-trips through both checked accessors.
        assert_eq!(t.try_last_mode_slab(1, 2).unwrap(), &[1.0, 1.0, 2.0, 2.0]);
        t.try_last_mode_slab_mut(0, 1).unwrap().fill(9.0);
        assert_eq!(t.get(&[0, 0]), 9.0);
        // Empty, out-of-range, and overflowing requests all fail typed.
        let empty = t.try_last_mode_slab(1, 0).unwrap_err();
        assert_eq!(empty.len, 0);
        let over = t.try_last_mode_slab(2, 2).unwrap_err();
        assert_eq!((over.start, over.len, over.last_dim), (2, 2, 3));
        assert!(t.try_last_mode_slab(usize::MAX, 2).is_err());
        assert!(t.try_last_mode_slab_mut(3, 1).is_err());
        // The error formats without panicking.
        assert!(format!("{over}").contains("exceeds"));
    }

    #[test]
    fn offset_is_first_mode_fastest() {
        let t = DenseTensor::zeros(&[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[1, 0, 0]), 1);
        assert_eq!(t.offset(&[0, 1, 0]), 2);
        assert_eq!(t.offset(&[0, 0, 1]), 6);
        assert_eq!(t.offset(&[1, 2, 3]), 1 + 2 * 2 + 3 * 6);
    }

    #[test]
    fn multi_index_round_trip() {
        let t = DenseTensor::zeros(&[3, 4, 5, 2]);
        for off in 0..t.len() {
            let idx = t.multi_index(off);
            assert_eq!(t.offset(&idx), off);
        }
    }

    #[test]
    fn get_set() {
        let mut t = DenseTensor::zeros(&[2, 2]);
        t.set(&[1, 0], 3.5);
        assert_eq!(t.get(&[1, 0]), 3.5);
        assert_eq!(t.get(&[0, 1]), 0.0);
    }

    #[test]
    fn from_fn_orders_by_storage() {
        let t = DenseTensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f64);
        // storage order: (0,0),(1,0),(0,1),(1,1),(0,2),(1,2)
        assert_eq!(t.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
    }

    #[test]
    fn from_vec_length_check() {
        let t = DenseTensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get(&[1, 1]), 4.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_wrong_length_panics() {
        DenseTensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn norm_matches_manual() {
        let t = DenseTensor::from_vec(&[2, 2], vec![1.0, 2.0, 2.0, 4.0]);
        assert!((t.norm() - 25.0f64.sqrt()).abs() < 1e-14);
        assert!((t.norm_sq() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn add_sub_scale() {
        let a = DenseTensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = DenseTensor::from_vec(&[2], vec![3.0, 5.0]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        let mut c = a.clone();
        c.scale(3.0);
        assert_eq!(c.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn indexed_iter_visits_all() {
        let t = DenseTensor::from_fn(&[2, 2], |idx| (idx[0] + 2 * idx[1]) as f64);
        let collected: Vec<(Vec<usize>, f64)> = t.indexed_iter().collect();
        assert_eq!(collected.len(), 4);
        for (idx, v) in collected {
            assert_eq!(t.get(&idx), v);
        }
    }

    #[test]
    fn serde_round_trip() {
        let t = DenseTensor::from_fn(&[2, 3], |idx| idx[0] as f64 - idx[1] as f64);
        let json = serde_json_like(&t);
        assert!(json.0 == t.dims && json.1 == t.data);
    }

    // serde integration is exercised without pulling serde_json (not in the
    // approved dependency set): clone the serializable fields directly.
    fn serde_json_like(t: &DenseTensor) -> (Vec<usize>, Vec<f64>) {
        (t.dims.clone(), t.data.clone())
    }

    #[test]
    fn single_mode_tensor() {
        let t = DenseTensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.ndims(), 1);
        assert_eq!(t.get(&[2]), 3.0);
        assert_eq!(t.codim(0), 1);
    }
}
