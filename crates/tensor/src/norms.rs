//! Tensor norms and the error metrics reported in the paper's evaluation.
//!
//! The paper reports (Tab. II, Figs. 1b/6/7):
//! * the **normalized RMS error** `‖X − X̃‖ / ‖X‖` of a reconstruction,
//! * the **maximum absolute element error** of the centered-and-scaled data,
//! * mode-wise error contributions (handled in `tucker-core::error`).

use crate::dense::DenseTensor;

/// Frobenius-style norm of a tensor (`‖X‖ = ‖X(1)‖_F`).
pub fn frob_norm(x: &DenseTensor) -> f64 {
    x.norm()
}

/// Relative (normalized) error `‖X − Y‖ / ‖X‖`.
///
/// Returns 0 when both tensors are identically zero, and `inf` when only the
/// reference is zero.
pub fn relative_error(x: &DenseTensor, y: &DenseTensor) -> f64 {
    assert_eq!(x.dims(), y.dims(), "relative_error: dimension mismatch");
    let num = x.sub(y).norm();
    let den = x.norm();
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// The paper's "normalized RMS error" of an approximation — identical to
/// [`relative_error`] because both numerator and denominator carry the same
/// `1/√I` RMS normalization.
pub fn normalized_rms_error(x: &DenseTensor, approx: &DenseTensor) -> f64 {
    relative_error(x, approx)
}

/// Maximum absolute elementwise difference `max |X_i − Y_i|` (Tab. II's
/// "Max. Abs. Elem. Err." on centered-and-scaled data).
pub fn max_abs_diff(x: &DenseTensor, y: &DenseTensor) -> f64 {
    assert_eq!(x.dims(), y.dims(), "max_abs_diff: dimension mismatch");
    x.as_slice()
        .iter()
        .zip(y.as_slice().iter())
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
}

/// Root-mean-square of the entries of a tensor.
pub fn rms(x: &DenseTensor) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        (x.norm_sq() / x.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_of_identical_is_zero() {
        let x = DenseTensor::from_fn(&[3, 4], |idx| (idx[0] + idx[1]) as f64);
        assert_eq!(relative_error(&x, &x), 0.0);
    }

    #[test]
    fn relative_error_scales() {
        let x = DenseTensor::from_vec(&[2], vec![3.0, 4.0]);
        let y = DenseTensor::from_vec(&[2], vec![3.0, 3.0]);
        // ||x - y|| = 1, ||x|| = 5
        assert!((relative_error(&x, &y) - 0.2).abs() < 1e-14);
    }

    #[test]
    fn relative_error_zero_reference() {
        let z = DenseTensor::zeros(&[2, 2]);
        let y = DenseTensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(relative_error(&z, &z), 0.0);
        assert!(relative_error(&z, &y).is_infinite());
    }

    #[test]
    fn max_abs_diff_finds_peak() {
        let x = DenseTensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let y = DenseTensor::from_vec(&[3], vec![1.5, 2.0, 0.0]);
        assert_eq!(max_abs_diff(&x, &y), 3.0);
    }

    #[test]
    fn rms_of_constant_tensor() {
        let x = DenseTensor::from_fn(&[5, 5], |_| 2.0);
        assert!((rms(&x) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn normalized_rms_is_relative_error() {
        let x = DenseTensor::from_fn(&[4, 4], |idx| (idx[0] * 4 + idx[1]) as f64);
        let y = DenseTensor::from_fn(&[4, 4], |idx| (idx[0] * 4 + idx[1]) as f64 * 1.01);
        assert!((normalized_rms_error(&x, &y) - relative_error(&x, &y)).abs() < 1e-16);
    }

    #[test]
    #[should_panic]
    fn mismatched_dims_panic() {
        let x = DenseTensor::zeros(&[2, 2]);
        let y = DenseTensor::zeros(&[2, 3]);
        relative_error(&x, &y);
    }
}
