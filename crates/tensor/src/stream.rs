//! Slab streaming: the out-of-core access path of the workspace.
//!
//! The paper's pipeline exists because the tensors are *too large to hold in
//! memory* (Sec. I, VII) — yet every in-memory kernel in this crate takes a
//! resident [`DenseTensor`]. This module defines the seam between the two
//! worlds: a [`SlabSource`] yields whole **last-mode slabs** (one timestep of
//! a time-last field, say) in natural order, and the slab kernels below
//! consume them one at a time so no caller ever needs the full tensor
//! resident.
//!
//! Everything here is built so that slab decomposition is *invisible in the
//! bits*:
//!
//! * a TTM in any non-last mode maps each unfolding block to one output
//!   block, and blocks never straddle a slab boundary, so
//!   [`ttm_slab_ctx`] on a slab produces exactly the corresponding slab of
//!   the full-tensor [`crate::ttm_ctx`] output;
//! * Gram accumulation ([`crate::gram_accumulate_ctx`]) adds one
//!   contribution per block in ascending block order (and, for the first
//!   mode, extends a single running per-element sum across the GEMM
//!   contraction dimension), so summing over consecutive slabs reproduces
//!   the full-tensor Gram bit for bit, for every slab width.
//!
//! `tucker_core::streaming::st_hosvd_streaming` is the driver that turns
//! these invariants into an out-of-core ST-HOSVD whose output is
//! bit-identical to the in-memory algorithm.

use crate::dense::DenseTensor;
use crate::ttm::{ttm_ctx, TtmTranspose};
use tucker_exec::ExecContext;
use tucker_linalg::Matrix;

/// A source of last-mode slabs of a conceptual `I_1 × … × I_N` tensor.
///
/// Implementors promise that concatenating the slabs `[0, I_N)` in order
/// yields the tensor in natural (first-mode-fastest) memory order, and that
/// repeated reads of the same slab return identical values — slab
/// decomposition must be a pure view, not a generator with hidden state, or
/// the streaming algorithms lose their "bit-identical for every slab width"
/// contract.
pub trait SlabSource {
    /// The full tensor dimensions `I_1, …, I_N`.
    fn dims(&self) -> &[usize];

    /// Writes the slab covering last-mode indices `[start, start + len)`
    /// into `out` (length `len ·` [`SlabSource::slab_stride`]), in natural
    /// order.
    ///
    /// # Panics
    /// Panics if the range exceeds the last dimension or `out` has the wrong
    /// length.
    fn fill_slab(&self, start: usize, len: usize, out: &mut [f64]);

    /// Zero-copy borrow of the slab, for sources that are resident anyway.
    /// Streaming drivers prefer this over [`SlabSource::fill_slab`] when it
    /// returns `Some`.
    fn borrow_slab(&self, _start: usize, _len: usize) -> Option<&[f64]> {
        None
    }

    /// Elements per single last-mode step: `∏_{n<N} I_n`.
    fn slab_stride(&self) -> usize {
        let dims = self.dims();
        dims[..dims.len() - 1].iter().product()
    }

    /// The size of the streaming (last) mode `I_N`.
    fn last_dim(&self) -> usize {
        *self.dims().last().expect("SlabSource: at least one mode")
    }
}

/// References delegate, so `&S` and `&dyn SlabSource` are sources too —
/// which is what lets builder-style callers hold a `&dyn SlabSource` and
/// still drive the generic streaming kernels.
impl<S: SlabSource + ?Sized> SlabSource for &S {
    fn dims(&self) -> &[usize] {
        (**self).dims()
    }

    fn fill_slab(&self, start: usize, len: usize, out: &mut [f64]) {
        (**self).fill_slab(start, len, out)
    }

    fn borrow_slab(&self, start: usize, len: usize) -> Option<&[f64]> {
        (**self).borrow_slab(start, len)
    }

    fn slab_stride(&self) -> usize {
        (**self).slab_stride()
    }

    fn last_dim(&self) -> usize {
        (**self).last_dim()
    }
}

/// A resident tensor is trivially its own slab source (zero-copy).
impl SlabSource for DenseTensor {
    fn dims(&self) -> &[usize] {
        DenseTensor::dims(self)
    }

    fn fill_slab(&self, start: usize, len: usize, out: &mut [f64]) {
        out.copy_from_slice(self.last_mode_slab(start, len));
    }

    fn borrow_slab(&self, start: usize, len: usize) -> Option<&[f64]> {
        Some(self.last_mode_slab(start, len))
    }
}

/// Materializes a slab from `src` into an owned [`DenseTensor`], reusing the
/// allocation of `buf` (which is drained). The returned tensor has the
/// source's dimensions with the last mode replaced by `len`.
pub fn take_slab(src: &impl SlabSource, start: usize, len: usize, buf: Vec<f64>) -> DenseTensor {
    let stride = src.slab_stride();
    let mut dims = src.dims().to_vec();
    let last = dims.len() - 1;
    dims[last] = len;
    let mut data = buf;
    data.resize(len * stride, 0.0);
    if let Some(borrowed) = src.borrow_slab(start, len) {
        data.copy_from_slice(borrowed);
    } else {
        src.fill_slab(start, len, &mut data);
    }
    DenseTensor::from_vec(&dims, data)
}

/// Slab-wise TTM: `slab ×_mode op(V)` for a non-last mode.
///
/// Because unfolding blocks in modes `< N−1` never straddle a last-mode slab
/// boundary, this is **bit-identical** to the corresponding last-mode slab of
/// the full-tensor [`ttm_ctx`] output — the property that lets the streaming
/// ST-HOSVD shrink slabs independently.
///
/// # Panics
/// Panics if `mode` is the slab's last mode (TTM in the streaming mode needs
/// all slabs at once) or the shapes are incompatible.
pub fn ttm_slab_ctx(
    ctx: &ExecContext,
    slab: &DenseTensor,
    v: &Matrix,
    mode: usize,
    trans: TtmTranspose,
) -> DenseTensor {
    assert!(
        mode + 1 < slab.ndims(),
        "ttm_slab: mode {mode} is the streaming mode of a {}-way slab",
        slab.ndims()
    );
    ttm_ctx(ctx, slab, v, mode, trans)
}

/// Applies `op(V_n)` for every `Some` entry of `factors` to a slab, in the
/// order given by `order` (entries naming `None` modes are skipped). All
/// applied modes must be non-last. This is the pass-2 shrink chain of the
/// streaming ST-HOSVD; each application is bit-identical to the full-tensor
/// chain restricted to the slab.
pub fn ttm_slab_chain_ctx(
    ctx: &ExecContext,
    slab: DenseTensor,
    factors: &[Option<&Matrix>],
    trans: TtmTranspose,
    order: &[usize],
) -> DenseTensor {
    assert_eq!(
        factors.len(),
        slab.ndims(),
        "ttm_slab_chain: need one (optional) factor per mode"
    );
    let mut cur = slab;
    for &n in order {
        if let Some(v) = factors[n] {
            cur = ttm_slab_ctx(ctx, &cur, v, n, trans);
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram::{gram_accumulate_ctx, gram_ctx};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(rng: &mut StdRng, dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn dense_tensor_is_its_own_slab_source() {
        let mut rng = StdRng::seed_from_u64(80);
        let x = random_tensor(&mut rng, &[3, 4, 5]);
        assert_eq!(SlabSource::dims(&x), &[3, 4, 5]);
        assert_eq!(x.slab_stride(), 12);
        assert_eq!(x.last_dim(), 5);
        let borrowed = x.borrow_slab(1, 2).unwrap();
        let mut filled = vec![0.0; 24];
        x.fill_slab(1, 2, &mut filled);
        assert_eq!(borrowed, &filled[..]);
        assert_eq!(borrowed, x.last_mode_slab(1, 2));
    }

    #[test]
    fn take_slab_reuses_buffer_and_matches_source() {
        let mut rng = StdRng::seed_from_u64(81);
        let x = random_tensor(&mut rng, &[4, 3, 6]);
        let mut buf = Vec::new();
        for (start, len) in [(0usize, 2usize), (2, 3), (5, 1)] {
            let slab = take_slab(&x, start, len, std::mem::take(&mut buf));
            assert_eq!(slab.dims(), &[4, 3, len]);
            assert_eq!(slab.as_slice(), x.last_mode_slab(start, len));
            buf = slab.into_vec();
        }
    }

    #[test]
    fn slab_ttm_equals_slab_of_full_ttm_bitwise() {
        let mut rng = StdRng::seed_from_u64(82);
        // Includes a narrow interior mode so the fused TTM path is crossed.
        let dims = [5usize, 3, 7, 11];
        let x = random_tensor(&mut rng, &dims);
        let ctx = ExecContext::new(2);
        for mode in 0..3 {
            let v = Matrix::from_fn(4, dims[mode], |i, j| ((i * 5 + j) as f64 * 0.3).sin());
            let full = ttm_ctx(&ctx, &x, &v, mode, TtmTranspose::NoTranspose);
            for width in [1usize, 2, 11] {
                let mut start = 0;
                while start < dims[3] {
                    let w = width.min(dims[3] - start);
                    let slab = take_slab(&x, start, w, Vec::new());
                    let out = ttm_slab_ctx(&ctx, &slab, &v, mode, TtmTranspose::NoTranspose);
                    assert_eq!(
                        out.as_slice(),
                        full.last_mode_slab(start, w),
                        "mode {mode}, slab {start}+{w}"
                    );
                    start += w;
                }
            }
        }
    }

    #[test]
    fn slab_chain_then_gram_matches_full_pipeline_bitwise() {
        // The exact pass-1 step of the streaming ST-HOSVD: shrink each slab
        // through already-found factors, then accumulate the next mode's
        // Gram — compared against the same two kernels on the full tensor.
        let mut rng = StdRng::seed_from_u64(83);
        let dims = [6usize, 5, 4, 9];
        let x = random_tensor(&mut rng, &dims);
        let u0 = Matrix::from_fn(dims[0], 3, |i, j| ((i + 2 * j) as f64 * 0.21).cos());
        let ctx = ExecContext::new(3);
        let shrunk = ttm_ctx(&ctx, &x, &u0, 0, TtmTranspose::Transpose);
        let full_gram = gram_ctx(&ctx, &shrunk, 1);
        let factors = [Some(&u0), None, None, None];
        for width in [1usize, 4, 9] {
            let mut s = Matrix::zeros(dims[1], dims[1]);
            let mut start = 0;
            while start < dims[3] {
                let w = width.min(dims[3] - start);
                let slab = take_slab(&x, start, w, Vec::new());
                let small = ttm_slab_chain_ctx(&ctx, slab, &factors, TtmTranspose::Transpose, &[0]);
                gram_accumulate_ctx(&ctx, &small, 1, &mut s);
                start += w;
            }
            assert_eq!(s.as_slice(), full_gram.as_slice(), "width {width}");
        }
    }

    #[test]
    #[should_panic]
    fn slab_ttm_rejects_the_streaming_mode() {
        let x = DenseTensor::zeros(&[2, 3, 4]);
        let v = Matrix::zeros(2, 4);
        ttm_slab_ctx(
            &ExecContext::sequential(),
            &x,
            &v,
            2,
            TtmTranspose::NoTranspose,
        );
    }
}
