//! Gram matrices of tensor unfoldings: `S = Y(n) · Y(n)ᵀ`.
//!
//! This is the kernel of Alg. 1 line 4 and Alg. 4 line 5 of the paper. The
//! eigenvectors of `S` are the left singular vectors of the unfolding, which is
//! how ST-HOSVD and HOOI obtain factor matrices. With the natural layout, the
//! Gram matrix accumulates one SYRK per contiguous subblock (the row-major
//! `I_n × left` view of the block), and for the first mode the whole buffer is
//! processed with a single transposed GEMM.

use crate::dense::DenseTensor;
use crate::layout::Unfolding;
use tucker_exec::{chunk_ranges, ExecContext};
use tucker_linalg::gemm::{gemm_slices, gemm_slices_ctx, Transpose};
use tucker_linalg::syrk::{syrk_rows_slices, syrk_slices, triangular_scatter_mirror};
use tucker_linalg::Matrix;
use tucker_obs::metrics::Counter;

/// Kernel accounting: symmetric Gram flops are the lower-triangle
/// multiply-adds `(I_n + 1) · |Y|`; the pair kernel is a full rectangular
/// product, `2 · I_n · |W|`.
static GRAM_CALLS: Counter = Counter::new("tensor.gram.calls");
static GRAM_FLOPS: Counter = Counter::new("tensor.gram.flops");

/// Computes the symmetric Gram matrix `S = Y(n) Y(n)ᵀ` of size `I_n × I_n`.
pub fn gram(y: &DenseTensor, mode: usize) -> Matrix {
    gram_ctx(ExecContext::global(), y, mode)
}

/// [`gram`] on an explicit execution context.
pub fn gram_ctx(ctx: &ExecContext, y: &DenseTensor, mode: usize) -> Matrix {
    let dims = y.dims();
    assert!(mode < dims.len(), "gram: mode {mode} out of range");
    let n = dims[mode];
    let mut s = Matrix::zeros(n, n);
    gram_into_ctx(ctx, y, mode, &mut s);
    s
}

/// Accumulating variant: `S ← Y(n) Y(n)ᵀ` written into a preallocated matrix.
pub fn gram_into(y: &DenseTensor, mode: usize, s: &mut Matrix) {
    gram_into_ctx(ExecContext::global(), y, mode, s)
}

/// [`gram_into`] on an explicit execution context.
///
/// Parallelism: the first mode is one large transposed GEMM scattered over
/// row panels of `S`; general modes scatter **area-balanced lower-triangle
/// row ranges** of `S` via [`triangular_scatter_mirror`] — every thread
/// walks all blocks in the same ascending order and owns its rows
/// exclusively, then the strict upper triangle is mirrored once. Each
/// element of `S` accumulates in exactly the sequential order, so results
/// are bit-identical across thread counts.
pub fn gram_into_ctx(ctx: &ExecContext, y: &DenseTensor, mode: usize, s: &mut Matrix) {
    let n = y.dim(mode);
    assert_eq!(s.shape(), (n, n), "gram_into: output must be I_n × I_n");
    s.as_mut_slice().fill(0.0);
    gram_accumulate_ctx(ctx, y, mode, s);
}

/// Accumulating Gram kernel: `S ← S + Y(n) Y(n)ᵀ` on the global pool.
pub fn gram_accumulate(y: &DenseTensor, mode: usize, s: &mut Matrix) {
    gram_accumulate_ctx(ExecContext::global(), y, mode, s)
}

/// [`gram_accumulate`] on an explicit execution context — the streaming
/// building block of the out-of-core ST-HOSVD.
///
/// When `y` is one last-mode slab of a larger tensor and `mode` is **not**
/// the last mode, the slab's unfolding blocks are a contiguous run of the
/// full tensor's blocks, so accumulating consecutive slabs in order performs
/// exactly the per-element additions of [`gram_into_ctx`] on the full tensor:
/// the result is **bit-identical** for every slab width (general modes add
/// one SYRK contribution per block in ascending block order; the first mode
/// splits the GEMM contraction dimension, whose per-element accumulation in
/// `gemm_slices` is a single running sum in ascending order).
pub fn gram_accumulate_ctx(ctx: &ExecContext, y: &DenseTensor, mode: usize, s: &mut Matrix) {
    let dims = y.dims();
    assert!(
        mode < dims.len(),
        "gram_accumulate: mode {mode} out of range"
    );
    let n = dims[mode];
    assert_eq!(
        s.shape(),
        (n, n),
        "gram_accumulate: output must be I_n × I_n"
    );
    let unf = Unfolding::new(dims, mode);
    let data = y.as_slice();
    let ldc = s.cols();

    if n == 0 || y.is_empty() {
        return;
    }

    let _span = tucker_obs::span!("gram", mode = mode, n = n);
    GRAM_CALLS.inc();
    GRAM_FLOPS.add((n as u64 + 1) * (y.len() as u64));

    if unf.left == 1 {
        // First mode: the whole buffer is a column-major I_n × Î_n matrix,
        // i.e. a row-major Î_n × I_n matrix D, and S += Dᵀ·D — one blocked
        // GEMM with beta = 1 (the caller zeroes S, so a single call matches
        // the historical beta = 0 path bit for bit).
        let cols = unf.cols();
        gemm_slices_ctx(
            ctx,
            Transpose::Yes,
            Transpose::No,
            1.0,
            data,
            cols,
            n,
            n,
            data,
            cols,
            n,
            n,
            1.0,
            s.as_mut_slice(),
            ldc,
        );
        return;
    }

    // General mode: accumulate one SYRK contribution per contiguous subblock
    // (each block is a row-major I_n × left matrix with leading dimension
    // `left`).
    let left = unf.left;
    let right = unf.right;
    let work = right.saturating_mul(left).saturating_mul(n * (n + 1) / 2);
    let parts = ctx.partition_for_work(n, work);
    if parts <= 1 {
        for t in 0..right {
            let block = unf.block(data, t);
            syrk_slices(1.0, block, n, left, left, 1.0, s.as_mut_slice(), ldc);
        }
        return;
    }

    triangular_scatter_mirror(ctx, s.as_mut_slice(), n, ldc, parts, |rows, panel| {
        for t in 0..right {
            let block = unf.block(data, t);
            syrk_rows_slices(1.0, block, left, left, rows.clone(), panel, ldc);
        }
    });
}

/// Computes the *non-symmetric* Gram pair `Y(n) · W(n)ᵀ` for two tensors of the
/// same shape. This is the kernel of Alg. 4 line 11, where a processor
/// multiplies its own unfolded block with a block received from another
/// processor in the same mode-n processor "column".
pub fn gram_pair(y: &DenseTensor, w: &DenseTensor, mode: usize) -> Matrix {
    gram_pair_ctx(ExecContext::global(), y, w, mode)
}

/// [`gram_pair`] on an explicit execution context: scatters row ranges of
/// the `ny × nw` result, each thread walking all blocks in ascending order,
/// so results are bit-identical across thread counts.
pub fn gram_pair_ctx(ctx: &ExecContext, y: &DenseTensor, w: &DenseTensor, mode: usize) -> Matrix {
    // The two tensors must agree in every mode except possibly the unfolding
    // mode itself: the distributed Gram (Alg. 4) exchanges local blocks whose
    // mode-n extents can differ by one when P_n does not divide I_n evenly.
    for (m, (&dy, &dw)) in y.dims().iter().zip(w.dims().iter()).enumerate() {
        if m != mode {
            assert_eq!(
                dy, dw,
                "gram_pair: tensors must agree in every non-unfolding mode (mode {m})"
            );
        }
    }
    let ny = y.dim(mode);
    let nw = w.dim(mode);
    let unf_y = Unfolding::new(y.dims(), mode);
    let unf_w = Unfolding::new(w.dims(), mode);
    let mut s = Matrix::zeros(ny, nw);
    let ydata = y.as_slice();
    let wdata = w.as_slice();
    let ldc = s.cols();

    if ny == 0 || nw == 0 || y.is_empty() || w.is_empty() {
        return s;
    }

    let _span = tucker_obs::span!("gram_pair", mode = mode, ny = ny, nw = nw);
    GRAM_CALLS.inc();
    GRAM_FLOPS.add(2 * (ny as u64) * (w.len() as u64));

    if unf_y.left == 1 {
        let cols = unf_y.cols();
        gemm_slices_ctx(
            ctx,
            Transpose::Yes,
            Transpose::No,
            1.0,
            ydata,
            cols,
            ny,
            ny,
            wdata,
            unf_w.cols(),
            nw,
            nw,
            0.0,
            s.as_mut_slice(),
            ldc,
        );
        return s;
    }

    let left = unf_y.left;
    let right = unf_y.right;
    // S += Y_block (ny × left, row-major) · W_blockᵀ, per block, accumulated
    // over one row range of S per thread.
    let block_pair = |rows: std::ops::Range<usize>, panel: &mut [f64]| {
        for t in 0..right {
            let yb = unf_y.block(ydata, t);
            let wb = unf_w.block(wdata, t);
            gemm_slices(
                Transpose::No,
                Transpose::Yes,
                1.0,
                &yb[rows.start * left..],
                rows.len(),
                left,
                left,
                wb,
                nw,
                left,
                left,
                1.0,
                panel,
                ldc,
            );
        }
    };
    let work = right
        .saturating_mul(left)
        .saturating_mul(ny)
        .saturating_mul(nw);
    let parts = ctx.partition_for_work(ny, work);
    if parts <= 1 {
        block_pair(0..ny, s.as_mut_slice());
        return s;
    }
    ctx.for_each_row_panel(s.as_mut_slice(), ldc, chunk_ranges(ny, parts), &block_pair);
    s
}

/// Computes the Gram pair where the two tensors may have different sizes in the
/// *contracted* (non-mode) dimensions is **not** supported; the distributed
/// Gram always exchanges equally-shaped local blocks, matching the paper's
/// uniform block distribution assumption.
///
/// Reference (definition-based) Gram used by the test suite.
pub fn gram_reference(y: &DenseTensor, mode: usize) -> Matrix {
    let unf = Unfolding::new(y.dims(), mode);
    let m = unf.materialize(y);
    tucker_linalg::gemm::gemm(Transpose::No, Transpose::Yes, 1.0, &m, &m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(rng: &mut StdRng, dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    fn assert_matrix_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "matrix mismatch {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference_all_modes() {
        let mut rng = StdRng::seed_from_u64(60);
        let dims = [4usize, 5, 3, 2];
        let y = random_tensor(&mut rng, &dims);
        for mode in 0..4 {
            let fast = gram(&y, mode);
            let slow = gram_reference(&y, mode);
            assert_matrix_close(&fast, &slow, 1e-10);
        }
    }

    #[test]
    fn gram_is_symmetric_psd() {
        let mut rng = StdRng::seed_from_u64(61);
        let y = random_tensor(&mut rng, &[6, 4, 5]);
        for mode in 0..3 {
            let s = gram(&y, mode);
            for i in 0..s.rows() {
                assert!(s.get(i, i) >= -1e-12);
                for j in 0..s.cols() {
                    assert!((s.get(i, j) - s.get(j, i)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn trace_equals_norm_squared() {
        // trace(Y(n) Y(n)ᵀ) = ‖Y‖² for every mode.
        let mut rng = StdRng::seed_from_u64(62);
        let y = random_tensor(&mut rng, &[3, 7, 4]);
        let ns = y.norm_sq();
        for mode in 0..3 {
            let s = gram(&y, mode);
            let trace: f64 = (0..s.rows()).map(|i| s.get(i, i)).sum();
            assert!((trace - ns).abs() < 1e-10 * (1.0 + ns));
        }
    }

    #[test]
    fn gram_pair_with_self_matches_gram() {
        let mut rng = StdRng::seed_from_u64(63);
        let y = random_tensor(&mut rng, &[4, 3, 5]);
        for mode in 0..3 {
            let s1 = gram(&y, mode);
            let s2 = gram_pair(&y, &y, mode);
            assert_matrix_close(&s1, &s2, 1e-10);
        }
    }

    #[test]
    fn gram_pair_matches_reference() {
        let mut rng = StdRng::seed_from_u64(64);
        let dims = [3usize, 4, 2, 3];
        let y = random_tensor(&mut rng, &dims);
        let w = random_tensor(&mut rng, &dims);
        for mode in 0..4 {
            let s = gram_pair(&y, &w, mode);
            let ym = Unfolding::new(&dims, mode).materialize(&y);
            let wm = Unfolding::new(&dims, mode).materialize(&w);
            let expected = tucker_linalg::gemm::gemm(Transpose::No, Transpose::Yes, 1.0, &ym, &wm);
            assert_matrix_close(&s, &expected, 1e-10);
        }
    }

    #[test]
    fn gram_is_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(66);
        // Large enough that every mode clears the parallel work threshold.
        let y = random_tensor(&mut rng, &[21, 23, 19, 3]);
        let seq = tucker_exec::ExecContext::new(1);
        for mode in 0..4 {
            let baseline = gram_ctx(&seq, &y, mode);
            for threads in [2usize, 4, 16] {
                let ctx = tucker_exec::ExecContext::new(threads);
                let s = gram_ctx(&ctx, &y, mode);
                assert_eq!(s.as_slice(), baseline.as_slice(), "mode {mode}");
            }
        }
    }

    #[test]
    fn gram_pair_is_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(67);
        let dims = [18usize, 17, 23];
        let y = random_tensor(&mut rng, &dims);
        let w = random_tensor(&mut rng, &dims);
        let seq = tucker_exec::ExecContext::new(1);
        for mode in 0..3 {
            let baseline = gram_pair_ctx(&seq, &y, &w, mode);
            for threads in [3usize, 8] {
                let ctx = tucker_exec::ExecContext::new(threads);
                let s = gram_pair_ctx(&ctx, &y, &w, mode);
                assert_eq!(s.as_slice(), baseline.as_slice(), "mode {mode}");
            }
        }
    }

    #[test]
    fn slab_accumulation_is_bit_identical_for_every_width() {
        // Accumulating the Gram slab by slab (any slab width, any thread
        // count) must reproduce the full-tensor Gram *bitwise* for every
        // non-last mode — the contract `st_hosvd_streaming` is built on.
        let mut rng = StdRng::seed_from_u64(68);
        // Large enough that mode 0 clears the parallel GEMM threshold.
        let dims = [19usize, 7, 5, 23];
        let y = random_tensor(&mut rng, &dims);
        let stride = y.last_mode_stride();
        for mode in 0..3 {
            let full = gram(&y, mode);
            for width in [1usize, 3, 23] {
                for threads in [1usize, 4] {
                    let ctx = tucker_exec::ExecContext::new(threads);
                    let mut s = Matrix::zeros(dims[mode], dims[mode]);
                    let mut start = 0;
                    while start < dims[3] {
                        let w = width.min(dims[3] - start);
                        let slab = DenseTensor::from_vec(
                            &[19, 7, 5, w],
                            y.as_slice()[start * stride..(start + w) * stride].to_vec(),
                        );
                        gram_accumulate_ctx(&ctx, &slab, mode, &mut s);
                        start += w;
                    }
                    assert_eq!(
                        s.as_slice(),
                        full.as_slice(),
                        "mode {mode}, width {width}, threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn additivity_over_blocks() {
        // Splitting a tensor along the last mode and summing the Grams of the
        // pieces equals the Gram of the whole — the property the distributed
        // Gram (Alg. 4) relies on.
        let mut rng = StdRng::seed_from_u64(65);
        let dims = [4usize, 3, 6];
        let y = random_tensor(&mut rng, &dims);
        let full = gram(&y, 0);

        // Split along mode 2 into two halves (contiguous in memory).
        let half_len = y.len() / 2;
        let first = DenseTensor::from_vec(&[4, 3, 3], y.as_slice()[..half_len].to_vec());
        let second = DenseTensor::from_vec(&[4, 3, 3], y.as_slice()[half_len..].to_vec());
        let sum = gram(&first, 0).add(&gram(&second, 0));
        assert_matrix_close(&full, &sum, 1e-10);
    }

    #[test]
    fn two_way_tensor_first_mode() {
        // For a matrix (2-way tensor), gram in mode 0 is X·Xᵀ.
        let x = DenseTensor::from_fn(&[3, 4], |idx| (idx[0] * 4 + idx[1]) as f64);
        let s = gram(&x, 0);
        for i in 0..3 {
            for j in 0..3 {
                let mut expected = 0.0;
                for k in 0..4 {
                    expected += x.get(&[i, k]) * x.get(&[j, k]);
                }
                assert!((s.get(i, j) - expected).abs() < 1e-12);
            }
        }
    }
}
