//! Logical mode-n unfolding of a natural-order dense tensor.
//!
//! As in the paper (Sec. IV-C), unfolding never moves data. For a tensor with
//! dimensions `I_1 × … × I_N` stored first-mode-fastest, fix a mode `n` and
//! group the dimensions into
//!
//! * `left  = ∏_{m<n} I_m` — the "row-block width" of the local layout,
//! * `I_n` — the unfolding's row count,
//! * `right = ∏_{m>n} I_m` — the number of contiguous blocks.
//!
//! The buffer then consists of `right` contiguous blocks of `left · I_n`
//! elements each. Block `t`, viewed in memory, is a **column-major
//! `left × I_n` matrix** — equivalently a row-major `I_n × left` matrix whose
//! rows are the mode-n fibers. The mode-n unfolding `Y(n)` (of size
//! `I_n × (I/I_n)`) is the concatenation of the transposes of those blocks,
//! exactly the "series of row-major subblocks" of Fig. 3b in the paper.
//!
//! Every local kernel (TTM, Gram) iterates over these blocks and calls a
//! BLAS-3 routine per block, so the unfolding itself is free.

use crate::dense::DenseTensor;

/// A logical description of the mode-n unfolding of a tensor: no data is copied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unfolding {
    /// The unfolding mode `n` (0-based).
    pub mode: usize,
    /// `∏_{m<n} I_m` — width of each row-major subblock.
    pub left: usize,
    /// `I_n` — number of rows of the unfolded matrix.
    pub mode_dim: usize,
    /// `∏_{m>n} I_m` — number of contiguous subblocks.
    pub right: usize,
}

impl Unfolding {
    /// Computes the unfolding structure of `dims` in mode `n` (0-based).
    ///
    /// # Panics
    /// Panics if `n` is out of range.
    pub fn new(dims: &[usize], n: usize) -> Self {
        assert!(n < dims.len(), "Unfolding: mode {n} out of range");
        let left: usize = dims[..n].iter().product();
        let right: usize = dims[n + 1..].iter().product();
        Unfolding {
            mode: n,
            left,
            mode_dim: dims[n],
            right,
        }
    }

    /// Number of rows of the unfolded matrix (`I_n`).
    #[inline]
    pub fn rows(&self) -> usize {
        self.mode_dim
    }

    /// Number of columns of the unfolded matrix (`Î_n = left · right`).
    #[inline]
    pub fn cols(&self) -> usize {
        self.left * self.right
    }

    /// Number of elements in one contiguous subblock (`left · I_n`).
    #[inline]
    pub fn block_len(&self) -> usize {
        self.left * self.mode_dim
    }

    /// Byte-free view of subblock `t` of the given buffer.
    ///
    /// The returned slice is a column-major `left × mode_dim` matrix, i.e. a
    /// row-major `mode_dim × left` matrix with leading dimension `left`.
    #[inline]
    pub fn block<'a>(&self, data: &'a [f64], t: usize) -> &'a [f64] {
        let b = self.block_len();
        &data[t * b..(t + 1) * b]
    }

    /// Mutable view of subblock `t`.
    #[inline]
    pub fn block_mut<'a>(&self, data: &'a mut [f64], t: usize) -> &'a mut [f64] {
        let b = self.block_len();
        &mut data[t * b..(t + 1) * b]
    }

    /// Materializes the unfolded matrix explicitly (row-major `I_n × Î_n`).
    ///
    /// Only used by tests and small reference computations — production kernels
    /// operate block-wise on the original buffer.
    pub fn materialize(&self, tensor: &DenseTensor) -> tucker_linalg::Matrix {
        assert_eq!(tensor.dim(self.mode), self.mode_dim);
        let rows = self.rows();
        let cols = self.cols();
        let mut m = tucker_linalg::Matrix::zeros(rows, cols);
        let data = tensor.as_slice();
        for t in 0..self.right {
            let block = self.block(data, t);
            for i in 0..self.mode_dim {
                for l in 0..self.left {
                    // Column index in the unfolding: modes < n vary fastest,
                    // then modes > n (the standard Kolda ordering restricted to
                    // the natural layout).
                    let col = l + t * self.left;
                    m.set(i, col, block[l + i * self.left]);
                }
            }
        }
        m
    }

    /// Element of the unfolding at `(row, col)` read directly from the tensor buffer.
    #[inline]
    pub fn get(&self, data: &[f64], row: usize, col: usize) -> f64 {
        let l = col % self.left.max(1);
        let t = col / self.left.max(1);
        let block = self.block(data, t);
        block[l + row * self.left]
    }
}

/// Maps a tensor multi-index to its `(row, col)` position in the mode-n unfolding.
///
/// Follows the same column ordering as [`Unfolding::materialize`]: modes before
/// `n` vary fastest in the column index, followed by modes after `n`.
pub fn unfold_index(dims: &[usize], n: usize, index: &[usize]) -> (usize, usize) {
    assert_eq!(dims.len(), index.len());
    let row = index[n];
    let mut col = 0usize;
    let mut stride = 1usize;
    for (k, (&d, &i)) in dims.iter().zip(index.iter()).enumerate() {
        if k == n {
            continue;
        }
        col += i * stride;
        stride *= d;
    }
    (row, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfolding_shapes() {
        let dims = [2usize, 3, 4, 5];
        let u = Unfolding::new(&dims, 2);
        assert_eq!(u.left, 6);
        assert_eq!(u.mode_dim, 4);
        assert_eq!(u.right, 5);
        assert_eq!(u.rows(), 4);
        assert_eq!(u.cols(), 30);
        assert_eq!(u.block_len(), 24);
    }

    #[test]
    fn first_and_last_mode_shapes() {
        let dims = [3usize, 4, 5];
        let u0 = Unfolding::new(&dims, 0);
        assert_eq!((u0.left, u0.right), (1, 20));
        let u2 = Unfolding::new(&dims, 2);
        assert_eq!((u2.left, u2.right), (12, 1));
    }

    #[test]
    #[should_panic]
    fn mode_out_of_range_panics() {
        Unfolding::new(&[2, 2], 2);
    }

    #[test]
    fn materialized_unfolding_matches_index_map() {
        let dims = [2usize, 3, 4];
        let t = DenseTensor::from_fn(&dims, |idx| (idx[0] + 10 * idx[1] + 100 * idx[2]) as f64);
        for n in 0..3 {
            let u = Unfolding::new(&dims, n);
            let m = u.materialize(&t);
            assert_eq!(m.shape(), (dims[n], t.len() / dims[n]));
            for (idx, v) in t.indexed_iter() {
                let (r, c) = unfold_index(&dims, n, &idx);
                assert_eq!(m.get(r, c), v, "mismatch at {idx:?} mode {n}");
            }
        }
    }

    #[test]
    fn get_matches_materialized() {
        let dims = [3usize, 2, 4, 2];
        let t = DenseTensor::from_fn(&dims, |idx| {
            (idx[0] * 1 + idx[1] * 7 + idx[2] * 13 + idx[3] * 31) as f64
        });
        for n in 0..4 {
            let u = Unfolding::new(&dims, n);
            let m = u.materialize(&t);
            for r in 0..u.rows() {
                for c in 0..u.cols() {
                    assert_eq!(u.get(t.as_slice(), r, c), m.get(r, c));
                }
            }
        }
    }

    #[test]
    fn mode1_unfolding_is_raw_buffer_column_major() {
        // For n = 0 the unfolding is the buffer itself read column-major.
        let dims = [3usize, 4];
        let t = DenseTensor::from_fn(&dims, |idx| (idx[0] + 3 * idx[1]) as f64);
        let u = Unfolding::new(&dims, 0);
        let m = u.materialize(&t);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), t.as_slice()[i + 3 * j]);
            }
        }
    }

    #[test]
    fn norm_preserved_by_unfolding() {
        let dims = [4usize, 3, 5];
        let t = DenseTensor::from_fn(&dims, |idx| (idx[0] as f64 - idx[2] as f64) * 0.37 + 1.0);
        for n in 0..3 {
            let u = Unfolding::new(&dims, n);
            let m = u.materialize(&t);
            assert!((m.frob_norm() - t.norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn unfold_index_row_is_mode_index() {
        let dims = [2usize, 3, 4];
        let (r, c) = unfold_index(&dims, 1, &[1, 2, 3]);
        assert_eq!(r, 2);
        // col = i0 * 1 + i2 * 2 = 1 + 6 = 7
        assert_eq!(c, 7);
    }

    #[test]
    fn blocks_tile_the_buffer() {
        let dims = [2usize, 3, 4];
        let t = DenseTensor::from_fn(&dims, |idx| (idx[0] + idx[1] + idx[2]) as f64);
        let u = Unfolding::new(&dims, 1);
        let mut total = 0usize;
        for b in 0..u.right {
            total += u.block(t.as_slice(), b).len();
        }
        assert_eq!(total, t.len());
    }
}
