//! Dense tensors, logical mode-n unfoldings, and the local computational
//! kernels (TTM and Gram) of the parallel Tucker decomposition.
//!
//! Storage convention follows the paper (Sec. IV-C): a tensor is stored so that
//! its mode-1 unfolding is in column-major order, i.e. the first mode varies
//! fastest in memory ("natural"/Fortran order). Unfolding in any mode is purely
//! logical — no data is moved — and the local kernels process the resulting
//! block structure with BLAS-3 calls from [`tucker_linalg`].
//!
//! Module map:
//! * [`dense`]  — [`DenseTensor`]: dimensions, index math, element access.
//! * [`layout`] — the logical mode-n unfolding view and its block structure.
//! * [`ttm`](mod@ttm)    — tensor-times-matrix products (single mode and chains).
//! * [`gram`](mod@gram)   — Gram matrices of unfoldings, `S = Y(n) Y(n)ᵀ`.
//! * [`norms`]  — tensor norms and the error metrics reported in the paper.
//! * [`slice`](mod@slice)  — subtensor extraction/insertion (for partial reconstruction).
//! * [`stream`] — the [`SlabSource`] trait and slab kernels of the
//!   out-of-core pipeline (last-mode slabs, bit-identical to the in-memory
//!   kernels for every slab width).

pub mod dense;
pub mod gram;
pub mod layout;
pub mod norms;
pub mod slice;
pub mod stream;
pub mod ttm;

pub use dense::{DenseTensor, SlabRangeError};
pub use gram::{
    gram, gram_accumulate, gram_accumulate_ctx, gram_ctx, gram_into, gram_into_ctx, gram_pair,
    gram_pair_ctx,
};
pub use layout::Unfolding;
pub use norms::{frob_norm, max_abs_diff, normalized_rms_error, relative_error};
pub use slice::{extract_subtensor, SubtensorSpec};
pub use stream::{take_slab, ttm_slab_chain_ctx, ttm_slab_ctx, SlabSource};
pub use ttm::{
    multi_ttm, multi_ttm_ctx, ttm, ttm_chain, ttm_chain_ctx, ttm_ctx, ttm_into, ttm_into_ctx,
    TtmTranspose,
};
