//! Subtensor extraction and insertion.
//!
//! The paper highlights (Sec. II-C, VII) that a key benefit of Tucker
//! compression is reconstructing *subsets* of the data — a single species, a
//! few time steps, a coarser or cropped grid — without forming the full tensor.
//! Partial reconstruction multiplies the core by row-subsets of the factor
//! matrices; the result is a subtensor. This module provides the index-subset
//! machinery shared by that path and by the block distribution of
//! `tucker-core::dist`.

use crate::dense::DenseTensor;

/// A per-mode selection of indices describing a subtensor.
///
/// Mode `n` of the subtensor consists of the (not necessarily contiguous)
/// indices `selection[n]` of the original tensor, in the given order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtensorSpec {
    selection: Vec<Vec<usize>>,
}

impl SubtensorSpec {
    /// Selects every index of every mode (the identity selection).
    pub fn all(dims: &[usize]) -> Self {
        SubtensorSpec {
            selection: dims.iter().map(|&d| (0..d).collect()).collect(),
        }
    }

    /// Builds a spec from explicit index lists, one per mode.
    ///
    /// # Panics
    /// Panics if any index list is empty.
    pub fn from_indices(selection: Vec<Vec<usize>>) -> Self {
        assert!(
            selection.iter().all(|s| !s.is_empty()),
            "SubtensorSpec: every mode needs at least one index"
        );
        SubtensorSpec { selection }
    }

    /// Builds a spec of contiguous ranges, one `(start, len)` pair per mode.
    pub fn from_ranges(ranges: &[(usize, usize)]) -> Self {
        SubtensorSpec {
            selection: ranges
                .iter()
                .map(|&(start, len)| (start..start + len).collect())
                .collect(),
        }
    }

    /// Restricts a single mode to the given indices, keeping all others intact.
    pub fn restrict_mode(mut self, mode: usize, indices: Vec<usize>) -> Self {
        assert!(!indices.is_empty(), "restrict_mode: empty index list");
        self.selection[mode] = indices;
        self
    }

    /// Number of modes covered by this spec.
    pub fn ndims(&self) -> usize {
        self.selection.len()
    }

    /// The selected indices of mode `n`.
    pub fn mode_indices(&self, n: usize) -> &[usize] {
        &self.selection[n]
    }

    /// Dimensions of the resulting subtensor.
    pub fn sub_dims(&self) -> Vec<usize> {
        self.selection.iter().map(|s| s.len()).collect()
    }

    /// Total number of elements in the subtensor.
    pub fn len(&self) -> usize {
        self.selection.iter().map(|s| s.len()).product()
    }

    /// True when the subtensor would be empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates the spec against tensor dimensions.
    pub fn validate(&self, dims: &[usize]) {
        assert_eq!(
            self.selection.len(),
            dims.len(),
            "SubtensorSpec: mode count mismatch"
        );
        for (n, (sel, &d)) in self.selection.iter().zip(dims.iter()).enumerate() {
            for &i in sel {
                assert!(
                    i < d,
                    "SubtensorSpec: index {i} out of range in mode {n} (dim {d})"
                );
            }
        }
    }
}

/// Extracts the subtensor described by `spec` from `x` as a new dense tensor.
pub fn extract_subtensor(x: &DenseTensor, spec: &SubtensorSpec) -> DenseTensor {
    spec.validate(x.dims());
    let sub_dims = spec.sub_dims();
    let mut out = DenseTensor::zeros(&sub_dims);
    let ndims = x.ndims();
    let mut src_idx = vec![0usize; ndims];
    // Iterate over the output in storage order, mapping indices through the spec.
    let mut out_idx = vec![0usize; ndims];
    for off in 0..out.len() {
        for (k, s) in out_idx.iter().enumerate() {
            src_idx[k] = spec.mode_indices(k)[*s];
        }
        let v = x.get(&src_idx);
        out.as_mut_slice()[off] = v;
        // advance out_idx (first mode fastest — matches storage order)
        for (k, i) in out_idx.iter_mut().enumerate() {
            *i += 1;
            if *i < sub_dims[k] {
                break;
            }
            *i = 0;
        }
    }
    out
}

/// Writes the subtensor `sub` into `x` at the positions described by `spec`
/// (the inverse of [`extract_subtensor`]).
pub fn insert_subtensor(x: &mut DenseTensor, spec: &SubtensorSpec, sub: &DenseTensor) {
    spec.validate(x.dims());
    assert_eq!(
        spec.sub_dims(),
        sub.dims(),
        "insert_subtensor: subtensor shape does not match spec"
    );
    let ndims = x.ndims();
    let sub_dims = spec.sub_dims();
    let mut src_idx = vec![0usize; ndims];
    let mut out_idx = vec![0usize; ndims];
    for off in 0..sub.len() {
        for (k, s) in out_idx.iter().enumerate() {
            src_idx[k] = spec.mode_indices(k)[*s];
        }
        x.set(&src_idx, sub.as_slice()[off]);
        for (k, i) in out_idx.iter_mut().enumerate() {
            *i += 1;
            if *i < sub_dims[k] {
                break;
            }
            *i = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered(dims: &[usize]) -> DenseTensor {
        let mut count = 0.0;
        DenseTensor::from_fn(dims, |_| {
            count += 1.0;
            count
        })
    }

    #[test]
    fn all_spec_is_identity() {
        let x = numbered(&[3, 4, 2]);
        let spec = SubtensorSpec::all(x.dims());
        let sub = extract_subtensor(&x, &spec);
        assert_eq!(sub, x);
    }

    #[test]
    fn range_extraction() {
        let x = numbered(&[4, 4]);
        let spec = SubtensorSpec::from_ranges(&[(1, 2), (2, 2)]);
        let sub = extract_subtensor(&x, &spec);
        assert_eq!(sub.dims(), &[2, 2]);
        assert_eq!(sub.get(&[0, 0]), x.get(&[1, 2]));
        assert_eq!(sub.get(&[1, 1]), x.get(&[2, 3]));
    }

    #[test]
    fn scattered_indices() {
        let x = numbered(&[5, 3]);
        let spec = SubtensorSpec::from_indices(vec![vec![4, 0, 2], vec![1]]);
        let sub = extract_subtensor(&x, &spec);
        assert_eq!(sub.dims(), &[3, 1]);
        assert_eq!(sub.get(&[0, 0]), x.get(&[4, 1]));
        assert_eq!(sub.get(&[1, 0]), x.get(&[0, 1]));
        assert_eq!(sub.get(&[2, 0]), x.get(&[2, 1]));
    }

    #[test]
    fn restrict_mode_builder() {
        let x = numbered(&[3, 3, 3]);
        let spec = SubtensorSpec::all(x.dims()).restrict_mode(2, vec![1]);
        let sub = extract_subtensor(&x, &spec);
        assert_eq!(sub.dims(), &[3, 3, 1]);
        assert_eq!(sub.get(&[2, 2, 0]), x.get(&[2, 2, 1]));
    }

    #[test]
    fn insert_round_trip() {
        let mut x = DenseTensor::zeros(&[4, 4]);
        let spec = SubtensorSpec::from_ranges(&[(1, 2), (0, 3)]);
        let sub = numbered(&[2, 3]);
        insert_subtensor(&mut x, &spec, &sub);
        let back = extract_subtensor(&x, &spec);
        assert_eq!(back, sub);
        // Untouched entries stay zero.
        assert_eq!(x.get(&[0, 0]), 0.0);
        assert_eq!(x.get(&[3, 3]), 0.0);
    }

    #[test]
    fn spec_len_and_dims() {
        let spec = SubtensorSpec::from_indices(vec![vec![0, 2], vec![1, 2, 3]]);
        assert_eq!(spec.sub_dims(), vec![2, 3]);
        assert_eq!(spec.len(), 6);
        assert_eq!(spec.ndims(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let x = numbered(&[2, 2]);
        let spec = SubtensorSpec::from_indices(vec![vec![0], vec![5]]);
        extract_subtensor(&x, &spec);
    }

    #[test]
    #[should_panic]
    fn empty_mode_selection_panics() {
        SubtensorSpec::from_indices(vec![vec![0], vec![]]);
    }
}
