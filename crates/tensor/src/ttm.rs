//! Tensor-times-matrix (TTM) products — the central kernel of the Tucker
//! decomposition (paper Sec. II-A, V-B).
//!
//! `Y = X ×_n V` multiplies the mode-n unfolding: `Y(n) = V · X(n)`, where `V`
//! is `K × I_n`. With the natural layout of [`crate::layout`], each of the
//! `right` contiguous subblocks of `X` is a column-major `left × I_n` matrix,
//! so the per-block computation is a single GEMM and the result blocks land in
//! the output tensor's natural layout directly — no transposition, no copies.

use crate::dense::DenseTensor;
use crate::layout::Unfolding;
use std::ops::Range;
use tucker_exec::{chunk_ranges, ExecContext};
use tucker_linalg::gemm::{gemm_slices, gemm_slices_ctx, Transpose};
use tucker_linalg::Matrix;
use tucker_obs::metrics::Counter;

/// Kernel accounting: one call per [`ttm_into_ctx`] invocation; flops are
/// the mode-product multiply-adds `2 · |X| · K` regardless of which
/// (fused/unfused, pooled/sequential) path executes them.
static TTM_CALLS: Counter = Counter::new("tensor.ttm.calls");
static TTM_FLOPS: Counter = Counter::new("tensor.ttm.flops");

/// `left` widths below this use the fused batch path: the `left == 1` trick
/// generalized, gluing runs of tiny per-block GEMMs into one wide GEMM.
const FUSE_MAX_LEFT: usize = 32;

/// Target column count of a fused GEMM (the batch size is
/// `FUSE_TARGET_COLS / left`, at least 2 blocks).
const FUSE_TARGET_COLS: usize = 256;

/// Whether the multiplying matrix is applied as stored or transposed.
///
/// ST-HOSVD and HOOI apply factor matrices transposed (`X ×_n U(n)ᵀ` with
/// `U(n)` of size `I_n × R_n`), while reconstruction applies them as stored
/// (`G ×_n U(n)`). Accepting the flag avoids materializing transposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TtmTranspose {
    /// Multiply by `V` itself: `V` must be `K × I_n`.
    NoTranspose,
    /// Multiply by `Vᵀ`: `V` must be `I_n × K`.
    Transpose,
}

/// Computes the mode-n TTM `Y = X ×_n op(V)`.
///
/// * `op(V) = V` (shape `K × I_n`) when `trans == NoTranspose`;
/// * `op(V) = Vᵀ` (so `V` has shape `I_n × K`) when `trans == Transpose`.
///
/// The result has the same dimensions as `X` except mode `n` becomes `K`.
///
/// # Panics
/// Panics if the matrix dimensions are incompatible with mode `n` of `X`.
pub fn ttm(x: &DenseTensor, v: &Matrix, mode: usize, trans: TtmTranspose) -> DenseTensor {
    ttm_ctx(ExecContext::global(), x, v, mode, trans)
}

/// [`ttm`] on an explicit execution context (hybrid runs hand each simulated
/// rank a budget-limited context; everything else uses the global one).
pub fn ttm_ctx(
    ctx: &ExecContext,
    x: &DenseTensor,
    v: &Matrix,
    mode: usize,
    trans: TtmTranspose,
) -> DenseTensor {
    let dims = x.dims();
    assert!(mode < dims.len(), "ttm: mode {mode} out of range");
    let in_dim = dims[mode];
    let (vk, vin) = match trans {
        TtmTranspose::NoTranspose => (v.rows(), v.cols()),
        TtmTranspose::Transpose => (v.cols(), v.rows()),
    };
    assert_eq!(
        vin, in_dim,
        "ttm: matrix inner dimension {vin} does not match tensor mode {mode} size {in_dim}"
    );
    let k = vk;

    let mut out_dims = dims.to_vec();
    out_dims[mode] = k;
    let mut y = DenseTensor::zeros(&out_dims);
    if x.is_empty() || k == 0 {
        return y;
    }

    ttm_into_ctx(ctx, x, v, mode, trans, &mut y);
    y
}

/// In-place variant of [`ttm`]: writes the result into a preallocated tensor
/// whose dimensions must already be correct (every element of `y` is
/// overwritten). Used by the distributed kernels and the workspace-reusing
/// HOOI loop to avoid repeated allocation.
pub fn ttm_into(
    x: &DenseTensor,
    v: &Matrix,
    mode: usize,
    trans: TtmTranspose,
    y: &mut DenseTensor,
) {
    ttm_into_ctx(ExecContext::global(), x, v, mode, trans, y)
}

/// [`ttm_into`] on an explicit execution context.
///
/// Parallelism: the first mode is one large GEMM scattered over row panels;
/// every other mode scatters contiguous ranges of the `right` block loop,
/// each range writing its own disjoint slice of `y`. Narrow blocks
/// (`left < `[`FUSE_MAX_LEFT`]) are additionally **fused**: runs of tiny
/// per-block GEMMs are packed into one GEMM of ~[`FUSE_TARGET_COLS`] columns
/// (the `left == 1` trick generalized). Neither choice changes the
/// per-element accumulation order, so results are bit-identical across
/// thread counts and across the fused/unfused boundary.
pub fn ttm_into_ctx(
    ctx: &ExecContext,
    x: &DenseTensor,
    v: &Matrix,
    mode: usize,
    trans: TtmTranspose,
    y: &mut DenseTensor,
) {
    let dims = x.dims();
    let in_dim = dims[mode];
    let (k, vin) = match trans {
        TtmTranspose::NoTranspose => (v.rows(), v.cols()),
        TtmTranspose::Transpose => (v.cols(), v.rows()),
    };
    assert_eq!(vin, in_dim, "ttm_into: inner dimension mismatch");
    assert_eq!(y.dim(mode), k, "ttm_into: output mode dimension mismatch");
    for (m, (&a, &b)) in dims.iter().zip(y.dims().iter()).enumerate() {
        if m != mode {
            assert_eq!(a, b, "ttm_into: output dimension mismatch in mode {m}");
        }
    }

    let _span = tucker_obs::span!("ttm", mode = mode, k_out = k);
    TTM_CALLS.inc();
    TTM_FLOPS.add(2 * (x.len() as u64) * (k as u64));

    let unf = Unfolding::new(dims, mode);
    let left = unf.left;
    let right = unf.right;
    let xdata = x.as_slice();
    let ydata = y.as_mut_slice();
    let in_block = left * in_dim;
    let out_block = left * k;

    // The per-block computation, in row-major terms:
    //   out_blockᵀ (k × left, row-major) = op(V) · in_blockᵀ (in_dim × left, row-major)
    // where in_blockᵀ is exactly the raw block memory reinterpreted row-major
    // with leading dimension `left`, and likewise for the output block.
    let (ta, a_rows, a_cols) = match trans {
        TtmTranspose::NoTranspose => (Transpose::No, v.rows(), v.cols()),
        TtmTranspose::Transpose => (Transpose::Yes, v.rows(), v.cols()),
    };
    let lda = v.cols();

    if left == 1 {
        // First mode: the whole buffer is the column-major unfolding, so the
        // product is a single large GEMM instead of `right` column-sized ones:
        //   Y(1)ᵀ (Î₁ × K, row-major) = X(1)ᵀ (Î₁ × I₁, row-major) · op(V)ᵀ.
        let cols = right;
        gemm_slices_ctx(
            ctx,
            Transpose::No,
            match ta {
                Transpose::No => Transpose::Yes,
                Transpose::Yes => Transpose::No,
            },
            1.0,
            xdata,
            cols,
            in_dim,
            in_dim,
            v.as_slice(),
            a_rows,
            a_cols,
            lda,
            0.0,
            ydata,
            k,
        );
        return;
    }

    let blocks = BlockMul {
        v: v.as_slice(),
        ta,
        a_rows,
        a_cols,
        lda,
        in_dim,
        k,
        left,
        in_block,
        out_block,
    };
    let work = right
        .saturating_mul(k)
        .saturating_mul(in_dim)
        .saturating_mul(left);
    let parts = ctx.partition_for_work(right, work);
    if parts <= 1 {
        blocks.run(xdata, ydata, 0..right);
        return;
    }
    // Each range of `right` blocks is a "row panel" of width `out_block`.
    ctx.for_each_row_panel(ydata, out_block, chunk_ranges(right, parts), |ts, chunk| {
        blocks.run(xdata, chunk, ts)
    });
}

/// The mode-`n` (n > 0) block multiply over a range of `right` blocks —
/// the scatter unit of [`ttm_into_ctx`].
struct BlockMul<'a> {
    v: &'a [f64],
    ta: Transpose,
    a_rows: usize,
    a_cols: usize,
    lda: usize,
    in_dim: usize,
    k: usize,
    left: usize,
    in_block: usize,
    out_block: usize,
}

impl BlockMul<'_> {
    /// Multiplies blocks `ts` of `xdata` into `ychunk` (whose first element
    /// corresponds to block `ts.start`).
    fn run(&self, xdata: &[f64], ychunk: &mut [f64], ts: Range<usize>) {
        let fuse = self.left < FUSE_MAX_LEFT && ts.len() > 1 && self.k > 0;
        if fuse {
            self.run_fused(xdata, ychunk, ts);
        } else {
            for t in ts.clone() {
                let xin = &xdata[t * self.in_block..(t + 1) * self.in_block];
                let yout = &mut ychunk
                    [(t - ts.start) * self.out_block..(t + 1 - ts.start) * self.out_block];
                self.gemm_one(xin, self.left, yout, self.left);
            }
        }
    }

    /// One `op(V) · blockᵀ` GEMM with explicit leading dimensions.
    fn gemm_one(&self, b: &[f64], ldb: usize, c: &mut [f64], ldc: usize) {
        gemm_slices(
            self.ta,
            Transpose::No,
            1.0,
            self.v,
            self.a_rows,
            self.a_cols,
            self.lda,
            b,
            self.in_dim,
            ldb,
            ldb,
            0.0,
            c,
            ldc,
        );
    }

    /// Fused path for narrow blocks: pack `gc` consecutive blocks side by
    /// side into an `in_dim × (gc·left)` panel, multiply once, and scatter
    /// the `k × (gc·left)` product back into the per-block output layout.
    /// Per element this performs the identical sum (same contraction
    /// blocking) as `gc` separate block GEMMs.
    fn run_fused(&self, xdata: &[f64], ychunk: &mut [f64], ts: Range<usize>) {
        let g_max = (FUSE_TARGET_COLS / self.left).max(2);
        let w_max = g_max * self.left;
        let mut pack = vec![0.0f64; self.in_dim * w_max];
        let mut prod = vec![0.0f64; self.k * w_max];
        let mut t0 = ts.start;
        while t0 < ts.end {
            let gc = g_max.min(ts.end - t0);
            let w = gc * self.left;
            for g in 0..gc {
                let xin = &xdata[(t0 + g) * self.in_block..(t0 + g + 1) * self.in_block];
                for i in 0..self.in_dim {
                    pack[i * w + g * self.left..i * w + (g + 1) * self.left]
                        .copy_from_slice(&xin[i * self.left..(i + 1) * self.left]);
                }
            }
            self.gemm_one(&pack[..self.in_dim * w], w, &mut prod[..self.k * w], w);
            for g in 0..gc {
                let yout = &mut ychunk[(t0 + g - ts.start) * self.out_block
                    ..(t0 + g + 1 - ts.start) * self.out_block];
                for kk in 0..self.k {
                    yout[kk * self.left..(kk + 1) * self.left].copy_from_slice(
                        &prod[kk * w + g * self.left..kk * w + (g + 1) * self.left],
                    );
                }
            }
            t0 += gc;
        }
    }
}

/// Applies a TTM in every mode listed in `matrices`, skipping `None` entries:
/// `Y = X ×_{n ∈ modes} op(V_n)`.
///
/// The multiplications are applied in the order given by `order` (a permutation
/// of the non-`None` modes); since TTMs in distinct modes commute (Sec. II-A),
/// the order only affects intermediate sizes, not the result.
pub fn multi_ttm(
    x: &DenseTensor,
    matrices: &[Option<&Matrix>],
    trans: TtmTranspose,
    order: &[usize],
) -> DenseTensor {
    multi_ttm_ctx(ExecContext::global(), x, matrices, trans, order)
}

/// [`multi_ttm`] on an explicit execution context.
pub fn multi_ttm_ctx(
    ctx: &ExecContext,
    x: &DenseTensor,
    matrices: &[Option<&Matrix>],
    trans: TtmTranspose,
    order: &[usize],
) -> DenseTensor {
    assert_eq!(
        matrices.len(),
        x.ndims(),
        "multi_ttm: need one (optional) matrix per mode"
    );
    let mut current = x.clone();
    for &n in order {
        if let Some(v) = matrices[n] {
            current = ttm_ctx(ctx, &current, v, n, trans);
        }
    }
    current
}

/// Convenience wrapper: applies `op(V_n)` for every mode `n` in natural order.
pub fn ttm_chain(x: &DenseTensor, matrices: &[&Matrix], trans: TtmTranspose) -> DenseTensor {
    ttm_chain_ctx(ExecContext::global(), x, matrices, trans)
}

/// [`ttm_chain`] on an explicit execution context.
pub fn ttm_chain_ctx(
    ctx: &ExecContext,
    x: &DenseTensor,
    matrices: &[&Matrix],
    trans: TtmTranspose,
) -> DenseTensor {
    assert_eq!(
        matrices.len(),
        x.ndims(),
        "ttm_chain: need one matrix per mode"
    );
    let opts: Vec<Option<&Matrix>> = matrices.iter().map(|m| Some(*m)).collect();
    let order: Vec<usize> = (0..x.ndims()).collect();
    multi_ttm_ctx(ctx, x, &opts, trans, &order)
}

/// Reference TTM implemented directly from the definition
/// `Y(i_1,…,k,…,i_N) = Σ_{i_n} op(V)(k, i_n) · X(i_1,…,i_n,…,i_N)`.
/// Used by tests to validate the GEMM-based kernel.
pub fn ttm_reference(x: &DenseTensor, v: &Matrix, mode: usize, trans: TtmTranspose) -> DenseTensor {
    let dims = x.dims();
    let k = match trans {
        TtmTranspose::NoTranspose => v.rows(),
        TtmTranspose::Transpose => v.cols(),
    };
    let read_v = |kk: usize, i: usize| match trans {
        TtmTranspose::NoTranspose => v.get(kk, i),
        TtmTranspose::Transpose => v.get(i, kk),
    };
    let mut out_dims = dims.to_vec();
    out_dims[mode] = k;
    let mut y = DenseTensor::zeros(&out_dims);
    let mut out_idx = vec![0usize; dims.len()];
    for (idx, val) in x.indexed_iter() {
        if val == 0.0 {
            continue;
        }
        out_idx.clone_from_slice(&idx);
        for kk in 0..k {
            out_idx[mode] = kk;
            let cur = y.get(&out_idx);
            y.set(&out_idx, cur + read_v(kk, idx[mode]) * val);
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(rng: &mut StdRng, dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn assert_tensor_close(a: &DenseTensor, b: &DenseTensor, tol: f64) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "tensor mismatch {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference_all_modes() {
        let mut rng = StdRng::seed_from_u64(50);
        let dims = [4usize, 5, 3, 6];
        let x = random_tensor(&mut rng, &dims);
        for mode in 0..4 {
            let v = random_matrix(&mut rng, 7, dims[mode]);
            let fast = ttm(&x, &v, mode, TtmTranspose::NoTranspose);
            let slow = ttm_reference(&x, &v, mode, TtmTranspose::NoTranspose);
            assert_tensor_close(&fast, &slow, 1e-11);
            assert_eq!(fast.dim(mode), 7);
        }
    }

    #[test]
    fn transposed_matches_reference() {
        let mut rng = StdRng::seed_from_u64(51);
        let dims = [3usize, 6, 4];
        let x = random_tensor(&mut rng, &dims);
        for mode in 0..3 {
            let v = random_matrix(&mut rng, dims[mode], 5);
            let fast = ttm(&x, &v, mode, TtmTranspose::Transpose);
            let slow = ttm_reference(&x, &v, mode, TtmTranspose::Transpose);
            assert_tensor_close(&fast, &slow, 1e-11);
            assert_eq!(fast.dim(mode), 5);
        }
    }

    #[test]
    fn identity_matrix_is_neutral() {
        let mut rng = StdRng::seed_from_u64(52);
        let dims = [4usize, 3, 5];
        let x = random_tensor(&mut rng, &dims);
        for mode in 0..3 {
            let i = Matrix::identity(dims[mode]);
            let y = ttm(&x, &i, mode, TtmTranspose::NoTranspose);
            assert_tensor_close(&x, &y, 1e-14);
        }
    }

    #[test]
    fn ttm_unfolding_identity() {
        // Y(n) = V X(n): check via materialized unfoldings.
        let mut rng = StdRng::seed_from_u64(53);
        let dims = [3usize, 4, 5];
        let x = random_tensor(&mut rng, &dims);
        let mode = 1;
        let v = random_matrix(&mut rng, 6, dims[mode]);
        let y = ttm(&x, &v, mode, TtmTranspose::NoTranspose);
        let xu = Unfolding::new(&dims, mode).materialize(&x);
        let yu = Unfolding::new(y.dims(), mode).materialize(&y);
        let expected = tucker_linalg::gemm::gemm(Transpose::No, Transpose::No, 1.0, &v, &xu);
        for i in 0..yu.rows() {
            for j in 0..yu.cols() {
                assert!((yu.get(i, j) - expected.get(i, j)).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn modes_commute() {
        let mut rng = StdRng::seed_from_u64(54);
        let dims = [4usize, 5, 6];
        let x = random_tensor(&mut rng, &dims);
        let v0 = random_matrix(&mut rng, 2, 4);
        let v2 = random_matrix(&mut rng, 3, 6);
        let a = ttm(
            &ttm(&x, &v0, 0, TtmTranspose::NoTranspose),
            &v2,
            2,
            TtmTranspose::NoTranspose,
        );
        let b = ttm(
            &ttm(&x, &v2, 2, TtmTranspose::NoTranspose),
            &v0,
            0,
            TtmTranspose::NoTranspose,
        );
        assert_tensor_close(&a, &b, 1e-11);
    }

    #[test]
    fn multi_ttm_respects_order_and_skips_none() {
        let mut rng = StdRng::seed_from_u64(55);
        let dims = [3usize, 4, 5];
        let x = random_tensor(&mut rng, &dims);
        let v0 = random_matrix(&mut rng, 2, 3);
        let v2 = random_matrix(&mut rng, 2, 5);
        let out = multi_ttm(
            &x,
            &[Some(&v0), None, Some(&v2)],
            TtmTranspose::NoTranspose,
            &[2, 0],
        );
        assert_eq!(out.dims(), &[2, 4, 2]);
        let manual = ttm(
            &ttm(&x, &v2, 2, TtmTranspose::NoTranspose),
            &v0,
            0,
            TtmTranspose::NoTranspose,
        );
        assert_tensor_close(&out, &manual, 1e-12);
    }

    #[test]
    fn ttm_chain_applies_every_mode() {
        let mut rng = StdRng::seed_from_u64(56);
        let dims = [3usize, 4, 2];
        let x = random_tensor(&mut rng, &dims);
        let ms: Vec<Matrix> = dims
            .iter()
            .map(|&d| random_matrix(&mut rng, 2, d))
            .collect();
        let refs: Vec<&Matrix> = ms.iter().collect();
        let y = ttm_chain(&x, &refs, TtmTranspose::NoTranspose);
        assert_eq!(y.dims(), &[2, 2, 2]);
    }

    #[test]
    fn norm_contraction_with_orthonormal_rows() {
        // Multiplying by a matrix with orthonormal rows cannot increase the norm.
        let mut rng = StdRng::seed_from_u64(57);
        let dims = [6usize, 5, 4];
        let x = random_tensor(&mut rng, &dims);
        // Build a 3x6 matrix with orthonormal rows from a QR factorization.
        let q = tucker_linalg::qr::householder_qr(&random_matrix(&mut rng, 6, 3)).q; // 6x3
        let y = ttm(&x, &q, 0, TtmTranspose::Transpose); // multiply by qᵀ (3x6)
        assert!(y.norm() <= x.norm() + 1e-12);
    }

    #[test]
    fn fused_narrow_blocks_match_reference_elementwise() {
        // Shapes whose interior modes have small `left` (the fused batch
        // path) and enough `right` blocks to exercise group boundaries,
        // including a final partial group.
        let mut rng = StdRng::seed_from_u64(59);
        for dims in [vec![2usize, 5, 97], vec![3, 4, 5, 13], vec![7, 3, 41]] {
            let x = random_tensor(&mut rng, &dims);
            for mode in 1..dims.len() {
                for (trans, v) in [
                    (
                        TtmTranspose::NoTranspose,
                        random_matrix(&mut rng, 6, dims[mode]),
                    ),
                    (
                        TtmTranspose::Transpose,
                        random_matrix(&mut rng, dims[mode], 6),
                    ),
                ] {
                    let fast = ttm(&x, &v, mode, trans);
                    let slow = ttm_reference(&x, &v, mode, trans);
                    assert_tensor_close(&fast, &slow, 1e-11);
                }
            }
        }
    }

    #[test]
    fn ttm_is_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(49);
        // Large enough that interior modes clear the parallel work threshold.
        let dims = [24usize, 20, 18, 16];
        let x = random_tensor(&mut rng, &dims);
        let seq = tucker_exec::ExecContext::new(1);
        for mode in 0..dims.len() {
            let v = random_matrix(&mut rng, 5, dims[mode]);
            let baseline = ttm_ctx(&seq, &x, &v, mode, TtmTranspose::NoTranspose);
            for threads in [2usize, 4, 16] {
                let ctx = tucker_exec::ExecContext::new(threads);
                let out = ttm_ctx(&ctx, &x, &v, mode, TtmTranspose::NoTranspose);
                assert_eq!(out.as_slice(), baseline.as_slice(), "mode {mode}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let x = DenseTensor::zeros(&[2, 3]);
        let v = Matrix::zeros(4, 4);
        ttm(&x, &v, 0, TtmTranspose::NoTranspose);
    }

    #[test]
    fn two_way_tensor_is_matrix_product() {
        let mut rng = StdRng::seed_from_u64(58);
        let x = random_tensor(&mut rng, &[4, 5]);
        let v = random_matrix(&mut rng, 3, 4);
        let y = ttm(&x, &v, 0, TtmTranspose::NoTranspose);
        // X as a matrix is 4x5 column-major; Y should equal V·X.
        for i in 0..3 {
            for j in 0..5 {
                let mut s = 0.0;
                for k in 0..4 {
                    s += v.get(i, k) * x.get(&[k, j]);
                }
                assert!((y.get(&[i, j]) - s).abs() < 1e-12);
            }
        }
    }
}
