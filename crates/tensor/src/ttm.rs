//! Tensor-times-matrix (TTM) products — the central kernel of the Tucker
//! decomposition (paper Sec. II-A, V-B).
//!
//! `Y = X ×_n V` multiplies the mode-n unfolding: `Y(n) = V · X(n)`, where `V`
//! is `K × I_n`. With the natural layout of [`crate::layout`], each of the
//! `right` contiguous subblocks of `X` is a column-major `left × I_n` matrix,
//! so the per-block computation is a single GEMM and the result blocks land in
//! the output tensor's natural layout directly — no transposition, no copies.

use crate::dense::DenseTensor;
use crate::layout::Unfolding;
use tucker_linalg::gemm::{gemm_slices, Transpose};
use tucker_linalg::Matrix;

/// Whether the multiplying matrix is applied as stored or transposed.
///
/// ST-HOSVD and HOOI apply factor matrices transposed (`X ×_n U(n)ᵀ` with
/// `U(n)` of size `I_n × R_n`), while reconstruction applies them as stored
/// (`G ×_n U(n)`). Accepting the flag avoids materializing transposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TtmTranspose {
    /// Multiply by `V` itself: `V` must be `K × I_n`.
    NoTranspose,
    /// Multiply by `Vᵀ`: `V` must be `I_n × K`.
    Transpose,
}

/// Computes the mode-n TTM `Y = X ×_n op(V)`.
///
/// * `op(V) = V` (shape `K × I_n`) when `trans == NoTranspose`;
/// * `op(V) = Vᵀ` (so `V` has shape `I_n × K`) when `trans == Transpose`.
///
/// The result has the same dimensions as `X` except mode `n` becomes `K`.
///
/// # Panics
/// Panics if the matrix dimensions are incompatible with mode `n` of `X`.
pub fn ttm(x: &DenseTensor, v: &Matrix, mode: usize, trans: TtmTranspose) -> DenseTensor {
    let dims = x.dims();
    assert!(mode < dims.len(), "ttm: mode {mode} out of range");
    let in_dim = dims[mode];
    let (vk, vin) = match trans {
        TtmTranspose::NoTranspose => (v.rows(), v.cols()),
        TtmTranspose::Transpose => (v.cols(), v.rows()),
    };
    assert_eq!(
        vin, in_dim,
        "ttm: matrix inner dimension {vin} does not match tensor mode {mode} size {in_dim}"
    );
    let k = vk;

    let mut out_dims = dims.to_vec();
    out_dims[mode] = k;
    let mut y = DenseTensor::zeros(&out_dims);
    if x.is_empty() || k == 0 {
        return y;
    }

    ttm_into(x, v, mode, trans, &mut y);
    y
}

/// In-place variant of [`ttm`]: writes the result into a preallocated tensor
/// whose dimensions must already be correct. Used by the distributed kernels
/// to avoid repeated allocation inside the blocked loop of Alg. 3.
pub fn ttm_into(
    x: &DenseTensor,
    v: &Matrix,
    mode: usize,
    trans: TtmTranspose,
    y: &mut DenseTensor,
) {
    let dims = x.dims();
    let in_dim = dims[mode];
    let (k, vin) = match trans {
        TtmTranspose::NoTranspose => (v.rows(), v.cols()),
        TtmTranspose::Transpose => (v.cols(), v.rows()),
    };
    assert_eq!(vin, in_dim, "ttm_into: inner dimension mismatch");
    assert_eq!(y.dim(mode), k, "ttm_into: output mode dimension mismatch");
    for (m, (&a, &b)) in dims.iter().zip(y.dims().iter()).enumerate() {
        if m != mode {
            assert_eq!(a, b, "ttm_into: output dimension mismatch in mode {m}");
        }
    }

    let unf = Unfolding::new(dims, mode);
    let left = unf.left;
    let right = unf.right;
    let xdata = x.as_slice();
    let ydata = y.as_mut_slice();
    let in_block = left * in_dim;
    let out_block = left * k;

    // The per-block computation, in row-major terms:
    //   out_blockᵀ (k × left, row-major) = op(V) · in_blockᵀ (in_dim × left, row-major)
    // where in_blockᵀ is exactly the raw block memory reinterpreted row-major
    // with leading dimension `left`, and likewise for the output block.
    let (ta, a_rows, a_cols) = match trans {
        TtmTranspose::NoTranspose => (Transpose::No, v.rows(), v.cols()),
        TtmTranspose::Transpose => (Transpose::Yes, v.rows(), v.cols()),
    };
    let lda = v.cols();

    if left == 1 {
        // First mode: the whole buffer is the column-major unfolding, so the
        // product is a single large GEMM instead of `right` column-sized ones:
        //   Y(1)ᵀ (Î₁ × K, row-major) = X(1)ᵀ (Î₁ × I₁, row-major) · op(V)ᵀ.
        let cols = right;
        gemm_slices(
            Transpose::No,
            match ta {
                Transpose::No => Transpose::Yes,
                Transpose::Yes => Transpose::No,
            },
            1.0,
            xdata,
            cols,
            in_dim,
            in_dim,
            v.as_slice(),
            a_rows,
            a_cols,
            lda,
            0.0,
            ydata,
            k,
        );
        return;
    }

    for t in 0..right {
        let xin = &xdata[t * in_block..(t + 1) * in_block];
        let yout = &mut ydata[t * out_block..(t + 1) * out_block];
        gemm_slices(
            ta,
            Transpose::No,
            1.0,
            v.as_slice(),
            a_rows,
            a_cols,
            lda,
            xin,
            in_dim,
            left,
            left,
            0.0,
            yout,
            left,
        );
    }
}

/// Applies a TTM in every mode listed in `matrices`, skipping `None` entries:
/// `Y = X ×_{n ∈ modes} op(V_n)`.
///
/// The multiplications are applied in the order given by `order` (a permutation
/// of the non-`None` modes); since TTMs in distinct modes commute (Sec. II-A),
/// the order only affects intermediate sizes, not the result.
pub fn multi_ttm(
    x: &DenseTensor,
    matrices: &[Option<&Matrix>],
    trans: TtmTranspose,
    order: &[usize],
) -> DenseTensor {
    assert_eq!(
        matrices.len(),
        x.ndims(),
        "multi_ttm: need one (optional) matrix per mode"
    );
    let mut current = x.clone();
    for &n in order {
        if let Some(v) = matrices[n] {
            current = ttm(&current, v, n, trans);
        }
    }
    current
}

/// Convenience wrapper: applies `op(V_n)` for every mode `n` in natural order.
pub fn ttm_chain(x: &DenseTensor, matrices: &[&Matrix], trans: TtmTranspose) -> DenseTensor {
    assert_eq!(
        matrices.len(),
        x.ndims(),
        "ttm_chain: need one matrix per mode"
    );
    let opts: Vec<Option<&Matrix>> = matrices.iter().map(|m| Some(*m)).collect();
    let order: Vec<usize> = (0..x.ndims()).collect();
    multi_ttm(x, &opts, trans, &order)
}

/// Reference TTM implemented directly from the definition
/// `Y(i_1,…,k,…,i_N) = Σ_{i_n} op(V)(k, i_n) · X(i_1,…,i_n,…,i_N)`.
/// Used by tests to validate the GEMM-based kernel.
pub fn ttm_reference(x: &DenseTensor, v: &Matrix, mode: usize, trans: TtmTranspose) -> DenseTensor {
    let dims = x.dims();
    let k = match trans {
        TtmTranspose::NoTranspose => v.rows(),
        TtmTranspose::Transpose => v.cols(),
    };
    let read_v = |kk: usize, i: usize| match trans {
        TtmTranspose::NoTranspose => v.get(kk, i),
        TtmTranspose::Transpose => v.get(i, kk),
    };
    let mut out_dims = dims.to_vec();
    out_dims[mode] = k;
    let mut y = DenseTensor::zeros(&out_dims);
    let mut out_idx = vec![0usize; dims.len()];
    for (idx, val) in x.indexed_iter() {
        if val == 0.0 {
            continue;
        }
        out_idx.clone_from_slice(&idx);
        for kk in 0..k {
            out_idx[mode] = kk;
            let cur = y.get(&out_idx);
            y.set(&out_idx, cur + read_v(kk, idx[mode]) * val);
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(rng: &mut StdRng, dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn assert_tensor_close(a: &DenseTensor, b: &DenseTensor, tol: f64) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "tensor mismatch {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference_all_modes() {
        let mut rng = StdRng::seed_from_u64(50);
        let dims = [4usize, 5, 3, 6];
        let x = random_tensor(&mut rng, &dims);
        for mode in 0..4 {
            let v = random_matrix(&mut rng, 7, dims[mode]);
            let fast = ttm(&x, &v, mode, TtmTranspose::NoTranspose);
            let slow = ttm_reference(&x, &v, mode, TtmTranspose::NoTranspose);
            assert_tensor_close(&fast, &slow, 1e-11);
            assert_eq!(fast.dim(mode), 7);
        }
    }

    #[test]
    fn transposed_matches_reference() {
        let mut rng = StdRng::seed_from_u64(51);
        let dims = [3usize, 6, 4];
        let x = random_tensor(&mut rng, &dims);
        for mode in 0..3 {
            let v = random_matrix(&mut rng, dims[mode], 5);
            let fast = ttm(&x, &v, mode, TtmTranspose::Transpose);
            let slow = ttm_reference(&x, &v, mode, TtmTranspose::Transpose);
            assert_tensor_close(&fast, &slow, 1e-11);
            assert_eq!(fast.dim(mode), 5);
        }
    }

    #[test]
    fn identity_matrix_is_neutral() {
        let mut rng = StdRng::seed_from_u64(52);
        let dims = [4usize, 3, 5];
        let x = random_tensor(&mut rng, &dims);
        for mode in 0..3 {
            let i = Matrix::identity(dims[mode]);
            let y = ttm(&x, &i, mode, TtmTranspose::NoTranspose);
            assert_tensor_close(&x, &y, 1e-14);
        }
    }

    #[test]
    fn ttm_unfolding_identity() {
        // Y(n) = V X(n): check via materialized unfoldings.
        let mut rng = StdRng::seed_from_u64(53);
        let dims = [3usize, 4, 5];
        let x = random_tensor(&mut rng, &dims);
        let mode = 1;
        let v = random_matrix(&mut rng, 6, dims[mode]);
        let y = ttm(&x, &v, mode, TtmTranspose::NoTranspose);
        let xu = Unfolding::new(&dims, mode).materialize(&x);
        let yu = Unfolding::new(y.dims(), mode).materialize(&y);
        let expected = tucker_linalg::gemm::gemm(Transpose::No, Transpose::No, 1.0, &v, &xu);
        for i in 0..yu.rows() {
            for j in 0..yu.cols() {
                assert!((yu.get(i, j) - expected.get(i, j)).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn modes_commute() {
        let mut rng = StdRng::seed_from_u64(54);
        let dims = [4usize, 5, 6];
        let x = random_tensor(&mut rng, &dims);
        let v0 = random_matrix(&mut rng, 2, 4);
        let v2 = random_matrix(&mut rng, 3, 6);
        let a = ttm(
            &ttm(&x, &v0, 0, TtmTranspose::NoTranspose),
            &v2,
            2,
            TtmTranspose::NoTranspose,
        );
        let b = ttm(
            &ttm(&x, &v2, 2, TtmTranspose::NoTranspose),
            &v0,
            0,
            TtmTranspose::NoTranspose,
        );
        assert_tensor_close(&a, &b, 1e-11);
    }

    #[test]
    fn multi_ttm_respects_order_and_skips_none() {
        let mut rng = StdRng::seed_from_u64(55);
        let dims = [3usize, 4, 5];
        let x = random_tensor(&mut rng, &dims);
        let v0 = random_matrix(&mut rng, 2, 3);
        let v2 = random_matrix(&mut rng, 2, 5);
        let out = multi_ttm(
            &x,
            &[Some(&v0), None, Some(&v2)],
            TtmTranspose::NoTranspose,
            &[2, 0],
        );
        assert_eq!(out.dims(), &[2, 4, 2]);
        let manual = ttm(
            &ttm(&x, &v2, 2, TtmTranspose::NoTranspose),
            &v0,
            0,
            TtmTranspose::NoTranspose,
        );
        assert_tensor_close(&out, &manual, 1e-12);
    }

    #[test]
    fn ttm_chain_applies_every_mode() {
        let mut rng = StdRng::seed_from_u64(56);
        let dims = [3usize, 4, 2];
        let x = random_tensor(&mut rng, &dims);
        let ms: Vec<Matrix> = dims
            .iter()
            .map(|&d| random_matrix(&mut rng, 2, d))
            .collect();
        let refs: Vec<&Matrix> = ms.iter().collect();
        let y = ttm_chain(&x, &refs, TtmTranspose::NoTranspose);
        assert_eq!(y.dims(), &[2, 2, 2]);
    }

    #[test]
    fn norm_contraction_with_orthonormal_rows() {
        // Multiplying by a matrix with orthonormal rows cannot increase the norm.
        let mut rng = StdRng::seed_from_u64(57);
        let dims = [6usize, 5, 4];
        let x = random_tensor(&mut rng, &dims);
        // Build a 3x6 matrix with orthonormal rows from a QR factorization.
        let q = tucker_linalg::qr::householder_qr(&random_matrix(&mut rng, 6, 3)).q; // 6x3
        let y = ttm(&x, &q, 0, TtmTranspose::Transpose); // multiply by qᵀ (3x6)
        assert!(y.norm() <= x.norm() + 1e-12);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let x = DenseTensor::zeros(&[2, 3]);
        let v = Matrix::zeros(4, 4);
        ttm(&x, &v, 0, TtmTranspose::NoTranspose);
    }

    #[test]
    fn two_way_tensor_is_matrix_product() {
        let mut rng = StdRng::seed_from_u64(58);
        let x = random_tensor(&mut rng, &[4, 5]);
        let v = random_matrix(&mut rng, 3, 4);
        let y = ttm(&x, &v, 0, TtmTranspose::NoTranspose);
        // X as a matrix is 4x5 column-major; Y should equal V·X.
        for i in 0..3 {
            for j in 0..5 {
                let mut s = 0.0;
                for k in 0..4 {
                    s += v.get(i, k) * x.get(&[k, j]);
                }
                assert!((y.get(&[i, j]) - s).abs() < 1e-12);
            }
        }
    }
}
