//! `tucker-obs` — the workspace-wide observability layer.
//!
//! Every other crate of the workspace measures itself through this one:
//! kernel flop counters and scatter statistics, the shared-cache hit/miss
//! accounting, the daemon's per-opcode latency histograms, and the span
//! traces behind the fig8/fig9 timing plots. The crate has **zero
//! dependencies** (std only) so it can sit below `tucker-exec` at the very
//! bottom of the crate graph.
//!
//! Two independent facilities:
//!
//! * [`metrics`] — a process-wide registry of atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket latency [`Histogram`]s. Handles are
//!   `const`-constructible statics; the first touch registers the metric,
//!   every later touch is one relaxed atomic operation. Setting
//!   `TUCKER_METRICS=0` turns every recording call into a branch on a
//!   cached flag — no allocation, no registration, no atomics.
//!   [`metrics::render`] produces the line-oriented text exposition served
//!   by the `tucker-serve` `metrics` opcode.
//! * [`trace`] — structured span tracing. [`span!`] opens a named scope
//!   whose start/end timestamps are written on drop to the sink configured
//!   by `TUCKER_TRACE=<path>` (chrome-trace JSON when the path ends in
//!   `.json`, plain JSON-lines otherwise). With no sink installed a span
//!   is a single atomic load.
//!
//! **Determinism contract:** nothing in this crate feeds back into
//! computation — recording reads clocks and bumps atomics, never values —
//! so every compression/query output is bit-identical with metrics and
//! tracing on, off, or redirected (pinned by `tests/obs.rs`).

#![deny(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram};
pub use trace::SpanGuard;

/// Opens a traced span: `span!("name")` or `span!("ttm", mode = n, k = r)`.
///
/// Returns a [`SpanGuard`] that records the span on drop; bind it to a
/// variable (`let _span = ...`) so it lives to the end of the scope.
/// Argument values are captured as `i64`. When no trace sink is active the
/// expansion costs one atomic load and captures nothing.
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::trace::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::trace::span_args($name, &[$((stringify!($key), ($value) as i64)),+])
    };
}
