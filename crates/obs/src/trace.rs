//! Structured span tracing with chrome-trace / JSON-lines export.
//!
//! # Lifecycle
//!
//! A span is opened with [`crate::span!`] (or [`span`]/[`span_args`]) and
//! closed when the returned [`SpanGuard`] drops; the drop writes one
//! complete event — name, integer arguments, start timestamp, duration,
//! thread id — to the installed sink. Nesting needs no bookkeeping: the
//! chrome trace viewer reconstructs the stack from event containment per
//! thread.
//!
//! # Sink
//!
//! The sink is installed either explicitly with [`install`] or lazily from
//! the `TUCKER_TRACE=<path>` environment variable on the first span. A
//! path ending in `.json` selects the chrome-trace array format (load it
//! at `chrome://tracing` or <https://ui.perfetto.dev>); any other path gets
//! plain JSON-lines with the same event objects. Writes are buffered; call
//! [`flush`] (or [`uninstall`], which also closes the JSON array) before
//! reading the file.
//!
//! With no sink active, opening a span costs one atomic load and records
//! nothing — and recording never feeds back into computation, so traced
//! and untraced runs produce bit-identical results.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Fast-path flag: true while a sink is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);

struct Sink {
    out: Mutex<BufWriter<File>>,
    chrome: bool,
    epoch: Instant,
}

fn sink_slot() -> &'static Mutex<Option<Arc<Sink>>> {
    static SINK: OnceLock<Mutex<Option<Arc<Sink>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn lock_sink() -> std::sync::MutexGuard<'static, Option<Arc<Sink>>> {
    sink_slot().lock().unwrap_or_else(|e| e.into_inner())
}

/// One-time lazy initialization from `TUCKER_TRACE`.
fn env_init() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        if let Ok(path) = std::env::var("TUCKER_TRACE") {
            if !path.is_empty() && install(&path).is_err() {
                eprintln!("tucker-obs: cannot open TUCKER_TRACE={path}; tracing disabled");
            }
        }
    });
}

/// Whether a trace sink is currently installed.
pub fn active() -> bool {
    env_init();
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs a trace sink writing to `path`, replacing any previous sink
/// (the previous one is flushed and closed). Chrome-trace array format
/// when `path` ends in `.json`, JSON-lines otherwise.
pub fn install(path: &str) -> std::io::Result<()> {
    let chrome = path.ends_with(".json");
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    if chrome {
        let _ = writer.write_all(b"[\n");
    }
    let sink = Arc::new(Sink {
        out: Mutex::new(writer),
        chrome,
        epoch: Instant::now(),
    });
    let previous = {
        let mut slot = lock_sink();
        let previous = slot.take();
        *slot = Some(sink);
        ACTIVE.store(true, Ordering::Relaxed);
        previous
    };
    if let Some(prev) = previous {
        close_sink(&prev);
    }
    Ok(())
}

/// Removes the active sink (if any), flushing it and — for chrome-trace
/// output — terminating the JSON array so the file is strictly valid.
pub fn uninstall() {
    let previous = {
        let mut slot = lock_sink();
        ACTIVE.store(false, Ordering::Relaxed);
        slot.take()
    };
    if let Some(prev) = previous {
        close_sink(&prev);
    }
}

/// Flushes buffered events to the trace file without closing the sink.
pub fn flush() {
    let sink = lock_sink().clone();
    if let Some(sink) = sink {
        let mut out = sink.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = out.flush();
    }
}

fn close_sink(sink: &Arc<Sink>) {
    let mut out = sink.out.lock().unwrap_or_else(|e| e.into_inner());
    if sink.chrome {
        // Every event line ends with a comma; an empty object closes the
        // array as strictly valid JSON.
        let _ = out.write_all(b"{}\n]\n");
    }
    let _ = out.flush();
}

/// Small dense per-process thread ids (chrome's `tid` field).
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }
    TID.try_with(|cell| {
        if cell.get() == 0 {
            cell.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        cell.get()
    })
    .unwrap_or(0)
}

/// Live state of an open span (absent when tracing is inactive).
struct SpanData {
    sink: Arc<Sink>,
    name: &'static str,
    args: Vec<(&'static str, i64)>,
    start: Instant,
}

/// Guard returned by [`span`]/[`span_args`]; records the span on drop.
pub struct SpanGuard {
    data: Option<SpanData>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            let end = Instant::now();
            // Timestamps are µs since sink installation (saturating for
            // spans opened before a reinstall).
            let ts = data.start.duration_since(data.sink.epoch).as_nanos() as f64 / 1000.0;
            let dur = end.duration_since(data.start).as_nanos() as f64 / 1000.0;
            let mut line = String::with_capacity(96);
            let _ = write!(
                line,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{}",
                data.name,
                thread_id()
            );
            if !data.args.is_empty() {
                let _ = write!(line, ",\"args\":{{");
                for (i, (key, value)) in data.args.iter().enumerate() {
                    let sep = if i == 0 { "" } else { "," };
                    let _ = write!(line, "{sep}\"{key}\":{value}");
                }
                let _ = write!(line, "}}");
            }
            let _ = write!(line, "}}");
            let mut out = data.sink.out.lock().unwrap_or_else(|e| e.into_inner());
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(if data.sink.chrome { b",\n" } else { b"\n" });
        }
    }
}

/// Opens an argument-less span (see [`crate::span!`]).
pub fn span(name: &'static str) -> SpanGuard {
    span_args(name, &[])
}

/// Opens a span with integer arguments. `name` and keys must be plain
/// identifiers (they are emitted into JSON unescaped).
pub fn span_args(name: &'static str, args: &[(&'static str, i64)]) -> SpanGuard {
    if !active() {
        return SpanGuard { data: None };
    }
    let sink = lock_sink().clone();
    match sink {
        Some(sink) => SpanGuard {
            data: Some(SpanData {
                sink,
                name,
                args: args.to_vec(),
                start: Instant::now(),
            }),
        },
        None => SpanGuard { data: None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Serializes tests that install/uninstall the global sink.
    fn sink_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: StdMutex<()> = StdMutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tucker_obs_trace_{}_{name}", std::process::id()))
    }

    #[test]
    fn inactive_spans_record_nothing_and_cost_nothing_visible() {
        let _g = sink_guard();
        uninstall();
        let guard = crate::span!("noop", mode = 3);
        drop(guard);
        assert!(!ACTIVE.load(Ordering::Relaxed));
    }

    #[test]
    fn jsonl_sink_writes_one_event_per_span() {
        let _g = sink_guard();
        let path = temp_path("jsonl.trace");
        install(path.to_str().unwrap()).unwrap();
        {
            let _outer = crate::span!("outer", mode = 2, rank = 5);
            let _inner = crate::span!("inner");
        }
        uninstall();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "two spans → two JSONL events: {text}");
        // Inner drops first.
        assert!(lines[0].contains("\"name\":\"inner\""));
        assert!(lines[1].contains("\"name\":\"outer\""));
        assert!(lines[1].contains("\"args\":{\"mode\":2,\"rank\":5}"));
        assert!(lines[1].contains("\"ph\":\"X\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chrome_sink_emits_a_valid_json_array() {
        let _g = sink_guard();
        let path = temp_path("chrome.json");
        install(path.to_str().unwrap()).unwrap();
        {
            let _span = crate::span!("ttm", mode = 1);
        }
        uninstall();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"name\":\"ttm\""));
        // Strict validity: balanced brackets and a parseable shape — every
        // event line ends in a comma and the array closes with `{}`.
        assert!(text.contains("{}\n]"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reinstall_flushes_previous_sink() {
        let _g = sink_guard();
        let first = temp_path("first.trace");
        let second = temp_path("second.trace");
        install(first.to_str().unwrap()).unwrap();
        drop(crate::span!("one"));
        install(second.to_str().unwrap()).unwrap();
        drop(crate::span!("two"));
        uninstall();
        let first_text = std::fs::read_to_string(&first).unwrap();
        let second_text = std::fs::read_to_string(&second).unwrap();
        assert!(first_text.contains("\"name\":\"one\""));
        assert!(!first_text.contains("\"name\":\"two\""));
        assert!(second_text.contains("\"name\":\"two\""));
        std::fs::remove_file(&first).ok();
        std::fs::remove_file(&second).ok();
    }
}
