//! The process-wide metrics registry: counters, gauges, latency histograms.
//!
//! # Design
//!
//! Metric handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//! `const`-constructible, so call sites declare them as statics next to the
//! code they instrument:
//!
//! ```
//! use tucker_obs::metrics::Counter;
//! static FLOPS: Counter = Counter::new("linalg.gemm.flops");
//! FLOPS.add(2 * 64 * 64 * 64);
//! ```
//!
//! The first recording call registers the metric's storage (one leaked
//! atomic — the registry lives for the whole process) in a global sorted
//! map and caches the reference in the handle's `OnceLock`; every later
//! call is a load of the enabled flag plus one relaxed atomic RMW. Two
//! handles declaring the same name share storage, so a metric can be
//! bumped from several call sites.
//!
//! # Disabling
//!
//! `TUCKER_METRICS=0` (read once, overridable at runtime with
//! [`set_enabled`]) short-circuits every recording call before it touches
//! the registry: nothing is allocated, registered, or written — the
//! zero-allocation contract is pinned by `tests/obs.rs`.
//!
//! # Exposition
//!
//! [`render`] serializes the whole registry as sorted text, one metric per
//! line (the format served over the `tucker-serve` wire):
//!
//! ```text
//! counter <name> <value>
//! gauge <name> <value>
//! hist <name> count=<n> sum_us=<total> p50=<us> p99=<us>
//! ```
//!
//! Histogram quantiles are nearest-rank over the fixed power-of-two
//! microsecond buckets, reported as the bucket's inclusive upper bound.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Cached process-wide enabled flag (default on; `TUCKER_METRICS=0` → off).
fn enabled_cell() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let on = match std::env::var("TUCKER_METRICS") {
            Ok(v) => v != "0",
            Err(_) => true,
        };
        AtomicBool::new(on)
    })
}

/// Whether metric recording is currently enabled.
pub fn enabled() -> bool {
    enabled_cell().load(Ordering::Relaxed)
}

/// Overrides the `TUCKER_METRICS` switch at runtime.
///
/// Used by the overhead gate (to time the same process with metrics on and
/// off) and by tests; production code should leave the env-derived default
/// alone.
pub fn set_enabled(on: bool) {
    enabled_cell().store(on, Ordering::Relaxed);
}

/// Registered storage for one metric.
enum Slot {
    Counter(&'static AtomicU64),
    Gauge(&'static AtomicI64),
    Hist(&'static HistStorage),
}

/// The global name → storage map behind every handle.
fn registry() -> &'static Mutex<BTreeMap<&'static str, Slot>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Slot>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, Slot>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotonically increasing `u64` metric.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// Declares a counter; storage is registered on first use.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn storage(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(|| {
            let mut reg = lock_registry();
            let slot = reg
                .entry(self.name)
                .or_insert_with(|| Slot::Counter(Box::leak(Box::new(AtomicU64::new(0)))));
            match slot {
                Slot::Counter(c) => c,
                // Name already registered as a different type: record into a
                // detached cell rather than corrupting the registered metric.
                _ => Box::leak(Box::new(AtomicU64::new(0))),
            }
        })
    }

    /// Adds `v` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, v: u64) {
        if enabled() {
            self.storage().fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (registers the metric if it was never recorded).
    pub fn value(&self) -> u64 {
        self.storage().load(Ordering::Relaxed)
    }
}

/// A signed up/down metric (queue depths, in-flight request counts).
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<&'static AtomicI64>,
}

impl Gauge {
    /// Declares a gauge; storage is registered on first use.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    fn storage(&self) -> &'static AtomicI64 {
        self.cell.get_or_init(|| {
            let mut reg = lock_registry();
            let slot = reg
                .entry(self.name)
                .or_insert_with(|| Slot::Gauge(Box::leak(Box::new(AtomicI64::new(0)))));
            match slot {
                Slot::Gauge(g) => g,
                _ => Box::leak(Box::new(AtomicI64::new(0))),
            }
        })
    }

    /// Adds `v` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, v: i64) {
        if enabled() {
            self.storage().fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Subtracts `v`.
    #[inline]
    pub fn sub(&self, v: i64) {
        self.add(-v);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrites the value (no-op while metrics are disabled).
    pub fn set(&self, v: i64) {
        if enabled() {
            self.storage().store(v, Ordering::Relaxed);
        }
    }

    /// Current value (registers the metric if it was never recorded).
    pub fn value(&self) -> i64 {
        self.storage().load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: indices `0..=26` hold values whose
/// microsecond magnitude is at most `2^index` (inclusive upper bound), and
/// the final slot collects everything larger (> ~67 s).
pub const HIST_BUCKETS: usize = 28;

/// Index of the fixed bucket a microsecond value falls into.
///
/// Bucket `i < 27` covers `(2^(i-1), 2^i]` µs (bucket 0 covers `[0, 1]`);
/// bucket 27 is the overflow slot.
pub fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        let idx = 64 - ((us - 1).leading_zeros() as usize);
        idx.min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound (µs) of bucket `idx`; `u64::MAX` for the overflow
/// slot (and any out-of-range index).
pub fn bucket_upper_bound_us(idx: usize) -> u64 {
    if idx >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << idx
    }
}

/// Heap storage of one histogram.
struct HistStorage {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl HistStorage {
    fn new() -> HistStorage {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        HistStorage {
            buckets: [ZERO; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A fixed-bucket latency histogram over power-of-two microsecond bounds.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistStorage>,
}

impl Histogram {
    /// Declares a histogram; storage is registered on first use.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            cell: OnceLock::new(),
        }
    }

    fn storage(&self) -> &'static HistStorage {
        self.cell.get_or_init(|| {
            let mut reg = lock_registry();
            let slot = reg
                .entry(self.name)
                .or_insert_with(|| Slot::Hist(Box::leak(Box::new(HistStorage::new()))));
            match slot {
                Slot::Hist(h) => h,
                _ => Box::leak(Box::new(HistStorage::new())),
            }
        })
    }

    /// Records one observation of `us` microseconds (no-op while disabled).
    #[inline]
    pub fn observe_us(&self, us: u64) {
        if enabled() {
            let h = self.storage();
            h.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum_us.fetch_add(us, Ordering::Relaxed);
        }
    }

    /// Records one observed duration (microsecond resolution, saturating).
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// A consistent-enough copy of the current state (relaxed reads; exact
    /// once concurrent writers have quiesced).
    pub fn snapshot(&self) -> HistSnapshot {
        self.storage().snapshot()
    }
}

/// A point-in-time copy of one histogram's buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values, in microseconds.
    pub sum_us: u64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    /// Nearest-rank quantile: the inclusive upper bound (µs) of the bucket
    /// holding the `ceil(q·count)`-th smallest observation (`q` clamped to
    /// `[0, 1]`). Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= rank {
                return bucket_upper_bound_us(i);
            }
        }
        bucket_upper_bound_us(HIST_BUCKETS - 1)
    }
}

/// Serializes the whole registry as sorted `counter`/`gauge`/`hist` lines
/// (see the module docs for the grammar). Metrics recorded while rendering
/// may or may not appear; names registered but never bumped render as 0.
pub fn render() -> String {
    let reg = lock_registry();
    let mut out = String::new();
    for (name, slot) in reg.iter() {
        match slot {
            Slot::Counter(c) => {
                let _ = writeln!(out, "counter {name} {}", c.load(Ordering::Relaxed));
            }
            Slot::Gauge(g) => {
                let _ = writeln!(out, "gauge {name} {}", g.load(Ordering::Relaxed));
            }
            Slot::Hist(h) => {
                let s = h.snapshot();
                let _ = writeln!(
                    out,
                    "hist {name} count={} sum_us={} p50={} p99={}",
                    s.count,
                    s.sum_us,
                    s.quantile_us(0.50),
                    s.quantile_us(0.99)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Mutex as StdMutex;

    /// Serializes tests that flip the global enabled flag.
    fn enabled_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: StdMutex<()> = StdMutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counter_accumulates_and_renders() {
        let _g = enabled_guard();
        set_enabled(true);
        static C: Counter = Counter::new("test.metrics.counter_accumulates");
        let before = C.value();
        C.inc();
        C.add(41);
        assert_eq!(C.value(), before + 42);
        let text = render();
        assert!(text
            .lines()
            .any(|l| l.starts_with("counter test.metrics.counter_accumulates ")));
    }

    #[test]
    fn same_name_shares_storage() {
        let _g = enabled_guard();
        set_enabled(true);
        static A: Counter = Counter::new("test.metrics.shared_storage");
        static B: Counter = Counter::new("test.metrics.shared_storage");
        let before = A.value();
        B.add(7);
        assert_eq!(A.value(), before + 7);
    }

    #[test]
    fn gauge_tracks_up_and_down() {
        let _g = enabled_guard();
        set_enabled(true);
        static G: Gauge = Gauge::new("test.metrics.gauge_up_down");
        G.set(0);
        G.add(5);
        G.dec();
        assert_eq!(G.value(), 4);
        G.sub(10);
        assert_eq!(G.value(), -6);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _g = enabled_guard();
        static C: Counter = Counter::new("test.metrics.disabled_counter");
        static H: Histogram = Histogram::new("test.metrics.disabled_hist");
        set_enabled(true);
        C.add(1); // register storage while enabled
        let before = C.value();
        let hist_before = H.snapshot().count;
        set_enabled(false);
        C.add(100);
        H.observe_us(123);
        set_enabled(true);
        assert_eq!(C.value(), before);
        assert_eq!(H.snapshot().count, hist_before);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 is [0, 1] µs; bucket i is (2^(i-1), 2^i] µs.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        for i in 1..(HIST_BUCKETS - 1) {
            let ub = 1u64 << i;
            assert_eq!(bucket_index(ub), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(ub + 1), (i + 1).min(HIST_BUCKETS - 1));
        }
        // Overflow slot.
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_upper_bound_us(HIST_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_upper_bound_us(0), 1);
        assert_eq!(bucket_upper_bound_us(10), 1024);
    }

    #[test]
    fn histogram_quantiles_are_nearest_rank() {
        let _g = enabled_guard();
        set_enabled(true);
        static H: Histogram = Histogram::new("test.metrics.quantiles");
        // 10 observations: 4 in bucket ≤16µs, 5 in ≤256µs, 1 in ≤4096µs.
        for _ in 0..4 {
            H.observe_us(10);
        }
        for _ in 0..5 {
            H.observe_us(200);
        }
        H.observe_us(3000);
        let s = H.snapshot();
        assert_eq!(s.count, 10);
        // rank(0.5) = 5 → bucket of 200µs (ub 256).
        assert_eq!(s.quantile_us(0.5), 256);
        // rank(0.99) = 10 → bucket of 3000µs (ub 4096).
        assert_eq!(s.quantile_us(0.99), 4096);
        // Clamping: q <= 0 → first observation's bucket, q >= 1 → last.
        assert_eq!(s.quantile_us(0.0), 16);
        assert_eq!(s.quantile_us(1.0), 4096);
        assert_eq!(s.quantile_us(2.0), 4096);
        // Empty histogram.
        let empty = HistSnapshot {
            count: 0,
            sum_us: 0,
            buckets: [0; HIST_BUCKETS],
        };
        assert_eq!(empty.quantile_us(0.5), 0);
    }

    #[test]
    fn histogram_duration_observation_saturates() {
        let _g = enabled_guard();
        set_enabled(true);
        static H: Histogram = Histogram::new("test.metrics.duration_saturate");
        let before = H.snapshot().count;
        H.observe(Duration::from_micros(100));
        H.observe(Duration::MAX); // saturates into the overflow bucket
        let s = H.snapshot();
        assert_eq!(s.count, before + 2);
        assert!(s.buckets[HIST_BUCKETS - 1] >= 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// N threads hammering one counter and one histogram concurrently:
        /// the totals must be exact (no lost updates).
        #[test]
        fn concurrent_recording_is_exact(threads in 2usize..8, per_thread in 1u64..400) {
            let _g = enabled_guard();
            set_enabled(true);
            static C: Counter = Counter::new("test.metrics.concurrent_counter");
            static H: Histogram = Histogram::new("test.metrics.concurrent_hist");
            let c_before = C.value();
            let h_before = H.snapshot();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            C.add(1 + (i % 3));
                            H.observe_us(1 + (t as u64) * 100 + i);
                        }
                    });
                }
            });
            // Each thread adds sum over i of 1 + i%3.
            let per_thread_total: u64 = (0..per_thread).map(|i| 1 + (i % 3)).sum();
            prop_assert_eq!(C.value() - c_before, threads as u64 * per_thread_total);
            let h_after = H.snapshot();
            prop_assert_eq!(h_after.count - h_before.count, threads as u64 * per_thread);
            let bucket_total: u64 = h_after.buckets.iter().sum::<u64>()
                - h_before.buckets.iter().sum::<u64>();
            prop_assert_eq!(bucket_total, threads as u64 * per_thread);
        }
    }
}
