//! Collective operations over a [`SubCommunicator`] group.
//!
//! The algorithms mirror the standard implementations whose costs the paper
//! quotes in Tab. I (following Chan et al. and Thakur et al.):
//!
//! * **broadcast** — binomial tree: `⌈log₂ P⌉` rounds.
//! * **reduce** — binomial tree (mirror of broadcast): `⌈log₂ P⌉` rounds,
//!   `α log P + (β + γ)·(P−1)/P·W` in the model.
//! * **all-gather** — ring: `P − 1` steps, bandwidth-optimal `β·(P−1)/P·W`.
//! * **reduce-scatter** — ring: `P − 1` steps, bandwidth-optimal.
//! * **all-reduce** — reduce-scatter followed by all-gather (Rabenseifner),
//!   matching the Tab. I cost `2α log P + (2β + γ)·(P−1)/P·W`.
//!
//! All reductions are elementwise sums over `f64`, the only reduction the
//! Tucker algorithms need.
//!
//! Every public collective records its wall-clock latency in a process-wide
//! `tucker-obs` histogram (`distmem.<collective>.us`). The collectives are
//! transport-agnostic, so on the in-process backend these histograms measure
//! channel/switching overhead, while on the TCP backend they are the paper's
//! per-collective α-β terms measured against *real sockets* — the
//! `table7_transport` gate prints them side by side.

use crate::subcomm::SubCommunicator;
use tucker_obs::metrics::Histogram;

static BROADCAST_US: Histogram = Histogram::new("distmem.broadcast.us");
static REDUCE_US: Histogram = Histogram::new("distmem.reduce.us");
static ALL_GATHER_US: Histogram = Histogram::new("distmem.all_gather.us");
static REDUCE_SCATTER_US: Histogram = Histogram::new("distmem.reduce_scatter.us");
static ALL_REDUCE_US: Histogram = Histogram::new("distmem.all_reduce.us");
static GATHER_US: Histogram = Histogram::new("distmem.gather.us");
static SCATTER_US: Histogram = Histogram::new("distmem.scatter.us");

/// Runs `f`, recording its wall-clock latency in `hist`.
fn timed<T>(hist: &Histogram, f: impl FnOnce() -> T) -> T {
    let t0 = std::time::Instant::now();
    let out = f();
    hist.observe(t0.elapsed());
    out
}

/// Broadcasts `data` from group position `root` to all members; every member
/// returns the full buffer.
pub fn broadcast(group: &SubCommunicator<'_>, root: usize, data: &[f64]) -> Vec<f64> {
    timed(&BROADCAST_US, || broadcast_inner(group, root, data))
}

fn broadcast_inner(group: &SubCommunicator<'_>, root: usize, data: &[f64]) -> Vec<f64> {
    group.note_collective();
    let p = group.size();
    assert!(root < p, "broadcast: root {root} out of range");
    if p == 1 {
        return data.to_vec();
    }
    // Re-index positions so that the root is virtual rank 0.
    let me = (group.pos() + p - root) % p;
    let mut buf: Option<Vec<f64>> = if group.pos() == root {
        Some(data.to_vec())
    } else {
        None
    };
    // Binomial tree: in round k (mask = 2^k), ranks < mask with a partner
    // (me + mask < p) send to me + mask.
    let mut mask = 1usize;
    while mask < p {
        if me < mask {
            let partner = me + mask;
            if partner < p {
                let dst = (partner + root) % p;
                group.send(dst, buf.as_ref().expect("broadcast: sender without data"));
            }
        } else if me < 2 * mask {
            let partner = me - mask;
            let src = (partner + root) % p;
            buf = Some(group.recv(src));
        }
        mask <<= 1;
    }
    buf.expect("broadcast: rank never received data")
}

/// Reduces (elementwise sum) the equal-length buffers of all members onto the
/// member at group position `root`. The root returns the sum; other members
/// return `None`.
pub fn reduce(group: &SubCommunicator<'_>, root: usize, data: &[f64]) -> Option<Vec<f64>> {
    timed(&REDUCE_US, || reduce_inner(group, root, data))
}

fn reduce_inner(group: &SubCommunicator<'_>, root: usize, data: &[f64]) -> Option<Vec<f64>> {
    group.note_collective();
    let p = group.size();
    assert!(root < p, "reduce: root {root} out of range");
    if p == 1 {
        return Some(data.to_vec());
    }
    let me = (group.pos() + p - root) % p;
    let mut acc = data.to_vec();
    // Reverse binomial tree: in the last broadcast round senders become receivers.
    // Find the highest power of two ≥ p.
    let mut mask = 1usize;
    while mask < p {
        mask <<= 1;
    }
    mask >>= 1;
    while mask >= 1 {
        if me < mask {
            let partner = me + mask;
            if partner < p {
                let src = (partner + root) % p;
                let incoming = group.recv(src);
                assert_eq!(
                    incoming.len(),
                    acc.len(),
                    "reduce: buffer length mismatch between members"
                );
                for (a, b) in acc.iter_mut().zip(incoming.iter()) {
                    *a += b;
                }
            }
        } else if me < 2 * mask {
            let partner = me - mask;
            let dst = (partner + root) % p;
            group.send(dst, &acc);
            return None;
        }
        mask >>= 1;
    }
    Some(acc)
}

/// Splits `total` elements into `parts` near-equal contiguous chunks; returns
/// the `(offset, len)` of chunk `idx`. Shared by the ring collectives.
fn chunk_range(total: usize, parts: usize, idx: usize) -> (usize, usize) {
    let base = total / parts;
    let rem = total % parts;
    let len = base + usize::from(idx < rem);
    let off = idx * base + idx.min(rem);
    (off, len)
}

/// Ring all-gather: every member contributes `data` and receives the
/// concatenation of all contributions in group order.
pub fn all_gather(group: &SubCommunicator<'_>, data: &[f64]) -> Vec<f64> {
    timed(&ALL_GATHER_US, || all_gather_inner(group, data))
}

fn all_gather_inner(group: &SubCommunicator<'_>, data: &[f64]) -> Vec<f64> {
    group.note_collective();
    let p = group.size();
    if p == 1 {
        return data.to_vec();
    }
    // Gather the (possibly unequal) lengths first so offsets are known.
    let lengths = all_gather_lengths(group, data.len());
    let total: usize = lengths.iter().sum();
    let offsets: Vec<usize> = lengths
        .iter()
        .scan(0usize, |acc, &l| {
            let o = *acc;
            *acc += l;
            Some(o)
        })
        .collect();

    let mut out = vec![0.0f64; total];
    let me = group.pos();
    out[offsets[me]..offsets[me] + lengths[me]].copy_from_slice(data);

    // Ring: in step s, send the chunk originating at (me - s) to the right
    // neighbour and receive the chunk originating at (me - s - 1) from the left.
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    for s in 0..p - 1 {
        let send_owner = (me + p - s) % p;
        let recv_owner = (me + p - s - 1) % p;
        let send_chunk =
            out[offsets[send_owner]..offsets[send_owner] + lengths[send_owner]].to_vec();
        let received = group.sendrecv(right, &send_chunk, left);
        assert_eq!(received.len(), lengths[recv_owner]);
        out[offsets[recv_owner]..offsets[recv_owner] + lengths[recv_owner]]
            .copy_from_slice(&received);
    }
    out
}

/// Exchanges a single `usize` (encoded as `f64`) around the group so every
/// member knows every member's buffer length.
fn all_gather_lengths(group: &SubCommunicator<'_>, len: usize) -> Vec<usize> {
    let p = group.size();
    let me = group.pos();
    let mut lengths = vec![0usize; p];
    lengths[me] = len;
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    for s in 0..p - 1 {
        let send_owner = (me + p - s) % p;
        let recv_owner = (me + p - s - 1) % p;
        let received = group.sendrecv(right, &[lengths[send_owner] as f64], left);
        lengths[recv_owner] = received[0] as usize;
    }
    lengths
}

/// Ring reduce-scatter: the elementwise sum of all members' equal-length
/// buffers is computed, and member `i` returns the `i`-th near-equal contiguous
/// chunk of the sum.
pub fn reduce_scatter(group: &SubCommunicator<'_>, data: &[f64]) -> Vec<f64> {
    let p = group.size();
    let counts: Vec<usize> = (0..p).map(|i| chunk_range(data.len(), p, i).1).collect();
    reduce_scatter_blocks(group, data, &counts)
}

/// Ring reduce-scatter with caller-specified chunk boundaries: the elementwise
/// sum of all members' equal-length buffers is computed, and member `i`
/// returns the contiguous chunk of `counts[i]` elements starting at
/// `counts[..i].sum()`. This is the "mode-aware" variant used by the parallel
/// TTM (Alg. 3), where the chunks are the mode-`n` tensor blocks owned by each
/// member of a processor column and therefore not near-equal in general.
///
/// # Panics
/// Panics if `counts.len() != group.size()` or the counts do not sum to
/// `data.len()`.
pub fn reduce_scatter_blocks(
    group: &SubCommunicator<'_>,
    data: &[f64],
    counts: &[usize],
) -> Vec<f64> {
    timed(&REDUCE_SCATTER_US, || {
        reduce_scatter_blocks_inner(group, data, counts)
    })
}

fn reduce_scatter_blocks_inner(
    group: &SubCommunicator<'_>,
    data: &[f64],
    counts: &[usize],
) -> Vec<f64> {
    group.note_collective();
    let p = group.size();
    assert_eq!(
        counts.len(),
        p,
        "reduce_scatter_blocks: need one chunk size per member"
    );
    let total: usize = counts.iter().sum();
    assert_eq!(
        total,
        data.len(),
        "reduce_scatter_blocks: chunk sizes must cover the buffer"
    );
    if p == 1 {
        return data.to_vec();
    }
    let offsets: Vec<usize> = counts
        .iter()
        .scan(0usize, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect();
    let me = group.pos();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    let mut work = data.to_vec();

    // Ring schedule chosen so that after p-1 steps each rank holds the fully
    // reduced chunk with *its own* index `me` (so the follow-up all-gather in
    // `all_reduce` reassembles chunks in group order). Step s: send chunk
    // (me - s - 1) to the right, receive chunk (me - s - 2) from the left and
    // accumulate it; the chunk received at step s is the one sent at step s+1,
    // so partial sums travel the whole ring.
    for s in 0..p - 1 {
        let send_idx = (me + 2 * p - s - 1) % p;
        let recv_idx = (me + 2 * p - s - 2) % p;
        let (soff, slen) = (offsets[send_idx], counts[send_idx]);
        let send_chunk = work[soff..soff + slen].to_vec();
        let received = group.sendrecv(right, &send_chunk, left);
        let (roff, rlen) = (offsets[recv_idx], counts[recv_idx]);
        assert_eq!(
            received.len(),
            rlen,
            "reduce_scatter_blocks: length mismatch"
        );
        for (w, r) in work[roff..roff + rlen].iter_mut().zip(received.iter()) {
            *w += r;
        }
    }
    work[offsets[me]..offsets[me] + counts[me]].to_vec()
}

/// All-reduce (elementwise sum): every member returns the full sum.
///
/// Implemented as reduce-scatter + all-gather, which is the bandwidth-optimal
/// composition whose cost appears in Tab. I of the paper.
pub fn all_reduce(group: &SubCommunicator<'_>, data: &[f64]) -> Vec<f64> {
    timed(&ALL_REDUCE_US, || {
        group.note_collective();
        let p = group.size();
        if p == 1 {
            return data.to_vec();
        }
        let my_chunk = reduce_scatter(group, data);
        all_gather(group, &my_chunk)
    })
}

/// Gathers every member's buffer onto the root (group position `root`), which
/// returns the concatenation in group order; other members return `None`.
pub fn gather(group: &SubCommunicator<'_>, root: usize, data: &[f64]) -> Option<Vec<f64>> {
    timed(&GATHER_US, || gather_inner(group, root, data))
}

fn gather_inner(group: &SubCommunicator<'_>, root: usize, data: &[f64]) -> Option<Vec<f64>> {
    group.note_collective();
    let p = group.size();
    if p == 1 {
        return Some(data.to_vec());
    }
    if group.pos() == root {
        let mut parts: Vec<Vec<f64>> = vec![Vec::new(); p];
        parts[root] = data.to_vec();
        for pos in 0..p {
            if pos != root {
                parts[pos] = group.recv(pos);
            }
        }
        Some(parts.concat())
    } else {
        group.send(root, data);
        None
    }
}

/// Scatters near-equal contiguous chunks of the root's buffer to every member;
/// each member returns its chunk.
pub fn scatter(group: &SubCommunicator<'_>, root: usize, data: Option<&[f64]>) -> Vec<f64> {
    timed(&SCATTER_US, || scatter_inner(group, root, data))
}

fn scatter_inner(group: &SubCommunicator<'_>, root: usize, data: Option<&[f64]>) -> Vec<f64> {
    group.note_collective();
    let p = group.size();
    if p == 1 {
        return data.expect("scatter: root must supply data").to_vec();
    }
    if group.pos() == root {
        let data = data.expect("scatter: root must supply data");
        let total = data.len();
        let mut own = Vec::new();
        for pos in 0..p {
            let (off, len) = chunk_range(total, p, pos);
            if pos == root {
                own = data[off..off + len].to_vec();
            } else {
                group.send(pos, &data[off..off + len]);
            }
        }
        own
    } else {
        group.recv(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcGrid;
    use crate::runtime::spmd_with_grid;

    fn with_group<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&SubCommunicator<'_>) -> R + Send + Sync,
    {
        spmd_with_grid(ProcGrid::new(&[p]), move |comm| {
            let g = SubCommunicator::world_group(&comm);
            f(&g)
        })
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            for root in 0..p {
                let results = with_group(p, |g| {
                    let data: Vec<f64> = if g.pos() == root {
                        (0..5).map(|i| (i + 100 * root) as f64).collect()
                    } else {
                        vec![]
                    };
                    broadcast(g, root, &data)
                });
                for r in results {
                    assert_eq!(
                        r,
                        (0..5).map(|i| (i + 100 * root) as f64).collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn reduce_sums_onto_root() {
        for p in [1usize, 2, 5, 8] {
            for root in [0, p - 1] {
                let results = with_group(p, |g| {
                    let data = vec![g.pos() as f64 + 1.0; 6];
                    reduce(g, root, &data)
                });
                let expected_sum = (p * (p + 1) / 2) as f64;
                for (pos, r) in results.into_iter().enumerate() {
                    if pos == root {
                        let r = r.expect("root should hold the reduction");
                        assert!(r.iter().all(|&v| (v - expected_sum).abs() < 1e-12));
                    } else {
                        assert!(r.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn all_reduce_equals_sum_everywhere() {
        for p in [1usize, 2, 3, 4, 6, 9] {
            let results = with_group(p, |g| {
                let data: Vec<f64> = (0..10).map(|i| (i * (g.pos() + 1)) as f64).collect();
                all_reduce(g, &data)
            });
            let sum_factor = (p * (p + 1) / 2) as f64;
            for r in results {
                for (i, &v) in r.iter().enumerate() {
                    assert!((v - i as f64 * sum_factor).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn all_gather_concatenates_in_order() {
        for p in [1usize, 2, 4, 5] {
            let results = with_group(p, |g| {
                let data = vec![g.pos() as f64; 3];
                all_gather(g, &data)
            });
            for r in results {
                let mut expected = Vec::new();
                for pos in 0..p {
                    expected.extend(std::iter::repeat(pos as f64).take(3));
                }
                assert_eq!(r, expected);
            }
        }
    }

    #[test]
    fn all_gather_unequal_lengths() {
        let p = 4;
        let results = with_group(p, |g| {
            let data = vec![g.pos() as f64; g.pos() + 1];
            all_gather(g, &data)
        });
        let expected: Vec<f64> = (0..p)
            .flat_map(|pos| std::iter::repeat(pos as f64).take(pos + 1))
            .collect();
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn reduce_scatter_chunks_sum() {
        for p in [2usize, 3, 4, 6] {
            let total = 13; // deliberately not divisible by p
            let results = with_group(p, |g| {
                let data: Vec<f64> = (0..total).map(|i| (i * (g.pos() + 1)) as f64).collect();
                reduce_scatter(g, &data)
            });
            let sum_factor = (p * (p + 1) / 2) as f64;
            let mut reassembled = Vec::new();
            for r in results {
                reassembled.extend(r);
            }
            assert_eq!(reassembled.len(), total);
            for (i, &v) in reassembled.iter().enumerate() {
                assert!((v - i as f64 * sum_factor).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn reduce_scatter_blocks_uneven_chunks() {
        // Chunk sizes 0, 5, 1, 7 (including an empty chunk) over 4 members.
        let counts = [0usize, 5, 1, 7];
        let total: usize = counts.iter().sum();
        let results = with_group(4, |g| {
            let data: Vec<f64> = (0..total).map(|i| (i * (g.pos() + 1)) as f64).collect();
            reduce_scatter_blocks(g, &data, &counts)
        });
        let sum_factor = (4 * 5 / 2) as f64;
        let mut reassembled = Vec::new();
        for (pos, r) in results.iter().enumerate() {
            assert_eq!(r.len(), counts[pos]);
            reassembled.extend(r.iter().copied());
        }
        for (i, &v) in reassembled.iter().enumerate() {
            assert!((v - i as f64 * sum_factor).abs() < 1e-9);
        }
    }

    #[test]
    fn gather_and_scatter_round_trip() {
        let p = 5;
        let results = with_group(p, |g| {
            let data = vec![g.pos() as f64; 2];
            let gathered = gather(g, 0, &data);
            let scattered = scatter(g, 0, gathered.as_deref());
            (gathered.is_some(), scattered)
        });
        for (pos, (has_gather, scattered)) in results.into_iter().enumerate() {
            assert_eq!(has_gather, pos == 0);
            assert_eq!(scattered, vec![pos as f64; 2]);
        }
    }

    #[test]
    fn collectives_work_on_grid_subgroups() {
        // All-reduce within each mode-0 column of a 3x2 grid: members of the
        // same column share the same column sum.
        let results = spmd_with_grid(ProcGrid::new(&[3, 2]), |comm| {
            let col = SubCommunicator::mode_column(&comm, 0);
            let data = vec![comm.rank() as f64];
            let summed = all_reduce(&col, &data);
            (comm.rank(), summed[0])
        });
        let grid = ProcGrid::new(&[3, 2]);
        for (rank, sum) in results {
            let col = grid.mode_column(rank, 0);
            let expected: f64 = col.iter().map(|&r| r as f64).sum();
            assert!((sum - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn collective_counter_increments() {
        let results = with_group(4, |g| {
            let _ = all_reduce(g, &[1.0; 8]);
            g.world().stats().snapshot().collective_calls
        });
        // all_reduce notes itself plus its two internal phases.
        for calls in results {
            assert!(calls >= 1);
        }
    }
}
