//! Sub-communicators over subsets of ranks.
//!
//! The parallel Tucker kernels never communicate over the whole machine at
//! once: the TTM reduces within a mode-n processor *column* (P_n ranks), the
//! Gram all-reduces across a mode-n processor *row* (P̂_n ranks), and the
//! eigenvector step all-gathers within a column (Alg. 3–5). A
//! [`SubCommunicator`] restricts a rank's world communicator to an ordered
//! member list and exposes the collectives of [`crate::collectives`] over it.

use crate::comm::Communicator;

/// A view of a [`Communicator`] restricted to an ordered subset of ranks.
pub struct SubCommunicator<'a> {
    comm: &'a Communicator,
    members: Vec<usize>,
    my_pos: usize,
}

impl<'a> SubCommunicator<'a> {
    /// Creates a sub-communicator over `members` (world ranks, in group order).
    ///
    /// # Panics
    /// Panics if the calling rank is not a member, if members repeat, or if any
    /// member is out of range.
    pub fn new(comm: &'a Communicator, members: Vec<usize>) -> Self {
        assert!(!members.is_empty(), "SubCommunicator: empty member list");
        let mut seen = vec![false; comm.size()];
        for &m in &members {
            assert!(m < comm.size(), "SubCommunicator: member {m} out of range");
            assert!(!seen[m], "SubCommunicator: duplicate member {m}");
            seen[m] = true;
        }
        let my_pos = members
            .iter()
            .position(|&m| m == comm.rank())
            .expect("SubCommunicator: calling rank is not a member of the group");
        SubCommunicator {
            comm,
            members,
            my_pos,
        }
    }

    /// The world communicator backing this group.
    #[inline]
    pub fn world(&self) -> &Communicator {
        self.comm
    }

    /// Number of ranks in the group.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's position within the group (its "group rank").
    #[inline]
    pub fn pos(&self) -> usize {
        self.my_pos
    }

    /// The world rank at group position `pos`.
    #[inline]
    pub fn member(&self, pos: usize) -> usize {
        self.members[pos]
    }

    /// The ordered member list.
    #[inline]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Sends to the group member at position `pos`.
    pub fn send(&self, pos: usize, data: &[f64]) {
        self.comm.send(self.members[pos], data);
    }

    /// Sends an owned buffer to the group member at position `pos`.
    pub fn send_vec(&self, pos: usize, data: Vec<f64>) {
        self.comm.send_vec(self.members[pos], data);
    }

    /// Receives from the group member at position `pos`.
    pub fn recv(&self, pos: usize) -> Vec<f64> {
        self.comm.recv(self.members[pos])
    }

    /// Combined shifted exchange within the group.
    pub fn sendrecv(&self, dst_pos: usize, data: &[f64], src_pos: usize) -> Vec<f64> {
        self.comm
            .sendrecv(self.members[dst_pos], data, self.members[src_pos])
    }

    /// Builds the mode-`n` processor-column group of the calling rank
    /// (the `P_n` ranks differing only in grid coordinate `n`).
    pub fn mode_column(comm: &'a Communicator, n: usize) -> Self {
        let members = comm.grid().mode_column(comm.rank(), n);
        SubCommunicator::new(comm, members)
    }

    /// Builds the mode-`n` processor-row group of the calling rank
    /// (the `P̂_n` ranks sharing grid coordinate `n`).
    pub fn mode_row(comm: &'a Communicator, n: usize) -> Self {
        let members = comm.grid().mode_row(comm.rank(), n);
        SubCommunicator::new(comm, members)
    }

    /// The whole world as a single group.
    pub fn world_group(comm: &'a Communicator) -> Self {
        SubCommunicator::new(comm, (0..comm.size()).collect())
    }

    pub(crate) fn note_collective(&self) {
        self.comm.note_collective();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcGrid;
    use crate::runtime::spmd_with_grid;

    #[test]
    fn column_group_positions_match_coordinates() {
        let grid = ProcGrid::new(&[3, 2, 2]);
        let results = spmd_with_grid(grid.clone(), |comm| {
            let col = SubCommunicator::mode_column(&comm, 0);
            (comm.rank(), col.pos(), col.size())
        });
        for (rank, pos, size) in results {
            assert_eq!(size, 3);
            assert_eq!(pos, grid.coords(rank)[0]);
        }
    }

    #[test]
    fn row_group_has_cosize_members() {
        let grid = ProcGrid::new(&[2, 3]);
        let results = spmd_with_grid(grid.clone(), |comm| {
            let row = SubCommunicator::mode_row(&comm, 1);
            row.size()
        });
        assert!(results.iter().all(|&s| s == 2));
    }

    #[test]
    fn send_recv_by_group_position() {
        let grid = ProcGrid::new(&[4]);
        let results = spmd_with_grid(grid, |comm| {
            let g = SubCommunicator::world_group(&comm);
            let next = (g.pos() + 1) % g.size();
            let prev = (g.pos() + g.size() - 1) % g.size();
            let got = g.sendrecv(next, &[g.pos() as f64], prev);
            got[0] as usize
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn non_member_rank_panics() {
        let grid = ProcGrid::new(&[2]);
        let world = Communicator::create_world(grid);
        // Rank 0 tries to build a group it does not belong to.
        let comm0 = &world[0];
        let _ = SubCommunicator::new(comm0, vec![1]);
    }

    #[test]
    #[should_panic]
    fn duplicate_member_panics() {
        let grid = ProcGrid::new(&[2]);
        let world = Communicator::create_world(grid);
        let comm0 = &world[0];
        let _ = SubCommunicator::new(comm0, vec![0, 0]);
    }
}
