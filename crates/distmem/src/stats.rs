//! Per-rank communication counters.
//!
//! Every point-to-point send and every collective records the number of
//! messages and `f64` words a rank sends and receives. The paper's α-β-γ model
//! (Tab. I) predicts exactly these quantities, so the integration tests compare
//! the predicted words/messages against these counters, and the scaling
//! harnesses use them to attribute time between computation and communication.
//!
//! Since the TCP backend (PR 10), a rank additionally tracks *wire bytes*:
//! the real on-the-wire byte count including frame headers, message framing
//! and barrier/synchronization traffic. For the in-process backend these stay
//! zero; for the TCP backend they are exact (every frame byte is counted at
//! the framing layer), so volume assertions like
//! `wire_bytes == frames·overhead + words·8` hold with equality.

use crate::transport::{Wire, WireError, WireReader};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tucker_obs::metrics::Counter;

/// Process-wide mirrors of the per-rank counters (see `tucker-obs`): every
/// `record_*` also bumps these, so the global metrics registry sees the sum
/// over all simulated ranks without touching the per-rank `StatsSnapshot`
/// accounting the α-β-γ tests pin.
static MESSAGES_SENT: Counter = Counter::new("distmem.messages_sent");
static WORDS_SENT: Counter = Counter::new("distmem.words_sent");
static MESSAGES_RECEIVED: Counter = Counter::new("distmem.messages_received");
static WORDS_RECEIVED: Counter = Counter::new("distmem.words_received");
static COLLECTIVE_CALLS: Counter = Counter::new("distmem.collectives");

/// Mutable, thread-safe communication counters for one rank.
#[derive(Debug, Default)]
pub struct CommStats {
    messages_sent: AtomicU64,
    words_sent: AtomicU64,
    messages_received: AtomicU64,
    words_received: AtomicU64,
    collective_calls: AtomicU64,
    wire_bytes_sent: AtomicU64,
    wire_bytes_received: AtomicU64,
}

/// An immutable snapshot of a rank's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Number of point-to-point messages sent (collective-internal sends included).
    pub messages_sent: u64,
    /// Number of `f64` words sent.
    pub words_sent: u64,
    /// Number of point-to-point messages received.
    pub messages_received: u64,
    /// Number of `f64` words received.
    pub words_received: u64,
    /// Number of collective operations this rank participated in.
    pub collective_calls: u64,
    /// Real on-wire bytes sent, including framing/header/barrier overhead.
    /// Zero on the in-process backend (no wire).
    pub wire_bytes_sent: u64,
    /// Real on-wire bytes received, including framing/header/barrier overhead.
    pub wire_bytes_received: u64,
}

impl CommStats {
    /// Creates zeroed counters wrapped for sharing with the rank's communicator.
    pub fn new_shared() -> Arc<CommStats> {
        Arc::new(CommStats::default())
    }

    /// Records a sent message of `words` `f64` words.
    pub fn record_send(&self, words: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.words_sent.fetch_add(words as u64, Ordering::Relaxed);
        MESSAGES_SENT.inc();
        WORDS_SENT.add(words as u64);
    }

    /// Records a received message of `words` `f64` words.
    pub fn record_recv(&self, words: usize) {
        self.messages_received.fetch_add(1, Ordering::Relaxed);
        self.words_received
            .fetch_add(words as u64, Ordering::Relaxed);
        MESSAGES_RECEIVED.inc();
        WORDS_RECEIVED.add(words as u64);
    }

    /// Records participation in one collective operation.
    pub fn record_collective(&self) {
        self.collective_calls.fetch_add(1, Ordering::Relaxed);
        COLLECTIVE_CALLS.inc();
    }

    /// Records `bytes` pushed onto the wire (frame headers included).
    /// Called by wire transports only — the in-process backend never does.
    pub fn record_wire_sent(&self, bytes: u64) {
        self.wire_bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` read off the wire (frame headers included).
    pub fn record_wire_recv(&self, bytes: u64) {
        self.wire_bytes_received.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.messages_sent.store(0, Ordering::Relaxed);
        self.words_sent.store(0, Ordering::Relaxed);
        self.messages_received.store(0, Ordering::Relaxed);
        self.words_received.store(0, Ordering::Relaxed);
        self.collective_calls.store(0, Ordering::Relaxed);
        self.wire_bytes_sent.store(0, Ordering::Relaxed);
        self.wire_bytes_received.store(0, Ordering::Relaxed);
    }

    /// Takes an immutable snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            words_sent: self.words_sent.load(Ordering::Relaxed),
            messages_received: self.messages_received.load(Ordering::Relaxed),
            words_received: self.words_received.load(Ordering::Relaxed),
            collective_calls: self.collective_calls.load(Ordering::Relaxed),
            wire_bytes_sent: self.wire_bytes_sent.load(Ordering::Relaxed),
            wire_bytes_received: self.wire_bytes_received.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Aggregates per-rank snapshots into a machine-wide total.
    pub fn total(snaps: &[StatsSnapshot]) -> StatsSnapshot {
        let mut acc = StatsSnapshot::default();
        for s in snaps {
            acc.messages_sent += s.messages_sent;
            acc.words_sent += s.words_sent;
            acc.messages_received += s.messages_received;
            acc.words_received += s.words_received;
            acc.collective_calls += s.collective_calls;
            acc.wire_bytes_sent += s.wire_bytes_sent;
            acc.wire_bytes_received += s.wire_bytes_received;
        }
        acc
    }

    /// Maximum over ranks — the critical-path view used by the cost model.
    pub fn max(snaps: &[StatsSnapshot]) -> StatsSnapshot {
        let mut acc = StatsSnapshot::default();
        for s in snaps {
            acc.messages_sent = acc.messages_sent.max(s.messages_sent);
            acc.words_sent = acc.words_sent.max(s.words_sent);
            acc.messages_received = acc.messages_received.max(s.messages_received);
            acc.words_received = acc.words_received.max(s.words_received);
            acc.collective_calls = acc.collective_calls.max(s.collective_calls);
            acc.wire_bytes_sent = acc.wire_bytes_sent.max(s.wire_bytes_sent);
            acc.wire_bytes_received = acc.wire_bytes_received.max(s.wire_bytes_received);
        }
        acc
    }
}

impl Wire for StatsSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.messages_sent.encode(out);
        self.words_sent.encode(out);
        self.messages_received.encode(out);
        self.words_received.encode(out);
        self.collective_calls.encode(out);
        self.wire_bytes_sent.encode(out);
        self.wire_bytes_received.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(StatsSnapshot {
            messages_sent: r.u64()?,
            words_sent: r.u64()?,
            messages_received: r.u64()?,
            words_received: r.u64()?,
            collective_calls: r.u64()?,
            wire_bytes_sent: r.u64()?,
            wire_bytes_received: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = CommStats::default();
        s.record_send(100);
        s.record_send(50);
        s.record_recv(100);
        s.record_collective();
        let snap = s.snapshot();
        assert_eq!(snap.messages_sent, 2);
        assert_eq!(snap.words_sent, 150);
        assert_eq!(snap.messages_received, 1);
        assert_eq!(snap.words_received, 100);
        assert_eq!(snap.collective_calls, 1);
        assert_eq!(snap.wire_bytes_sent, 0);
    }

    #[test]
    fn wire_bytes_are_separate_from_words() {
        let s = CommStats::default();
        s.record_send(10);
        s.record_wire_sent(10 * 8 + 21);
        s.record_wire_recv(13);
        let snap = s.snapshot();
        assert_eq!(snap.words_sent, 10);
        assert_eq!(snap.wire_bytes_sent, 101);
        assert_eq!(snap.wire_bytes_received, 13);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = CommStats::default();
        s.record_send(10);
        s.record_recv(10);
        s.record_wire_sent(99);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn total_and_max_aggregation() {
        let snaps = vec![
            StatsSnapshot {
                messages_sent: 1,
                words_sent: 10,
                messages_received: 2,
                words_received: 20,
                collective_calls: 1,
                wire_bytes_sent: 100,
                wire_bytes_received: 7,
            },
            StatsSnapshot {
                messages_sent: 3,
                words_sent: 5,
                messages_received: 1,
                words_received: 50,
                collective_calls: 2,
                wire_bytes_sent: 40,
                wire_bytes_received: 70,
            },
        ];
        let total = StatsSnapshot::total(&snaps);
        assert_eq!(total.messages_sent, 4);
        assert_eq!(total.words_sent, 15);
        assert_eq!(total.words_received, 70);
        assert_eq!(total.wire_bytes_sent, 140);
        assert_eq!(total.wire_bytes_received, 77);
        let max = StatsSnapshot::max(&snaps);
        assert_eq!(max.messages_sent, 3);
        assert_eq!(max.words_sent, 10);
        assert_eq!(max.words_received, 50);
        assert_eq!(max.collective_calls, 2);
        assert_eq!(max.wire_bytes_sent, 100);
        assert_eq!(max.wire_bytes_received, 70);
    }

    #[test]
    fn snapshot_wire_round_trip() {
        let snap = StatsSnapshot {
            messages_sent: 1,
            words_sent: 2,
            messages_received: 3,
            words_received: 4,
            collective_calls: 5,
            wire_bytes_sent: 6,
            wire_bytes_received: 7,
        };
        let back = StatsSnapshot::from_wire_bytes(&snap.to_wire_bytes()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn concurrent_updates_are_counted() {
        let s = CommStats::new_shared();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_send(1);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().messages_sent, 8000);
        assert_eq!(s.snapshot().words_sent, 8000);
    }
}
