//! SPMD launcher: run the same closure on every simulated rank.
//!
//! [`spmd_with_grid`] spawns one OS thread per rank of a [`ProcGrid`], gives
//! each thread its own [`Communicator`], and collects the per-rank return
//! values in rank order. This is the moral equivalent of `mpiexec -n P` for the
//! in-process runtime, and is how every distributed algorithm in `tucker-core`
//! and every scaling experiment in `tucker-bench` is driven.
//! (`tucker-net` layers the multi-process equivalent on top: same closure,
//! same [`SpmdHandle`], ranks as spawned processes on a TCP mesh.)
//!
//! Worker panics are propagated as a typed [`SpmdError`] by
//! [`try_spmd_with_grid_handle`]: every rank thread is joined, the panic
//! payloads are collected, and the *originating* failure is singled out from
//! the cascade it causes (a rank dying makes its peers' `send`/`recv` panic
//! with "has terminated" / "aborted by rank" transport errors — those are
//! symptoms, not causes).

use crate::comm::Communicator;
use crate::grid::ProcGrid;
use crate::stats::StatsSnapshot;

/// The result of an SPMD run: per-rank return values and communication statistics.
#[derive(Debug, Clone)]
pub struct SpmdHandle<R> {
    /// Per-rank results, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank communication counters, indexed by rank.
    pub stats: Vec<StatsSnapshot>,
    /// Wall-clock time of the whole SPMD region in seconds.
    pub elapsed: f64,
}

impl<R> SpmdHandle<R> {
    /// Aggregate communication volume across all ranks.
    pub fn total_stats(&self) -> StatsSnapshot {
        StatsSnapshot::total(&self.stats)
    }

    /// Per-rank maximum (critical-path) communication counters.
    pub fn max_stats(&self) -> StatsSnapshot {
        StatsSnapshot::max(&self.stats)
    }
}

/// One or more ranks of an SPMD region panicked.
///
/// `rank`/`message` identify the most likely *originating* failure; `panics`
/// lists every rank that died (cascades included) in rank order.
#[derive(Debug, Clone)]
pub struct SpmdError {
    /// The rank whose panic looks like the root cause.
    pub rank: usize,
    /// That rank's panic message.
    pub message: String,
    /// All `(rank, message)` panics observed, in rank order.
    pub panics: Vec<(usize, String)>,
}

impl std::fmt::Display for SpmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SPMD rank {} panicked: {} ({} rank(s) failed in total)",
            self.rank,
            self.message,
            self.panics.len()
        )
    }
}

impl std::error::Error for SpmdError {}

/// True when a panic message looks like a *consequence* of another rank dying
/// (its endpoints vanish, so peers fail with transport errors) rather than an
/// original failure.
fn is_cascade_message(msg: &str) -> bool {
    msg.contains("has terminated") || msg.contains("aborted by rank")
}

fn panic_payload_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f` on every rank of an N-way grid; worker panics become a typed
/// [`SpmdError`] instead of unwinding through the join.
///
/// All rank threads are joined either way — a panicking rank never leaves
/// stragglers behind (its peers cascade-fail on their dead channels and are
/// joined too), so the process is in a clean state after an `Err`.
pub fn try_spmd_with_grid_handle<R, F>(grid: ProcGrid, f: F) -> Result<SpmdHandle<R>, SpmdError>
where
    R: Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    let p = grid.size();
    let world = Communicator::create_world(grid);
    let stats_handles: Vec<_> = world.iter().map(|c| c.stats()).collect();
    let start = std::time::Instant::now();
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    let mut panics: Vec<(usize, String)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for comm in world {
            let f = &f;
            let rank = comm.rank();
            handles.push((rank, scope.spawn(move || f(comm))));
        }
        for (rank, h) in handles {
            match h.join() {
                Ok(r) => results[rank] = Some(r),
                Err(e) => panics.push((rank, panic_payload_message(e))),
            }
        }
    });
    if !panics.is_empty() {
        // Prefer the first panic that does not look like a cascade from a
        // peer's death; if every message is a cascade (or none are
        // classifiable), fall back to the lowest-rank panic.
        let (rank, message) = panics
            .iter()
            .find(|(_, m)| !is_cascade_message(m))
            .unwrap_or(&panics[0])
            .clone();
        return Err(SpmdError {
            rank,
            message,
            panics,
        });
    }
    let elapsed = start.elapsed().as_secs_f64();
    Ok(SpmdHandle {
        results: results
            .into_iter()
            .map(|o| o.expect("missing rank result"))
            .collect(),
        stats: stats_handles.iter().map(|s| s.snapshot()).collect(),
        elapsed,
    })
}

/// Runs `f` on every rank of an N-way grid and returns per-rank results in rank
/// order, along with communication statistics and elapsed wall-clock time.
///
/// # Panics
/// Panics with the [`SpmdError`] display (root-cause rank and message) if any
/// rank panics. Use [`try_spmd_with_grid_handle`] to get the error as a value.
pub fn spmd_with_grid_handle<R, F>(grid: ProcGrid, f: F) -> SpmdHandle<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    match try_spmd_with_grid_handle(grid, f) {
        Ok(h) => h,
        Err(e) => panic!("{e}"),
    }
}

/// Like [`spmd_with_grid_handle`] but returns only the per-rank results.
pub fn spmd_with_grid<R, F>(grid: ProcGrid, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    spmd_with_grid_handle(grid, f).results
}

/// Runs `f` on `p` ranks arranged in a 1-way grid.
pub fn spmd<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    spmd_with_grid(ProcGrid::new(&[p]), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::all_reduce;
    use crate::subcomm::SubCommunicator;

    #[test]
    fn results_are_in_rank_order() {
        let results = spmd(6, |comm| comm.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn grid_is_visible_to_ranks() {
        let grid = ProcGrid::new(&[2, 2, 2]);
        let results = spmd_with_grid(grid, |comm| comm.grid().shape().to_vec());
        for r in results {
            assert_eq!(r, vec![2, 2, 2]);
        }
    }

    #[test]
    fn handle_collects_stats() {
        let handle = spmd_with_grid_handle(ProcGrid::new(&[4]), |comm| {
            let g = SubCommunicator::world_group(&comm);
            let _ = all_reduce(&g, &[1.0; 16]);
        });
        let total = handle.total_stats();
        assert!(total.messages_sent > 0);
        assert_eq!(total.messages_sent, total.messages_received);
        assert_eq!(total.words_sent, total.words_received);
        assert!(handle.elapsed >= 0.0);
    }

    #[test]
    fn single_rank_world_works() {
        let results = spmd(1, |comm| {
            let g = SubCommunicator::world_group(&comm);
            all_reduce(&g, &[2.0, 3.0])
        });
        assert_eq!(results[0], vec![2.0, 3.0]);
    }

    #[test]
    fn worker_panic_is_a_typed_error() {
        let err = try_spmd_with_grid_handle(ProcGrid::new(&[3]), |comm| {
            if comm.rank() == 1 {
                panic!("rank 1 exploded deliberately");
            }
            // The other ranks block on the dead rank and cascade-fail.
            let _ = comm.recv(1);
        })
        .unwrap_err();
        assert_eq!(err.rank, 1, "root cause should be attributed to rank 1");
        assert!(err.message.contains("exploded deliberately"));
        // The cascaded ranks are recorded too.
        assert!(err.panics.len() >= 2, "peers should cascade-fail: {err:?}");
        assert!(err
            .panics
            .iter()
            .any(|(r, m)| *r != 1 && is_cascade_message(m)));
    }

    #[test]
    fn panicking_spmd_still_panics_with_root_cause() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            spmd(2, |comm| {
                if comm.rank() == 0 {
                    panic!("original failure");
                }
                let _ = comm.recv(0);
            });
        }))
        .unwrap_err();
        let msg = panic_payload_message(caught);
        assert!(
            msg.contains("original failure") && msg.contains("rank 0"),
            "panic message should carry the root cause: {msg}"
        );
    }

    #[test]
    fn error_on_all_cascades_picks_lowest_rank() {
        // Both ranks fail with cascade-looking messages; the attribution
        // falls back to the lowest rank rather than inventing a cause.
        let err = try_spmd_with_grid_handle(ProcGrid::new(&[2]), |comm| -> Vec<f64> {
            panic!("peer rank {} has terminated", (comm.rank() + 1) % 2);
        })
        .unwrap_err();
        assert_eq!(err.panics.len(), 2);
        assert_eq!(err.rank, err.panics[0].0);
    }

    #[test]
    fn large_world_smoke() {
        // 24 ranks (the paper's per-node core count) exchanging in a ring.
        let results = spmd(24, |comm| {
            let p = comm.size();
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            let got = comm.sendrecv(next, &[comm.rank() as f64], prev);
            got[0] as usize
        });
        for (rank, got) in results.into_iter().enumerate() {
            assert_eq!(got, (rank + 24 - 1) % 24);
        }
    }
}
