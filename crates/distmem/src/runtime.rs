//! SPMD launcher: run the same closure on every simulated rank.
//!
//! [`spmd_with_grid`] spawns one OS thread per rank of a [`ProcGrid`], gives
//! each thread its own [`Communicator`], and collects the per-rank return
//! values in rank order. This is the moral equivalent of `mpiexec -n P` for the
//! in-process runtime, and is how every distributed algorithm in `tucker-core`
//! and every scaling experiment in `tucker-bench` is driven.

use crate::comm::Communicator;
use crate::grid::ProcGrid;
use crate::stats::StatsSnapshot;

/// The result of an SPMD run: per-rank return values and communication statistics.
#[derive(Debug, Clone)]
pub struct SpmdHandle<R> {
    /// Per-rank results, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank communication counters, indexed by rank.
    pub stats: Vec<StatsSnapshot>,
    /// Wall-clock time of the whole SPMD region in seconds.
    pub elapsed: f64,
}

impl<R> SpmdHandle<R> {
    /// Aggregate communication volume across all ranks.
    pub fn total_stats(&self) -> StatsSnapshot {
        StatsSnapshot::total(&self.stats)
    }

    /// Per-rank maximum (critical-path) communication counters.
    pub fn max_stats(&self) -> StatsSnapshot {
        StatsSnapshot::max(&self.stats)
    }
}

/// Runs `f` on every rank of an N-way grid and returns per-rank results in rank
/// order, along with communication statistics and elapsed wall-clock time.
pub fn spmd_with_grid_handle<R, F>(grid: ProcGrid, f: F) -> SpmdHandle<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    let p = grid.size();
    let world = Communicator::create_world(grid);
    let stats_handles: Vec<_> = world.iter().map(|c| c.stats()).collect();
    let start = std::time::Instant::now();
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for comm in world {
            let f = &f;
            let rank = comm.rank();
            handles.push((rank, scope.spawn(move || f(comm))));
        }
        for (rank, h) in handles {
            match h.join() {
                Ok(r) => results[rank] = Some(r),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    SpmdHandle {
        results: results
            .into_iter()
            .map(|o| o.expect("missing rank result"))
            .collect(),
        stats: stats_handles.iter().map(|s| s.snapshot()).collect(),
        elapsed,
    }
}

/// Like [`spmd_with_grid_handle`] but returns only the per-rank results.
pub fn spmd_with_grid<R, F>(grid: ProcGrid, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    spmd_with_grid_handle(grid, f).results
}

/// Runs `f` on `p` ranks arranged in a 1-way grid.
pub fn spmd<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    spmd_with_grid(ProcGrid::new(&[p]), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::all_reduce;
    use crate::subcomm::SubCommunicator;

    #[test]
    fn results_are_in_rank_order() {
        let results = spmd(6, |comm| comm.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn grid_is_visible_to_ranks() {
        let grid = ProcGrid::new(&[2, 2, 2]);
        let results = spmd_with_grid(grid, |comm| comm.grid().shape().to_vec());
        for r in results {
            assert_eq!(r, vec![2, 2, 2]);
        }
    }

    #[test]
    fn handle_collects_stats() {
        let handle = spmd_with_grid_handle(ProcGrid::new(&[4]), |comm| {
            let g = SubCommunicator::world_group(&comm);
            let _ = all_reduce(&g, &[1.0; 16]);
        });
        let total = handle.total_stats();
        assert!(total.messages_sent > 0);
        assert_eq!(total.messages_sent, total.messages_received);
        assert_eq!(total.words_sent, total.words_received);
        assert!(handle.elapsed >= 0.0);
    }

    #[test]
    fn single_rank_world_works() {
        let results = spmd(1, |comm| {
            let g = SubCommunicator::world_group(&comm);
            all_reduce(&g, &[2.0, 3.0])
        });
        assert_eq!(results[0], vec![2.0, 3.0]);
    }

    #[test]
    fn large_world_smoke() {
        // 24 ranks (the paper's per-node core count) exchanging in a ring.
        let results = spmd(24, |comm| {
            let p = comm.size();
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            let got = comm.sendrecv(next, &[comm.rank() as f64], prev);
            got[0] as usize
        });
        for (rank, got) in results.into_iter().enumerate() {
            assert_eq!(got, (rank + 24 - 1) % 24);
        }
    }
}
