//! The transport abstraction under [`crate::comm::Communicator`].
//!
//! A [`Transport`] moves `Vec<f64>` messages between the ranks of one SPMD
//! world and synchronizes them with a barrier. The communicator, the
//! collectives, the sub-communicators and every distributed algorithm above
//! them are written against this trait, so the *same* SPMD code runs on:
//!
//! * [`InProcTransport`] — today's simulated world: one OS thread per rank,
//!   unbounded channels per (source, destination) pair, `std::sync::Barrier`.
//! * `tucker-net`'s `TcpTransport` — one OS *process* per rank, a full mesh of
//!   length-prefix-framed loopback/LAN sockets (see `crates/net`).
//!
//! # Contract
//!
//! * Messages between a fixed (source, destination) pair are delivered in
//!   program order, like MPI point-to-point on a single tag.
//! * `send` is *eager*: it enqueues and returns without waiting for the
//!   matching receive. The collectives' shifted `sendrecv` exchanges rely on
//!   this for deadlock freedom, so a real-socket backend must buffer writes
//!   (the TCP backend queues frames on a per-peer writer thread).
//! * Payload bits are preserved exactly. A wire backend must encode each
//!   `f64` via its bit pattern ([`f64::to_bits`], little-endian), never
//!   through text or any lossy path. Together with program-order delivery
//!   this makes every backend bit-identical by construction: the collectives
//!   fix the reduction order, so the arithmetic is the same sequence of
//!   operations on the same operand bits no matter what carried them.
//! * Errors are *values*: a transport never panics for peer death, timeouts,
//!   or malformed traffic — it returns a [`TransportError`] and the
//!   communicator layer decides how to surface it.
//!
//! This module also defines [`Wire`], the exact (bit-preserving) byte
//! encoding used by the multi-process launcher to ship per-rank closure
//! results and [`crate::stats::StatsSnapshot`]s between processes.

use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A typed failure from a [`Transport`] operation.
///
/// `Display` renders a one-line human-readable description; the communicator
/// embeds it in its panic message so SPMD panic propagation (see
/// [`crate::runtime::try_spmd_with_grid_handle`]) can tell original failures
/// from cascades.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer's endpoint is gone (process exited, channel dropped, socket
    /// closed).
    PeerGone {
        /// World rank of the dead peer.
        peer: usize,
    },
    /// An I/O error talking to `peer`.
    Io {
        /// World rank of the peer involved.
        peer: usize,
        /// Human-readable detail from the OS.
        detail: String,
    },
    /// A blocking operation exceeded the transport's deadline.
    Timeout {
        /// World rank of the peer we were waiting on.
        peer: usize,
        /// What was being waited for.
        detail: String,
    },
    /// The peer spoke garbage: bad frame, wrong opcode, wrong world.
    Protocol {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A remote rank aborted the SPMD region (it panicked or saw a failure).
    Aborted {
        /// The rank that initiated the abort.
        rank: usize,
        /// The reason it gave.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerGone { peer } => {
                write!(f, "peer rank {peer} has terminated")
            }
            TransportError::Io { peer, detail } => {
                write!(f, "i/o error with rank {peer}: {detail}")
            }
            TransportError::Timeout { peer, detail } => {
                write!(f, "timed out waiting on rank {peer} ({detail})")
            }
            TransportError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            TransportError::Aborted { rank, detail } => {
                write!(f, "region aborted by rank {rank}: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Rank-to-rank message transport for one SPMD world.
///
/// See the module docs for the delivery/eagerness/bit-exactness contract.
pub trait Transport: Send {
    /// A short backend name (`"inproc"`, `"tcp"`) for diagnostics.
    fn kind(&self) -> &'static str;

    /// Sends `data` to world rank `dst`. Eager: must not wait for the
    /// matching receive.
    fn send(&self, dst: usize, data: &[f64]) -> Result<(), TransportError>;

    /// Sends an owned buffer, avoiding a copy where the backend allows it.
    fn send_vec(&self, dst: usize, data: Vec<f64>) -> Result<(), TransportError> {
        self.send(dst, &data)
    }

    /// Receives the next message from world rank `src` (blocking).
    fn recv(&self, src: usize) -> Result<Vec<f64>, TransportError>;

    /// Synchronizes all ranks of the world.
    fn barrier(&self) -> Result<(), TransportError>;

    /// On-wire bytes this rank has pushed toward peers, including framing
    /// and synchronization overhead. `0` for backends with no wire.
    fn wire_bytes_sent(&self) -> u64 {
        0
    }
}

/// The in-process backend: ranks are threads, messages are unbounded
/// channels, the barrier is [`std::sync::Barrier`].
///
/// This is exactly the pre-trait `Communicator` plumbing, moved behind
/// [`Transport`]; the bits it produces are unchanged.
pub struct InProcTransport {
    to_peer: Vec<Sender<Vec<f64>>>,
    from_peer: Vec<Receiver<Vec<f64>>>,
    barrier: Arc<Barrier>,
}

impl InProcTransport {
    /// Creates the transports for a `p`-rank in-process world, in rank order.
    pub fn create_world(p: usize) -> Vec<InProcTransport> {
        // channels[src][dst]
        let mut senders: Vec<Vec<Option<Sender<Vec<f64>>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<Receiver<Vec<f64>>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for src in 0..p {
            for dst in 0..p {
                let (tx, rx) = unbounded();
                senders[src][dst] = Some(tx);
                receivers[dst][src] = Some(rx);
            }
        }
        let barrier = Arc::new(Barrier::new(p));
        (0..p)
            .map(|rank| InProcTransport {
                to_peer: senders[rank]
                    .iter_mut()
                    .map(|s| s.take().expect("sender already taken"))
                    .collect(),
                from_peer: receivers[rank]
                    .iter_mut()
                    .map(|r| r.take().expect("receiver already taken"))
                    .collect(),
                barrier: Arc::clone(&barrier),
            })
            .collect()
    }
}

impl Transport for InProcTransport {
    fn kind(&self) -> &'static str {
        "inproc"
    }

    fn send(&self, dst: usize, data: &[f64]) -> Result<(), TransportError> {
        self.to_peer[dst]
            .send(data.to_vec())
            .map_err(|_| TransportError::PeerGone { peer: dst })
    }

    fn send_vec(&self, dst: usize, data: Vec<f64>) -> Result<(), TransportError> {
        self.to_peer[dst]
            .send(data)
            .map_err(|_| TransportError::PeerGone { peer: dst })
    }

    fn recv(&self, src: usize) -> Result<Vec<f64>, TransportError> {
        self.from_peer[src]
            .recv()
            .map_err(|_| TransportError::PeerGone { peer: src })
    }

    fn barrier(&self) -> Result<(), TransportError> {
        self.barrier.wait();
        Ok(())
    }
}

/// Failure decoding a [`Wire`] value from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(detail: impl Into<String>) -> Self {
        WireError {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.detail)
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked reader over a wire-encoded byte buffer.
///
/// Same discipline as `tucker-serve`'s protocol decoder: every access checks
/// the remaining length and returns a typed error, so arbitrary bytes can
/// never panic the decoder or make it allocate unboundedly.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps `buf` for decoding from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(format!(
                "need {n} bytes, {} remaining",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads an `f64` by bit pattern (exact).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Asserts the buffer is fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::new(format!(
                "{} trailing bytes after value",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// An exact, bit-preserving byte encoding for values that cross process
/// boundaries.
///
/// The multi-process launcher uses this to ship per-rank closure results and
/// stats between ranks: `decode(encode(x))` reproduces `x` bit for bit
/// (floats travel as [`f64::to_bits`]), so an SPMD region returns identical
/// values no matter which process computed them.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encodes into a fresh buffer.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes from a buffer, requiring it to be fully consumed.
    fn from_wire_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::new(format!("invalid bool byte {b}"))),
        }
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| WireError::new(format!("usize overflow: {v}")))
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.f64()
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_bytes().len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = usize::decode(r)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::new("invalid utf-8 in string"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = usize::decode(r)?;
        // Every element consumes at least one byte, so a declared length
        // beyond the remaining bytes is malformed — reject before allocating.
        if n > r.remaining() {
            return Err(WireError::new(format!(
                "vec length {n} exceeds {} remaining bytes",
                r.remaining()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(WireError::new(format!("invalid option tag {b}"))),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
        self.3.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?, D::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_world_passes_messages() {
        let world = InProcTransport::create_world(2);
        let (t0, t1) = {
            let mut it = world.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        std::thread::scope(|s| {
            s.spawn(move || t0.send(1, &[1.0, 2.0]).unwrap());
            let got = s.spawn(move || t1.recv(0).unwrap()).join().unwrap();
            assert_eq!(got, vec![1.0, 2.0]);
        });
    }

    #[test]
    fn inproc_dead_peer_is_typed_error() {
        let mut world = InProcTransport::create_world(2);
        let t0 = world.remove(0);
        drop(world); // rank 1's endpoints are gone
        assert_eq!(
            t0.send(1, &[0.0]).unwrap_err(),
            TransportError::PeerGone { peer: 1 }
        );
        assert_eq!(
            t0.recv(1).unwrap_err(),
            TransportError::PeerGone { peer: 1 }
        );
    }

    #[test]
    fn wire_round_trips_exactly() {
        let v: (Vec<f64>, String, Option<u64>, Vec<usize>) = (
            vec![0.1, -0.0, f64::MIN_POSITIVE, 1e300],
            "héllo".to_string(),
            Some(42),
            vec![0, usize::MAX],
        );
        let bytes = v.to_wire_bytes();
        let back = <(Vec<f64>, String, Option<u64>, Vec<usize>)>::from_wire_bytes(&bytes).unwrap();
        assert_eq!(v.1, back.1);
        assert_eq!(v.2, back.2);
        assert_eq!(v.3, back.3);
        for (a, b) in v.0.iter().zip(back.0.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn wire_nan_bits_survive() {
        let x = f64::from_bits(0x7ff8_dead_beef_0001);
        let bytes = x.to_wire_bytes();
        let back = f64::from_wire_bytes(&bytes).unwrap();
        assert_eq!(x.to_bits(), back.to_bits());
    }

    #[test]
    fn wire_decode_is_bounds_checked() {
        // Truncated f64.
        assert!(f64::from_wire_bytes(&[1, 2, 3]).is_err());
        // Vec claiming more elements than bytes remain.
        let mut buf = Vec::new();
        1_000_000usize.encode(&mut buf);
        assert!(Vec::<f64>::from_wire_bytes(&buf).is_err());
        // Trailing garbage is rejected.
        let mut buf = 7u64.to_wire_bytes();
        buf.push(0);
        assert!(u64::from_wire_bytes(&buf).is_err());
        // Bad option tag.
        assert!(Option::<u64>::from_wire_bytes(&[9]).is_err());
        // Bad bool byte.
        assert!(bool::from_wire_bytes(&[2]).is_err());
    }

    #[test]
    fn transport_error_display_names_peer() {
        let e = TransportError::PeerGone { peer: 3 };
        assert!(e.to_string().contains("rank 3 has terminated"));
        let e = TransportError::Aborted {
            rank: 1,
            detail: "worker panicked".into(),
        };
        assert!(e.to_string().contains("aborted by rank 1"));
    }
}
