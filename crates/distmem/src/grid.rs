//! The logical N-way processor grid of Sec. IV of the paper.
//!
//! A grid `P_1 × P_2 × … × P_N` assigns every rank `p ∈ [0, P)` a coordinate
//! vector `(p_1, …, p_N)`. The Tucker kernels need two families of rank
//! subsets per mode `n`:
//!
//! * the **processor column** of a rank (paper notation
//!   `(p_1, …, p_{n-1}, ∗, p_{n+1}, …, p_N)`): the `P_n` ranks that differ only
//!   in coordinate `n`. The parallel TTM reduces over these, and the parallel
//!   Gram shifts data around them.
//! * the **processor row** (all ranks sharing coordinate `n`): the `P̂_n = P/P_n`
//!   ranks across which the Gram result is all-reduced.

use serde::{Deserialize, Serialize};

/// An N-way Cartesian processor grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcGrid {
    shape: Vec<usize>,
}

impl ProcGrid {
    /// Creates a grid with the given per-mode sizes.
    ///
    /// # Panics
    /// Panics if the shape is empty or any entry is zero.
    pub fn new(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "ProcGrid: shape must be non-empty");
        assert!(
            shape.iter().all(|&p| p > 0),
            "ProcGrid: every grid dimension must be positive"
        );
        ProcGrid {
            shape: shape.to_vec(),
        }
    }

    /// Number of grid modes (equals the tensor order it is used with).
    #[inline]
    pub fn ndims(&self) -> usize {
        self.shape.len()
    }

    /// Grid extent in mode `n` (`P_n`).
    #[inline]
    pub fn dim(&self, n: usize) -> usize {
        self.shape[n]
    }

    /// The full shape `P_1, …, P_N`.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of ranks `P = ∏ P_n`.
    #[inline]
    pub fn size(&self) -> usize {
        self.shape.iter().product()
    }

    /// `P̂_n = P / P_n` — the number of ranks in all modes but `n`.
    #[inline]
    pub fn cosize(&self, n: usize) -> usize {
        self.size() / self.shape[n]
    }

    /// Converts a rank to its grid coordinates (first mode fastest, matching the
    /// tensor storage order so that block distributions are contiguous in rank).
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.size(), "ProcGrid: rank {rank} out of range");
        let mut c = vec![0usize; self.ndims()];
        let mut r = rank;
        for (k, &p) in self.shape.iter().enumerate() {
            c[k] = r % p;
            r /= p;
        }
        c
    }

    /// Converts grid coordinates back to a rank.
    pub fn rank(&self, coords: &[usize]) -> usize {
        assert_eq!(
            coords.len(),
            self.ndims(),
            "ProcGrid: coordinate arity mismatch"
        );
        let mut rank = 0usize;
        let mut stride = 1usize;
        for (k, (&c, &p)) in coords.iter().zip(self.shape.iter()).enumerate() {
            assert!(c < p, "ProcGrid: coordinate {c} out of range in mode {k}");
            rank += c * stride;
            stride *= p;
        }
        rank
    }

    /// The ranks of the processor **column** of `rank` in mode `n`: all ranks
    /// whose coordinates agree with `rank` everywhere except mode `n`, ordered
    /// by their mode-`n` coordinate.
    pub fn mode_column(&self, rank: usize, n: usize) -> Vec<usize> {
        let mut coords = self.coords(rank);
        (0..self.shape[n])
            .map(|i| {
                coords[n] = i;
                self.rank(&coords)
            })
            .collect()
    }

    /// The ranks of the processor **row** of `rank` in mode `n`: all ranks that
    /// share `rank`'s mode-`n` coordinate (there are `P̂_n` of them), in
    /// lexicographic order of the remaining coordinates.
    pub fn mode_row(&self, rank: usize, n: usize) -> Vec<usize> {
        let pin = self.coords(rank)[n];
        (0..self.size())
            .filter(|&r| self.coords(r)[n] == pin)
            .collect()
    }

    /// Position of `rank` within its mode-`n` column (its coordinate `p_n`).
    pub fn column_position(&self, rank: usize, n: usize) -> usize {
        self.coords(rank)[n]
    }

    /// Position of `rank` within its mode-`n` row.
    pub fn row_position(&self, rank: usize, n: usize) -> usize {
        let row = self.mode_row(rank, n);
        row.iter()
            .position(|&r| r == rank)
            .expect("rank not in its own row")
    }

    /// Splits a global extent `len` into `parts` near-equal contiguous pieces and
    /// returns the `(offset, size)` of piece `idx`. Earlier pieces get the
    /// remainder, so sizes differ by at most one — this is how tensor modes are
    /// block-distributed when `P_n` does not evenly divide `I_n` (the paper's
    /// implementation "does not require" even divisibility, Sec. IV).
    pub fn block_range(len: usize, parts: usize, idx: usize) -> (usize, usize) {
        assert!(parts > 0 && idx < parts);
        let base = len / parts;
        let rem = len % parts;
        let size = base + usize::from(idx < rem);
        let offset = idx * base + idx.min(rem);
        (offset, size)
    }

    /// The local block `(offset, size)` of a tensor mode of global size `len`
    /// owned by `rank` in mode `n`.
    pub fn local_range(&self, rank: usize, n: usize, len: usize) -> (usize, usize) {
        Self::block_range(len, self.shape[n], self.coords(rank)[n])
    }

    /// The local dimensions of a block-distributed tensor with global dims `dims`.
    pub fn local_dims(&self, rank: usize, dims: &[usize]) -> Vec<usize> {
        assert_eq!(dims.len(), self.ndims(), "local_dims: arity mismatch");
        dims.iter()
            .enumerate()
            .map(|(n, &d)| self.local_range(rank, n, d).1)
            .collect()
    }

    /// Enumerates all factorizations of `p` into `ndims` positive factors —
    /// the candidate processor grids examined in the paper's Fig. 8a sweep.
    pub fn enumerate_grids(p: usize, ndims: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut current = vec![1usize; ndims];
        fn rec(p: usize, pos: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if pos + 1 == current.len() {
                current[pos] = p;
                out.push(current.clone());
                return;
            }
            let mut d = 1;
            while d <= p {
                if p % d == 0 {
                    current[pos] = d;
                    rec(p / d, pos + 1, current, out);
                }
                d += 1;
            }
        }
        rec(p, 0, &mut current, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_cosize() {
        let g = ProcGrid::new(&[4, 3, 2]);
        assert_eq!(g.size(), 24);
        assert_eq!(g.cosize(0), 6);
        assert_eq!(g.cosize(1), 8);
        assert_eq!(g.cosize(2), 12);
    }

    #[test]
    fn coords_rank_round_trip() {
        let g = ProcGrid::new(&[3, 2, 4]);
        for r in 0..g.size() {
            assert_eq!(g.rank(&g.coords(r)), r);
        }
    }

    #[test]
    fn first_coordinate_varies_fastest() {
        let g = ProcGrid::new(&[3, 2]);
        assert_eq!(g.coords(0), vec![0, 0]);
        assert_eq!(g.coords(1), vec![1, 0]);
        assert_eq!(g.coords(3), vec![0, 1]);
    }

    #[test]
    fn mode_column_has_pn_members_and_contains_self() {
        let g = ProcGrid::new(&[4, 3, 2]);
        for r in 0..g.size() {
            for n in 0..3 {
                let col = g.mode_column(r, n);
                assert_eq!(col.len(), g.dim(n));
                assert!(col.contains(&r));
                // All members share the other coordinates.
                let base = g.coords(r);
                for &m in &col {
                    let c = g.coords(m);
                    for k in 0..3 {
                        if k != n {
                            assert_eq!(c[k], base[k]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mode_row_has_cosize_members() {
        let g = ProcGrid::new(&[2, 3, 2]);
        for r in 0..g.size() {
            for n in 0..3 {
                let row = g.mode_row(r, n);
                assert_eq!(row.len(), g.cosize(n));
                assert!(row.contains(&r));
            }
        }
    }

    #[test]
    fn columns_partition_ranks() {
        let g = ProcGrid::new(&[3, 4]);
        for n in 0..2 {
            let mut seen = vec![false; g.size()];
            for r in 0..g.size() {
                if g.column_position(r, n) == 0 {
                    for &m in &g.mode_column(r, n) {
                        assert!(!seen[m], "rank {m} in two mode-{n} columns");
                        seen[m] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn block_range_even_and_uneven() {
        assert_eq!(ProcGrid::block_range(12, 4, 0), (0, 3));
        assert_eq!(ProcGrid::block_range(12, 4, 3), (9, 3));
        // 10 over 4: sizes 3,3,2,2
        assert_eq!(ProcGrid::block_range(10, 4, 0), (0, 3));
        assert_eq!(ProcGrid::block_range(10, 4, 1), (3, 3));
        assert_eq!(ProcGrid::block_range(10, 4, 2), (6, 2));
        assert_eq!(ProcGrid::block_range(10, 4, 3), (8, 2));
    }

    #[test]
    fn block_ranges_tile_the_extent() {
        for len in [1usize, 7, 16, 100] {
            for parts in [1usize, 2, 3, 5, 8] {
                let mut next = 0;
                for idx in 0..parts {
                    let (off, size) = ProcGrid::block_range(len, parts, idx);
                    assert_eq!(off, next);
                    next += size;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn local_dims_cover_tensor() {
        let g = ProcGrid::new(&[2, 3]);
        let dims = [7usize, 8];
        let mut total = 0usize;
        for r in 0..g.size() {
            let ld = g.local_dims(r, &dims);
            total += ld.iter().product::<usize>();
        }
        assert_eq!(total, 56);
    }

    #[test]
    fn enumerate_grids_products() {
        let grids = ProcGrid::enumerate_grids(12, 3);
        assert!(!grids.is_empty());
        for gshape in &grids {
            assert_eq!(gshape.iter().product::<usize>(), 12);
            assert_eq!(gshape.len(), 3);
        }
        // 12 = 2^2*3 has (number of ordered factorizations into 3 factors) = 18.
        assert_eq!(grids.len(), 18);
    }

    #[test]
    #[should_panic]
    fn zero_dim_grid_panics() {
        ProcGrid::new(&[2, 0]);
    }

    #[test]
    #[should_panic]
    fn rank_out_of_range_panics() {
        ProcGrid::new(&[2, 2]).coords(4);
    }
}
