//! Simulated distributed-memory runtime for the parallel Tucker decomposition.
//!
//! The paper runs on MPI over a Cray XC30. This crate substitutes an
//! in-process message-passing runtime (see DESIGN.md §2): every MPI *rank*
//! becomes an OS thread with its own private data, communicating only through
//! typed point-to-point channels and collectives implemented on top of them.
//! Nothing is shared behind the API — algorithms written against
//! [`Communicator`] have the same structure they would have against MPI, and
//! the runtime records exactly how many messages and words each rank moves so
//! the paper's α-β-γ analysis (Tab. I, Secs. V–VI) can be validated against
//! measured communication volumes and extrapolated to large machines.
//!
//! Module map:
//! * [`grid`]        — the logical N-way processor grid of Sec. IV.
//! * [`transport`]   — the [`transport::Transport`] trait under the communicator
//!                     (in-process channels here; TCP mesh in `tucker-net`) and
//!                     the exact [`transport::Wire`] encoding for cross-process values.
//! * [`comm`]        — point-to-point communicator between ranks.
//! * [`collectives`] — broadcast, reduce, all-reduce, all-gather, reduce-scatter.
//! * [`subcomm`]     — communicators over processor-grid slices (mode columns/rows).
//! * [`stats`]       — per-rank communication counters.
//! * [`costmodel`]   — the α-β-γ cost model of Tab. I and Secs. V–VI.
//! * [`runtime`]     — SPMD launcher: run a closure on every rank and collect results.

pub mod collectives;
pub mod comm;
pub mod costmodel;
pub mod grid;
pub mod runtime;
pub mod stats;
pub mod subcomm;
pub mod transport;

pub use comm::Communicator;
pub use costmodel::{CostModel, KernelCost, MachineParams};
pub use grid::ProcGrid;
pub use runtime::{
    spmd, spmd_with_grid, spmd_with_grid_handle, try_spmd_with_grid_handle, SpmdError, SpmdHandle,
};
pub use stats::{CommStats, StatsSnapshot};
pub use subcomm::SubCommunicator;
pub use transport::{InProcTransport, Transport, TransportError, Wire, WireError, WireReader};
