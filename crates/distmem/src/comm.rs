//! Point-to-point communicator between ranks.
//!
//! A [`Communicator`] is handed to each rank by [`crate::runtime::spmd`] (or
//! by `tucker-net`'s multi-process launcher). It wraps a boxed
//! [`Transport`] — the in-process channel world or a TCP socket mesh — so
//! `send`/`recv` pairs between a fixed (source, destination) pair match in
//! program order exactly as MPI point-to-point messages on a single tag do.
//! Sends are eager (the transport buffers), which mirrors eager-protocol MPI
//! for the message sizes the Tucker kernels exchange and keeps the schedule
//! deadlock-free as long as every posted receive has a matching send.
//!
//! All payloads are `Vec<f64>` — every message in the Tucker algorithms is a
//! block of tensor or matrix data — and every transfer is recorded in the
//! rank's [`CommStats`]. Algorithms written against this type are transport
//! agnostic: the bits they produce do not depend on what carried the
//! messages (see [`crate::transport`] for the argument).

use crate::grid::ProcGrid;
use crate::stats::CommStats;
use crate::transport::{InProcTransport, Transport};
use std::sync::Arc;

/// Per-rank handle for point-to-point communication and synchronization.
pub struct Communicator {
    rank: usize,
    size: usize,
    grid: ProcGrid,
    transport: Box<dyn Transport>,
    stats: Arc<CommStats>,
}

impl Communicator {
    /// Creates the full set of communicators for a `grid.size()`-rank
    /// in-process world.
    ///
    /// Returned in rank order. Normally called only by [`crate::runtime::spmd`].
    pub fn create_world(grid: ProcGrid) -> Vec<Communicator> {
        InProcTransport::create_world(grid.size())
            .into_iter()
            .enumerate()
            .map(|(rank, t)| {
                Communicator::from_transport(
                    grid.clone(),
                    rank,
                    Box::new(t),
                    CommStats::new_shared(),
                )
            })
            .collect()
    }

    /// Wraps an arbitrary [`Transport`] endpoint as rank `rank` of a
    /// `grid.size()`-rank world. This is how `tucker-net` plugs its TCP mesh
    /// under the unchanged SPMD surface.
    ///
    /// # Panics
    /// Panics if `rank >= grid.size()`.
    pub fn from_transport(
        grid: ProcGrid,
        rank: usize,
        transport: Box<dyn Transport>,
        stats: Arc<CommStats>,
    ) -> Communicator {
        let size = grid.size();
        assert!(rank < size, "from_transport: rank {rank} out of range");
        Communicator {
            rank,
            size,
            grid,
            transport,
            stats,
        }
    }

    /// This rank's id in `[0, size)`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The processor grid this world was created with.
    #[inline]
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// The transport backend's short name (`"inproc"`, `"tcp"`).
    #[inline]
    pub fn transport_kind(&self) -> &'static str {
        self.transport.kind()
    }

    /// This rank's grid coordinates.
    pub fn coords(&self) -> Vec<usize> {
        self.grid.coords(self.rank)
    }

    /// Shared handle to this rank's communication counters.
    pub fn stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }

    /// Sends `data` to rank `dst`. Eager (the transport buffers).
    ///
    /// # Panics
    /// Panics if `dst` is out of range or the transport reports a failure
    /// (the panic message embeds the typed [`crate::transport::TransportError`],
    /// and [`crate::runtime::try_spmd_with_grid_handle`] converts it back
    /// into a returned error).
    pub fn send(&self, dst: usize, data: &[f64]) {
        assert!(dst < self.size, "send: destination {dst} out of range");
        self.stats.record_send(data.len());
        if let Err(e) = self.transport.send(dst, data) {
            panic!("send to rank {dst} failed: {e}");
        }
    }

    /// Sends an owned buffer to rank `dst` without copying.
    pub fn send_vec(&self, dst: usize, data: Vec<f64>) {
        assert!(dst < self.size, "send_vec: destination {dst} out of range");
        self.stats.record_send(data.len());
        if let Err(e) = self.transport.send_vec(dst, data) {
            panic!("send_vec to rank {dst} failed: {e}");
        }
    }

    /// Receives the next message from rank `src` (blocking).
    pub fn recv(&self, src: usize) -> Vec<f64> {
        assert!(src < self.size, "recv: source {src} out of range");
        match self.transport.recv(src) {
            Ok(data) => {
                self.stats.record_recv(data.len());
                data
            }
            Err(e) => panic!("recv from rank {src} failed: {e}"),
        }
    }

    /// Combined send to `dst` and receive from `src` (the shifted exchange used
    /// by the parallel Gram's ring, Alg. 4 lines 9–10). Because sends are
    /// eager this cannot deadlock.
    pub fn sendrecv(&self, dst: usize, data: &[f64], src: usize) -> Vec<f64> {
        self.send(dst, data);
        self.recv(src)
    }

    /// Synchronizes all ranks in the world.
    pub fn barrier(&self) {
        if let Err(e) = self.transport.barrier() {
            panic!("barrier failed: {e}");
        }
    }

    /// Records participation in a collective (called by the collective layer).
    pub(crate) fn note_collective(&self) {
        self.stats.record_collective();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_world<R, F>(shape: &[usize], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Communicator) -> R + Send + Sync,
    {
        let grid = ProcGrid::new(shape);
        let world = Communicator::create_world(grid);
        let mut out: Vec<Option<R>> = world.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for comm in world {
                let f = &f;
                handles.push(scope.spawn(move || (comm.rank(), f(comm))));
            }
            for h in handles {
                let (rank, r) = h.join().expect("rank thread panicked");
                out[rank] = Some(r);
            }
        });
        out.into_iter().map(|o| o.unwrap()).collect()
    }

    #[test]
    fn ring_pass_around() {
        let results = run_world(&[4], |comm| {
            let p = comm.size();
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            comm.send(next, &[comm.rank() as f64]);
            let got = comm.recv(prev);
            got[0] as usize
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn messages_match_in_order_per_pair() {
        let results = run_world(&[2], |comm| {
            if comm.rank() == 0 {
                comm.send(1, &[1.0]);
                comm.send(1, &[2.0, 2.0]);
                comm.send(1, &[3.0]);
                vec![]
            } else {
                let a = comm.recv(0);
                let b = comm.recv(0);
                let c = comm.recv(0);
                vec![a[0], b[0], c[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn sendrecv_shift_does_not_deadlock() {
        let results = run_world(&[5], |comm| {
            let p = comm.size();
            let dst = (comm.rank() + 1) % p;
            let src = (comm.rank() + p - 1) % p;
            let got = comm.sendrecv(dst, &[comm.rank() as f64; 10], src);
            got[0] as usize
        });
        assert_eq!(results, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn stats_count_words() {
        let snaps = run_world(&[2], |comm| {
            if comm.rank() == 0 {
                comm.send(1, &[0.0; 64]);
            } else {
                let _ = comm.recv(0);
            }
            comm.stats().snapshot()
        });
        assert_eq!(snaps[0].messages_sent, 1);
        assert_eq!(snaps[0].words_sent, 64);
        assert_eq!(snaps[1].messages_received, 1);
        assert_eq!(snaps[1].words_received, 64);
    }

    #[test]
    fn inproc_world_reports_no_wire_bytes() {
        let snaps = run_world(&[2], |comm| {
            assert_eq!(comm.transport_kind(), "inproc");
            comm.sendrecv((comm.rank() + 1) % 2, &[1.0; 8], (comm.rank() + 1) % 2);
            comm.stats().snapshot()
        });
        for s in snaps {
            assert_eq!(s.wire_bytes_sent, 0);
            assert_eq!(s.wire_bytes_received, 0);
        }
    }

    #[test]
    fn coords_match_grid() {
        let results = run_world(&[2, 3], |comm| (comm.rank(), comm.coords()));
        for (rank, coords) in results {
            assert_eq!(ProcGrid::new(&[2, 3]).coords(rank), coords);
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_world(&[4], |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all four increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}
