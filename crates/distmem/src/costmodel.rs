//! The α-β-γ cost model of the paper (Tab. I, Secs. V–VI).
//!
//! The model charges `α` seconds of latency per message, `β` seconds per `f64`
//! word moved, and `γ` seconds per floating-point operation. Collective costs
//! follow Tab. I. Kernel costs follow the derivations of Sec. V (TTM, Gram,
//! eigenvectors) and Sec. VI (ST-HOSVD and HOOI totals); because every formula
//! is parameterized by the current tensor dimensions and grid, the model can
//! evaluate arbitrary mode orderings (Fig. 8b) and processor grids (Fig. 8a),
//! and extrapolate strong/weak scaling far beyond the core count of the host
//! machine (Figs. 9a/9b).

use crate::grid::ProcGrid;
use serde::{Deserialize, Serialize};

/// Machine parameters for the α-β-γ model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Latency per message, in seconds.
    pub alpha: f64,
    /// Inverse bandwidth, in seconds per `f64` word.
    pub beta: f64,
    /// Time per floating-point operation, in seconds.
    pub gamma: f64,
}

impl MachineParams {
    /// Parameters loosely modelled on NERSC Edison (the paper's platform):
    /// 19.2 GFLOP/s per core, ~1 µs message latency, ~8 GB/s injection
    /// bandwidth per core (so 1 ns per 8-byte word).
    pub fn edison_like() -> Self {
        MachineParams {
            alpha: 1.0e-6,
            beta: 1.0e-9,
            gamma: 1.0 / 19.2e9,
        }
    }

    /// Parameters for a commodity multicore node (used when calibrating the
    /// model against the in-process runtime on the host machine).
    pub fn laptop_like() -> Self {
        MachineParams {
            alpha: 2.0e-7,
            beta: 2.0e-10,
            gamma: 1.0 / 4.0e9,
        }
    }

    /// Builds parameters from measured per-core peak flops, latency, and bandwidth.
    pub fn from_measurements(flops_per_sec: f64, latency_sec: f64, words_per_sec: f64) -> Self {
        MachineParams {
            alpha: latency_sec,
            beta: 1.0 / words_per_sec,
            gamma: 1.0 / flops_per_sec,
        }
    }
}

/// A decomposed cost: message count (latency), word count (bandwidth) and flops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Number of α-charged message start-ups on the critical path.
    pub messages: f64,
    /// Number of β-charged words moved on the critical path.
    pub words: f64,
    /// Number of γ-charged flops on the critical path.
    pub flops: f64,
}

impl KernelCost {
    /// Zero cost.
    pub fn zero() -> Self {
        KernelCost::default()
    }

    /// Sum of two costs (sequential composition).
    pub fn plus(&self, other: &KernelCost) -> KernelCost {
        KernelCost {
            messages: self.messages + other.messages,
            words: self.words + other.words,
            flops: self.flops + other.flops,
        }
    }

    /// Scales a cost by a repetition count.
    pub fn times(&self, n: f64) -> KernelCost {
        KernelCost {
            messages: self.messages * n,
            words: self.words * n,
            flops: self.flops * n,
        }
    }

    /// Predicted time under the given machine parameters.
    pub fn time(&self, m: &MachineParams) -> f64 {
        m.alpha * self.messages + m.beta * self.words + m.gamma * self.flops
    }

    /// Predicted time split into (latency, bandwidth, compute) seconds.
    pub fn time_breakdown(&self, m: &MachineParams) -> (f64, f64, f64) {
        (
            m.alpha * self.messages,
            m.beta * self.words,
            m.gamma * self.flops,
        )
    }
}

/// Costs of the collectives in Tab. I, for `p` participants and `w` words.
pub mod collective_cost {
    use super::KernelCost;

    /// Point-to-point send/receive of `w` words.
    pub fn send_recv(w: f64) -> KernelCost {
        KernelCost {
            messages: 1.0,
            words: w,
            flops: 0.0,
        }
    }

    /// All-gather of a combined `w` words over `p` ranks.
    pub fn all_gather(p: f64, w: f64) -> KernelCost {
        if p <= 1.0 {
            return KernelCost::zero();
        }
        KernelCost {
            messages: p.log2().ceil(),
            words: (p - 1.0) / p * w,
            flops: 0.0,
        }
    }

    /// Reduce of `w` words over `p` ranks (flop term included per Tab. I).
    pub fn reduce(p: f64, w: f64) -> KernelCost {
        if p <= 1.0 {
            return KernelCost::zero();
        }
        KernelCost {
            messages: p.log2().ceil(),
            words: (p - 1.0) / p * w,
            flops: (p - 1.0) / p * w,
        }
    }

    /// All-reduce of `w` words over `p` ranks.
    pub fn all_reduce(p: f64, w: f64) -> KernelCost {
        if p <= 1.0 {
            return KernelCost::zero();
        }
        KernelCost {
            messages: 2.0 * p.log2().ceil(),
            words: 2.0 * (p - 1.0) / p * w,
            flops: (p - 1.0) / p * w,
        }
    }
}

/// The cost model for the parallel Tucker kernels on a fixed processor grid.
#[derive(Debug, Clone)]
pub struct CostModel {
    grid: ProcGrid,
    params: MachineParams,
}

impl CostModel {
    /// Creates a model for the given grid and machine parameters.
    pub fn new(grid: ProcGrid, params: MachineParams) -> Self {
        CostModel { grid, params }
    }

    /// The machine parameters in use.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// The processor grid in use.
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Cost of the parallel TTM `Z = Y ×_n V` (Alg. 3, Sec. V-B), where `Y` has
    /// (current) global dimensions `dims`, the matrix has `k` rows, and the
    /// product is in mode `n`.
    ///
    /// `C_TTM = 2γ·J·K/P + α·P_n·log P_n + β·(P_n − 1)·Ĵ_n·K/P`.
    pub fn ttm(&self, dims: &[usize], n: usize, k: usize) -> KernelCost {
        let p = self.grid.size() as f64;
        let pn = self.grid.dim(n) as f64;
        let j: f64 = dims.iter().map(|&d| d as f64).product();
        let jhat = j / dims[n] as f64;
        let kf = k as f64;
        let flops = 2.0 * j * kf / p;
        let messages = if pn > 1.0 {
            pn * pn.log2().max(1.0)
        } else {
            0.0
        };
        let words = if pn > 1.0 {
            (pn - 1.0) * jhat * kf / p
        } else {
            0.0
        };
        KernelCost {
            messages,
            words,
            flops,
        }
    }

    /// Cost of the parallel Gram `S = Y(n)·Y(n)ᵀ` (Alg. 4, Sec. V-C) for a
    /// tensor with global dimensions `dims`.
    ///
    /// `C_GRAM = 2γ·J_n·J/P + 2(P_n − 1)(α + β·J/P) + 2α·log P̂_n + 2β·(P̂_n − 1)·J_n²/P`.
    pub fn gram(&self, dims: &[usize], n: usize) -> KernelCost {
        let p = self.grid.size() as f64;
        let pn = self.grid.dim(n) as f64;
        let phat = p / pn;
        let j: f64 = dims.iter().map(|&d| d as f64).product();
        let jn = dims[n] as f64;
        let flops = 2.0 * jn * j / p;
        let mut messages = 0.0;
        let mut words = 0.0;
        if pn > 1.0 {
            messages += 2.0 * (pn - 1.0);
            words += 2.0 * (pn - 1.0) * j / p;
        }
        if phat > 1.0 {
            messages += 2.0 * phat.log2().ceil();
            words += 2.0 * (phat - 1.0) * jn * jn / p;
        }
        KernelCost {
            messages,
            words,
            flops,
        }
    }

    /// Cost of the parallel eigenvector computation (Alg. 5, Sec. V-D) for a
    /// Gram matrix of size `in_dim × in_dim`.
    ///
    /// `C_EIG = α·log P_n + β·(P_n − 1)/P_n·I_n² + γ·(10/3)·I_n³`.
    pub fn evecs(&self, in_dim: usize, n: usize) -> KernelCost {
        let pn = self.grid.dim(n) as f64;
        let i = in_dim as f64;
        let messages = if pn > 1.0 { pn.log2().ceil() } else { 0.0 };
        let words = if pn > 1.0 {
            (pn - 1.0) / pn * i * i
        } else {
            0.0
        };
        let flops = 10.0 / 3.0 * i * i * i;
        KernelCost {
            messages,
            words,
            flops,
        }
    }

    /// Per-kernel cost breakdown of ST-HOSVD (Alg. 1) processing the modes in
    /// `order`, reducing mode `n` from `dims[n]` to `ranks[n]`.
    ///
    /// Returns `(gram, evecs, ttm)` totals; the overall cost is their sum.
    pub fn st_hosvd_breakdown(
        &self,
        dims: &[usize],
        ranks: &[usize],
        order: &[usize],
    ) -> (KernelCost, KernelCost, KernelCost) {
        assert_eq!(dims.len(), ranks.len());
        assert_eq!(dims.len(), order.len());
        let mut current: Vec<usize> = dims.to_vec();
        let mut gram_total = KernelCost::zero();
        let mut evec_total = KernelCost::zero();
        let mut ttm_total = KernelCost::zero();
        for &n in order {
            gram_total = gram_total.plus(&self.gram(&current, n));
            evec_total = evec_total.plus(&self.evecs(current[n], n));
            ttm_total = ttm_total.plus(&self.ttm(&current, n, ranks[n]));
            current[n] = ranks[n];
        }
        (gram_total, evec_total, ttm_total)
    }

    /// Total cost of ST-HOSVD with the given mode-processing order.
    pub fn st_hosvd(&self, dims: &[usize], ranks: &[usize], order: &[usize]) -> KernelCost {
        let (g, e, t) = self.st_hosvd_breakdown(dims, ranks, order);
        g.plus(&e).plus(&t)
    }

    /// Cost of one outer HOOI iteration (Alg. 2, Sec. VI-B): for each mode `n`,
    /// a multi-TTM in all other modes, a Gram, and an eigenvector solve, plus
    /// the final TTM that forms the core.
    pub fn hooi_iteration(&self, dims: &[usize], ranks: &[usize]) -> KernelCost {
        let nmodes = dims.len();
        let mut total = KernelCost::zero();
        for n in 0..nmodes {
            // Multi-TTM: multiply by every factor except mode n, in natural order.
            let mut current: Vec<usize> = dims.to_vec();
            for m in 0..nmodes {
                if m == n {
                    continue;
                }
                total = total.plus(&self.ttm(&current, m, ranks[m]));
                current[m] = ranks[m];
            }
            total = total.plus(&self.gram(&current, n));
            total = total.plus(&self.evecs(current[n], n));
        }
        // Final TTM in the last mode to form the core.
        let mut current: Vec<usize> = ranks.to_vec();
        let last = nmodes - 1;
        current[last] = dims[last];
        total = total.plus(&self.ttm(&current, last, ranks[last]));
        total
    }

    /// Predicted ST-HOSVD time in seconds.
    pub fn st_hosvd_time(&self, dims: &[usize], ranks: &[usize], order: &[usize]) -> f64 {
        self.st_hosvd(dims, ranks, order).time(&self.params)
    }

    /// Predicted time of one HOOI iteration in seconds.
    pub fn hooi_iteration_time(&self, dims: &[usize], ranks: &[usize]) -> f64 {
        self.hooi_iteration(dims, ranks).time(&self.params)
    }

    /// Upper bound on per-rank memory (in `f64` words) for ST-HOSVD / HOOI,
    /// eq. (2) of the paper: `2·I/P + Σ R_n·I_n/P_n + max I_n² + max R_n·I_n`.
    pub fn memory_bound_words(&self, dims: &[usize], ranks: &[usize]) -> f64 {
        let p = self.grid.size() as f64;
        let i: f64 = dims.iter().map(|&d| d as f64).product();
        let factors: f64 = dims
            .iter()
            .zip(ranks.iter())
            .enumerate()
            .map(|(n, (&d, &r))| (d as f64) * (r as f64) / self.grid.dim(n) as f64)
            .sum();
        let max_in2 = dims
            .iter()
            .map(|&d| (d as f64) * (d as f64))
            .fold(0.0, f64::max);
        let max_rnin = dims
            .iter()
            .zip(ranks.iter())
            .map(|(&d, &r)| (d as f64) * (r as f64))
            .fold(0.0, f64::max);
        2.0 * i / p + factors + max_in2 + max_rnin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(shape: &[usize]) -> CostModel {
        CostModel::new(ProcGrid::new(shape), MachineParams::edison_like())
    }

    #[test]
    fn ttm_flops_are_grid_independent() {
        let dims = [64usize, 64, 64];
        let a = model(&[1, 1, 8]).ttm(&dims, 0, 16);
        let b = model(&[2, 2, 2]).ttm(&dims, 0, 16);
        assert!((a.flops - b.flops).abs() < 1e-9);
        // Total flops = 2*J*K/P with P=8.
        let expected = 2.0 * 64.0f64.powi(3) * 16.0 / 8.0;
        assert!((a.flops - expected).abs() < 1e-6);
    }

    #[test]
    fn ttm_no_communication_when_pn_is_one() {
        let dims = [64usize, 64, 64];
        let c = model(&[1, 4, 2]).ttm(&dims, 0, 16);
        assert_eq!(c.messages, 0.0);
        assert_eq!(c.words, 0.0);
    }

    #[test]
    fn gram_is_more_expensive_than_ttm_by_dimension_ratio() {
        // Sec. VIII-B: the first Gram costs ~I1/R1 times the first TTM in flops.
        let dims = [384usize, 384, 384, 384];
        let m = model(&[1, 2, 2, 2]);
        let gram = m.gram(&dims, 0);
        let ttm = m.ttm(&dims, 0, 96);
        let ratio = gram.flops / ttm.flops;
        assert!((ratio - 384.0 / 96.0).abs() < 1e-9);
    }

    #[test]
    fn evecs_cost_is_cubic_and_small() {
        let m = model(&[2, 2, 2]);
        let c = m.evecs(200, 0);
        assert!((c.flops - 10.0 / 3.0 * 200.0f64.powi(3)).abs() < 1.0);
    }

    #[test]
    fn st_hosvd_breakdown_sums_to_total() {
        let m = model(&[2, 2, 2, 2]);
        let dims = [100usize, 100, 100, 100];
        let ranks = [10usize, 10, 10, 10];
        let order = [0usize, 1, 2, 3];
        let (g, e, t) = m.st_hosvd_breakdown(&dims, &ranks, &order);
        let total = m.st_hosvd(&dims, &ranks, &order);
        let sum = g.plus(&e).plus(&t);
        assert!((total.flops - sum.flops).abs() < 1e-6);
        assert!((total.words - sum.words).abs() < 1e-6);
    }

    #[test]
    fn processing_small_mode_first_changes_cost() {
        // Fig. 8b: mode ordering matters. Tensor 25x250x250x250 compressed to
        // 10x10x100x100: starting with mode 1 (the highest-compression mode)
        // should beat starting with mode 0 per the paper's discussion.
        let dims = [25usize, 250, 250, 250];
        let ranks = [10usize, 10, 100, 100];
        let m = model(&[2, 2, 2, 2]);
        let natural = m.st_hosvd_time(&dims, &ranks, &[0, 1, 2, 3]);
        let start_mode1 = m.st_hosvd_time(&dims, &ranks, &[1, 0, 2, 3]);
        assert!(natural != start_mode1);
    }

    #[test]
    fn hooi_iteration_costs_more_than_sthosvd() {
        let dims = [200usize, 200, 200, 200];
        let ranks = [20usize, 20, 20, 20];
        let m = model(&[2, 2, 2, 3]);
        let st = m.st_hosvd(&dims, &ranks, &[0, 1, 2, 3]);
        let hooi = m.hooi_iteration(&dims, &ranks);
        // HOOI's multi-TTMs do more work than ST-HOSVD's single TTMs per mode.
        assert!(hooi.flops > 0.0 && st.flops > 0.0);
    }

    #[test]
    fn strong_scaling_reduces_time() {
        let dims = [200usize, 200, 200, 200];
        let ranks = [20usize, 20, 20, 20];
        let order = [0usize, 1, 2, 3];
        let t1 = model(&[1, 1, 1, 1]).st_hosvd_time(&dims, &ranks, &order);
        let t16 = model(&[2, 2, 2, 2]).st_hosvd_time(&dims, &ranks, &order);
        let t256 = model(&[4, 4, 4, 4]).st_hosvd_time(&dims, &ranks, &order);
        assert!(t16 < t1);
        assert!(t256 < t16);
    }

    #[test]
    fn memory_bound_matches_eq2_structure() {
        let m = model(&[2, 2]);
        let dims = [100usize, 100];
        let ranks = [10usize, 10];
        let bound = m.memory_bound_words(&dims, &ranks);
        let expected = 2.0 * 10_000.0 / 4.0 + 2.0 * (100.0 * 10.0 / 2.0) + 10_000.0 + 1000.0;
        assert!((bound - expected).abs() < 1e-9);
    }

    #[test]
    fn collective_costs_match_table1_shapes() {
        use super::collective_cost::*;
        let c = all_reduce(8.0, 1000.0);
        assert!((c.words - 2.0 * 7.0 / 8.0 * 1000.0).abs() < 1e-9);
        assert_eq!(c.messages, 6.0);
        let r = reduce(8.0, 1000.0);
        assert!((r.words - 7.0 / 8.0 * 1000.0).abs() < 1e-9);
        let g = all_gather(1.0, 1000.0);
        assert_eq!(g.words, 0.0);
        let s = send_recv(123.0);
        assert_eq!(s.messages, 1.0);
        assert_eq!(s.words, 123.0);
    }

    #[test]
    fn kernel_cost_algebra() {
        let a = KernelCost {
            messages: 1.0,
            words: 10.0,
            flops: 100.0,
        };
        let b = a.times(3.0).plus(&a);
        assert_eq!(b.messages, 4.0);
        assert_eq!(b.words, 40.0);
        assert_eq!(b.flops, 400.0);
        let p = MachineParams {
            alpha: 1.0,
            beta: 0.1,
            gamma: 0.01,
        };
        assert!((a.time(&p) - (1.0 + 1.0 + 1.0)).abs() < 1e-12);
        let (l, w, f) = a.time_breakdown(&p);
        assert!((l - 1.0).abs() < 1e-12 && (w - 1.0).abs() < 1e-12 && (f - 1.0).abs() < 1e-12);
    }
}
