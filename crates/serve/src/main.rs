//! `tucker-serve` command line: run the daemon, or poke one as a client.
//!
//! ```text
//! tucker-serve serve --listen 127.0.0.1:7421 wave=artifacts/wave.tkr heat=artifacts/heat.tkr
//! tucker-serve list    127.0.0.1:7421
//! tucker-serve open    127.0.0.1:7421 wave
//! tucker-serve element 127.0.0.1:7421 wave 3 1 4
//! tucker-serve stats   127.0.0.1:7421
//! tucker-serve metrics 127.0.0.1:7421
//! ```
//!
//! The daemon runs until the process is killed; stats print per-artifact
//! shared-cache accounting (decoded chunks, hits, resident), and metrics
//! dump the daemon's whole `tucker-obs` registry — kernel counters, cache
//! roll-ups, and per-opcode latency quantiles — as text, one instrument
//! per line.

use std::path::PathBuf;
use std::process::ExitCode;
use tucker_serve::{serve, ServeClient, ServeConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => run_server(&args[1..]),
        Some("list") => with_client(&args[1..], 0, |client, _| {
            for info in client.list().map_err(err)? {
                let state = if info.opened { "open" } else { "registered" };
                println!("{:<24} {state}", info.name);
            }
            Ok(())
        }),
        Some("open") => with_client(&args[1..], 1, |client, rest| {
            let h = client.open(&rest[0]).map_err(err)?;
            println!(
                "dims={:?} ranks={:?} codec={} chunks={} file_bytes={}",
                h.dims,
                h.ranks,
                h.codec.name(),
                h.chunk_count,
                h.file_bytes
            );
            Ok(())
        }),
        Some("element") => with_client(&args[1..], 2, |client, rest| {
            let name = &rest[0];
            let idx: Vec<usize> = rest[1..]
                .iter()
                .map(|s| {
                    s.parse::<usize>()
                        .map_err(|e| format!("bad index {s:?}: {e}"))
                })
                .collect::<Result<_, _>>()?;
            println!("{:.17e}", client.element(name, &idx).map_err(err)?);
            Ok(())
        }),
        Some("stats") => with_client(&args[1..], 0, |client, _| {
            let s = client.stats().map_err(err)?;
            println!(
                "served={} busy_rejections={} shed_sessions={} protocol_errors={} in_flight={}",
                s.served, s.busy_rejections, s.shed_sessions, s.protocol_errors, s.in_flight
            );
            for a in &s.artifacts {
                println!(
                    "  {:<24} decoded={} hits={} resident={}",
                    a.name, a.decoded_chunks, a.cache_hits, a.resident_chunks
                );
            }
            Ok(())
        }),
        Some("metrics") => with_client(&args[1..], 0, |client, _| {
            print!("{}", client.metrics().map_err(err)?);
            Ok(())
        }),
        _ => {
            usage();
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("tucker-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

fn usage() {
    eprintln!(
        "usage:\n  tucker-serve serve --listen ADDR NAME=PATH [NAME=PATH ...]\n  \
         tucker-serve list ADDR\n  tucker-serve open ADDR NAME\n  \
         tucker-serve element ADDR NAME I J K ...\n  tucker-serve stats ADDR\n  \
         tucker-serve metrics ADDR"
    );
}

fn run_server(args: &[String]) -> Result<(), String> {
    let mut listen = None;
    let mut artifacts: Vec<(String, PathBuf)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--listen" {
            listen = Some(
                it.next()
                    .ok_or_else(|| "--listen needs an address".to_string())?
                    .clone(),
            );
        } else if let Some((name, path)) = arg.split_once('=') {
            artifacts.push((name.to_string(), PathBuf::from(path)));
        } else {
            return Err(format!(
                "unrecognized argument {arg:?} (expected NAME=PATH)"
            ));
        }
    }
    let listen = listen.ok_or_else(|| "missing --listen ADDR".to_string())?;
    if artifacts.is_empty() {
        return Err("register at least one NAME=PATH artifact".to_string());
    }
    let handle = serve(listen.as_str(), &artifacts, ServeConfig::default())
        .map_err(|e| format!("cannot start daemon on {listen}: {e}"))?;
    println!(
        "tucker-serve listening on {} ({} artifacts)",
        handle.addr(),
        artifacts.len()
    );
    // Park forever; the daemon's own threads do all the work. Killing the
    // process is the supported way to stop a CLI-launched daemon.
    loop {
        std::thread::park();
    }
}

fn with_client(
    args: &[String],
    min_rest: usize,
    body: impl FnOnce(&mut ServeClient, &[String]) -> Result<(), String>,
) -> Result<(), String> {
    let addr = args.first().ok_or_else(|| {
        usage();
        "missing server address".to_string()
    })?;
    if args.len() < 1 + min_rest {
        usage();
        return Err("missing arguments".to_string());
    }
    let mut client = ServeClient::connect(addr.as_str())
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    body(&mut client, &args[1..])
}
