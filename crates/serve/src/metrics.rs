//! Per-opcode service instruments in the process-wide `tucker-obs` registry.
//!
//! The daemon's historical [`crate::proto::ServeStats`] counters answer the
//! `stats` opcode exactly as before; this module adds the registry view the
//! `metrics` opcode scrapes: one latency [`Histogram`] per request opcode
//! (observed around decode + execute + reply for every successfully decoded
//! request, busy rejections included), mirror [`Counter`]s for the service
//! totals, and an in-flight [`Gauge`]. Everything here is a thin mapping
//! from [`Request`] values onto static instruments; like the protocol
//! module it sits under the CI panic-grep gate and cannot panic.

use crate::proto::Request;
use tucker_obs::metrics::{Counter, Gauge, Histogram};

/// Requests answered successfully (mirror of `ServeStats::served`).
pub static REQUESTS: Counter = Counter::new("serve.requests");
/// Requests rejected at the admission cap (mirror of
/// `ServeStats::busy_rejections`).
pub static BUSY_REJECTIONS: Counter = Counter::new("serve.busy_rejections");
/// Connections refused at the session cap by the accept thread, before any
/// session thread existed (mirror of `ServeStats::shed_sessions`).
pub static SHED_SESSIONS: Counter = Counter::new("serve.shed_sessions");
/// Malformed frames answered with a protocol error (mirror of
/// `ServeStats::protocol_errors`).
pub static PROTO_ERRORS: Counter = Counter::new("serve.proto_errors");
/// Requests currently admitted — queued or executing (mirror of the
/// admission counter behind `ServeStats::in_flight`).
pub static IN_FLIGHT: Gauge = Gauge::new("serve.in_flight");

static OPEN_US: Histogram = Histogram::new("serve.op.open.us");
static LIST_US: Histogram = Histogram::new("serve.op.list.us");
static RANGE_US: Histogram = Histogram::new("serve.op.range.us");
static SLICE_US: Histogram = Histogram::new("serve.op.slice.us");
static ELEMENT_US: Histogram = Histogram::new("serve.op.element.us");
static ELEMENTS_US: Histogram = Histogram::new("serve.op.elements.us");
static STATS_US: Histogram = Histogram::new("serve.op.stats.us");
static METRICS_US: Histogram = Histogram::new("serve.op.metrics.us");

/// The short exposition name of a request's opcode (matches the CLI
/// subcommand names).
pub fn op_name(request: &Request) -> &'static str {
    match request {
        Request::Open { .. } => "open",
        Request::List => "list",
        Request::ReconstructRange { .. } => "range",
        Request::ReconstructSlice { .. } => "slice",
        Request::Element { .. } => "element",
        Request::Elements { .. } => "elements",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
    }
}

/// The latency histogram a request's opcode reports into
/// (`serve.op.<name>.us`).
pub fn op_histogram(request: &Request) -> &'static Histogram {
    match request {
        Request::Open { .. } => &OPEN_US,
        Request::List => &LIST_US,
        Request::ReconstructRange { .. } => &RANGE_US,
        Request::ReconstructSlice { .. } => &SLICE_US,
        Request::Element { .. } => &ELEMENT_US,
        Request::Elements { .. } => &ELEMENTS_US,
        Request::Stats => &STATS_US,
        Request::Metrics => &METRICS_US,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_opcode_has_a_name_and_histogram() {
        let requests = [
            Request::Open { name: "a".into() },
            Request::List,
            Request::ReconstructRange {
                name: "a".into(),
                ranges: vec![(0, 1)],
            },
            Request::ReconstructSlice {
                name: "a".into(),
                mode: 0,
                index: 0,
            },
            Request::Element {
                name: "a".into(),
                idx: vec![0],
            },
            Request::Elements {
                name: "a".into(),
                ndims: 1,
                points: vec![0],
            },
            Request::Stats,
            Request::Metrics,
        ];
        let mut names: Vec<&str> = requests.iter().map(op_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), requests.len(), "opcode names must be unique");
        for r in &requests {
            let h = op_histogram(r);
            let before = h.snapshot().count;
            h.observe_us(1);
            assert_eq!(h.snapshot().count, before + 1);
        }
    }
}
