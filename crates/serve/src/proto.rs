//! The `tucker-serve` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one **frame**: a little-endian
//! `u32` payload length followed by exactly that many payload bytes. The
//! payload starts with a one-byte opcode; integers are little-endian,
//! strings are a `u32` byte length plus UTF-8 bytes, and tensor data is raw
//! little-endian `f64`s. There is no pipelining: a connection carries one
//! request, then one response, in strict alternation.
//!
//! Both directions are decoded defensively: every length is bounds-checked
//! against the side's frame cap *before* allocation, every string is
//! UTF-8-checked, element counts are capped, and a payload with trailing
//! bytes is rejected. A malformed frame is a typed
//! [`ProtocolError`] — this module cannot panic (it is under the CI
//! panic-grep gate) and never trusts a declared length further than the
//! bytes actually present.
//!
//! The server handles protocol failures per-connection: a frame that parses
//! badly gets a typed [`Response::Err`] with [`ERR_PROTOCOL`] and the
//! connection stays usable; an unusable prefix (bad length, truncation)
//! drops only that connection. See `crate::server`.

use tucker_api::ProtocolError;
use tucker_store::Codec;

/// Cap on a request frame's payload (bounds the server's per-request
/// allocation; generous for the largest legal `Elements` batch).
pub const MAX_REQUEST_FRAME: u32 = 1 << 23;
/// Cap on a response frame's payload (bounds reconstruction windows a
/// single response may carry).
pub const MAX_RESPONSE_FRAME: u32 = 1 << 26;
/// Cap on an artifact name's UTF-8 byte length.
pub const MAX_NAME_BYTES: usize = 256;
/// Cap on the number of modes in any request (mirrors the `.tkr` header
/// limit).
pub const MAX_MODES: usize = 64;
/// Cap on the number of points in one `Elements` batch.
pub const MAX_POINTS: usize = 8192;
/// Cap on a diagnostic message's UTF-8 byte length.
pub const MAX_MESSAGE_BYTES: usize = 4096;
/// Cap on a metrics exposition's UTF-8 byte length (a registry of thousands
/// of instruments stays far below this).
pub const MAX_METRICS_BYTES: usize = 1 << 20;

/// Request opcode: open (or re-validate) an artifact, returning its header
/// summary.
pub const OP_OPEN: u8 = 0x01;
/// Request opcode: list registered artifacts.
pub const OP_LIST: u8 = 0x02;
/// Request opcode: reconstruct a per-mode `(start, len)` window.
pub const OP_RANGE: u8 = 0x03;
/// Request opcode: reconstruct one hyperslice.
pub const OP_SLICE: u8 = 0x04;
/// Request opcode: reconstruct a single element.
pub const OP_ELEMENT: u8 = 0x05;
/// Request opcode: reconstruct a batch of elements.
pub const OP_ELEMENTS: u8 = 0x06;
/// Request opcode: service and per-artifact cache statistics.
pub const OP_STATS: u8 = 0x07;
/// Request opcode: the process-wide metrics registry as a text exposition.
pub const OP_METRICS: u8 = 0x08;

/// Response opcode: header summary of an opened artifact.
pub const RESP_OPEN: u8 = 0x81;
/// Response opcode: artifact listing.
pub const RESP_LIST: u8 = 0x82;
/// Response opcode: a reconstructed tensor window.
pub const RESP_TENSOR: u8 = 0x83;
/// Response opcode: a single reconstructed value.
pub const RESP_SCALAR: u8 = 0x84;
/// Response opcode: a batch of reconstructed values.
pub const RESP_VECTOR: u8 = 0x85;
/// Response opcode: service statistics.
pub const RESP_STATS: u8 = 0x86;
/// Response opcode: a metrics text exposition.
pub const RESP_METRICS: u8 = 0x87;
/// Response opcode: a typed error.
pub const RESP_ERR: u8 = 0xEE;

/// Error code: the request frame violated the protocol.
pub const ERR_PROTOCOL: u8 = 1;
/// Error code: the named artifact is not registered.
pub const ERR_UNKNOWN_ARTIFACT: u8 = 2;
/// Error code: the artifact rejected the query (out of range, wrong arity,
/// or a result too large for one response frame).
pub const ERR_QUERY: u8 = 3;
/// Error code: the admission cap rejected the request; retry later.
pub const ERR_BUSY: u8 = 4;
/// Error code: the server is shutting down and accepts no new requests.
pub const ERR_SHUTTING_DOWN: u8 = 5;
/// Error code: the request missed its deadline (including queue wait).
pub const ERR_DEADLINE: u8 = 6;
/// Error code: the registered artifact failed to open (corrupt or missing
/// file).
pub const ERR_OPEN: u8 = 7;
/// Error code: an internal failure while executing the request.
pub const ERR_INTERNAL: u8 = 8;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open (or re-validate) artifact `name`, returning its header summary.
    Open {
        /// Registered artifact name.
        name: String,
    },
    /// List every registered artifact.
    List,
    /// Reconstruct the window given by one `(start, len)` pair per mode.
    ReconstructRange {
        /// Registered artifact name.
        name: String,
        /// One `(start, len)` pair per mode.
        ranges: Vec<(u64, u64)>,
    },
    /// Reconstruct the hyperslice `index` of `mode`.
    ReconstructSlice {
        /// Registered artifact name.
        name: String,
        /// The sliced mode.
        mode: u64,
        /// The index within the mode.
        index: u64,
    },
    /// Reconstruct a single element.
    Element {
        /// Registered artifact name.
        name: String,
        /// One index per mode.
        idx: Vec<u64>,
    },
    /// Reconstruct a batch of elements.
    Elements {
        /// Registered artifact name.
        name: String,
        /// Number of modes per point.
        ndims: u32,
        /// `npoints × ndims` indices, point-major.
        points: Vec<u64>,
    },
    /// Service and per-artifact cache statistics.
    Stats,
    /// The process-wide metrics registry as a text exposition.
    Metrics,
}

/// The header summary a successful `Open` carries.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteHeader {
    /// Original tensor dimensions.
    pub dims: Vec<u64>,
    /// Stored core dimensions.
    pub ranks: Vec<u64>,
    /// The artifact's value codec.
    pub codec: Codec,
    /// Decomposition tolerance ε.
    pub eps: f64,
    /// The codec's quantization error bound.
    pub quant_error_bound: f64,
    /// Number of core chunks in the artifact.
    pub chunk_count: u64,
    /// Artifact size on disk in bytes.
    pub file_bytes: u64,
}

/// One artifact in a `List` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactInfo {
    /// Registered name.
    pub name: String,
    /// Whether the artifact has been opened (readers are opened on first
    /// use and kept).
    pub opened: bool,
}

/// Per-artifact cache accounting in a `Stats` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactStats {
    /// Registered name.
    pub name: String,
    /// Cumulative chunk decodes for this artifact.
    pub decoded_chunks: u64,
    /// Cumulative shared-cache hits for this artifact.
    pub cache_hits: u64,
    /// This artifact's chunks currently resident in the shared cache.
    pub resident_chunks: u64,
}

/// The service counters a `Stats` response carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered successfully.
    pub served: u64,
    /// Requests rejected at the admission cap.
    pub busy_rejections: u64,
    /// Connections refused at the session cap — answered `Busy` by the
    /// accept thread and closed before any session thread was spawned.
    pub shed_sessions: u64,
    /// Malformed request frames answered with a protocol error.
    pub protocol_errors: u64,
    /// Requests currently admitted (queued or executing).
    pub in_flight: u64,
    /// Per-artifact shared-cache accounting, sorted by name.
    pub artifacts: Vec<ArtifactStats>,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Header summary of an opened artifact.
    Open(RemoteHeader),
    /// Artifact listing, sorted by name.
    List(Vec<ArtifactInfo>),
    /// A reconstructed tensor window (row-major values).
    Tensor {
        /// The window's dimensions.
        dims: Vec<u64>,
        /// `∏ dims` row-major values.
        data: Vec<f64>,
    },
    /// A single reconstructed value.
    Scalar(f64),
    /// A batch of reconstructed values, in request order.
    Vector(Vec<f64>),
    /// Service statistics.
    Stats(ServeStats),
    /// The metrics registry rendered as one `kind name fields` line per
    /// instrument (see `tucker_obs::metrics::render`), plus the server's
    /// per-artifact cache gauges.
    Metrics(String),
    /// A typed error.
    Err {
        /// One of the `ERR_*` codes.
        code: u8,
        /// Requests in flight when the error was produced (meaningful for
        /// [`ERR_BUSY`], zero otherwise).
        in_flight: u64,
        /// Human-readable diagnostic.
        message: String,
    },
}

fn malformed(msg: &str) -> ProtocolError {
    ProtocolError::Malformed(msg.to_string())
}

/// A bounds-checked payload reader.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| malformed("declared length runs past the payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self, max: usize, what: &str) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        if len > max {
            return Err(malformed(&format!(
                "{what} of {len} bytes exceeds cap {max}"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed(&format!("{what} is not UTF-8")))
    }

    fn u64s(&mut self, n: usize) -> Result<Vec<u64>, ProtocolError> {
        let bytes = self.take(
            n.checked_mul(8)
                .ok_or_else(|| malformed("index count overflow"))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                u64::from_le_bytes(a)
            })
            .collect())
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, ProtocolError> {
        Ok(self.u64s(n)?.into_iter().map(f64::from_bits).collect())
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed("trailing bytes after the message"))
        }
    }

    fn modes(&mut self, what: &str) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if n == 0 || n > MAX_MODES {
            return Err(malformed(&format!(
                "{what} of {n} modes outside the accepted range 1..={MAX_MODES}"
            )));
        }
        Ok(n)
    }
}

/// A little-endian payload writer (infallible; the frame cap is enforced by
/// [`encode_frame`]).
#[derive(Default)]
struct Enc {
    out: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.out.extend_from_slice(s.as_bytes());
    }

    fn u64s(&mut self, vs: &[u64]) {
        self.out.reserve(vs.len() * 8);
        for &v in vs {
            self.u64(v);
        }
    }

    fn f64s(&mut self, vs: &[f64]) {
        self.out.reserve(vs.len() * 8);
        for &v in vs {
            self.f64(v);
        }
    }
}

impl Request {
    /// Encodes the request payload (no frame prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Request::Open { name } => {
                e.u8(OP_OPEN);
                e.str(name);
            }
            Request::List => e.u8(OP_LIST),
            Request::ReconstructRange { name, ranges } => {
                e.u8(OP_RANGE);
                e.str(name);
                e.u32(ranges.len() as u32);
                for &(start, len) in ranges {
                    e.u64(start);
                    e.u64(len);
                }
            }
            Request::ReconstructSlice { name, mode, index } => {
                e.u8(OP_SLICE);
                e.str(name);
                e.u64(*mode);
                e.u64(*index);
            }
            Request::Element { name, idx } => {
                e.u8(OP_ELEMENT);
                e.str(name);
                e.u32(idx.len() as u32);
                e.u64s(idx);
            }
            Request::Elements {
                name,
                ndims,
                points,
            } => {
                e.u8(OP_ELEMENTS);
                e.str(name);
                e.u32((points.len() / (*ndims).max(1) as usize) as u32);
                e.u32(*ndims);
                e.u64s(points);
            }
            Request::Stats => e.u8(OP_STATS),
            Request::Metrics => e.u8(OP_METRICS),
        }
        e.out
    }

    /// Decodes a request payload, rejecting unknown opcodes, out-of-cap
    /// counts, non-UTF-8 names, and trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut d = Dec::new(payload);
        let op = d.u8()?;
        let req = match op {
            OP_OPEN => Request::Open {
                name: d.str(MAX_NAME_BYTES, "artifact name")?,
            },
            OP_LIST => Request::List,
            OP_RANGE => {
                let name = d.str(MAX_NAME_BYTES, "artifact name")?;
                let n = d.modes("range request")?;
                let flat = d.u64s(n * 2)?;
                Request::ReconstructRange {
                    name,
                    ranges: flat.chunks_exact(2).map(|c| (c[0], c[1])).collect(),
                }
            }
            OP_SLICE => Request::ReconstructSlice {
                name: d.str(MAX_NAME_BYTES, "artifact name")?,
                mode: d.u64()?,
                index: d.u64()?,
            },
            OP_ELEMENT => {
                let name = d.str(MAX_NAME_BYTES, "artifact name")?;
                let n = d.modes("element request")?;
                Request::Element {
                    name,
                    idx: d.u64s(n)?,
                }
            }
            OP_ELEMENTS => {
                let name = d.str(MAX_NAME_BYTES, "artifact name")?;
                let npoints = d.u32()? as usize;
                if npoints > MAX_POINTS {
                    return Err(malformed(&format!(
                        "batch of {npoints} points exceeds cap {MAX_POINTS}"
                    )));
                }
                let ndims = d.modes("elements request")?;
                Request::Elements {
                    name,
                    ndims: ndims as u32,
                    points: d.u64s(npoints * ndims)?,
                }
            }
            OP_STATS => Request::Stats,
            OP_METRICS => Request::Metrics,
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response payload (no frame prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Response::Open(h) => {
                e.u8(RESP_OPEN);
                e.u32(h.dims.len() as u32);
                e.u64s(&h.dims);
                e.u64s(&h.ranks);
                e.u8(h.codec.id());
                e.f64(h.eps);
                e.f64(h.quant_error_bound);
                e.u64(h.chunk_count);
                e.u64(h.file_bytes);
            }
            Response::List(items) => {
                e.u8(RESP_LIST);
                e.u32(items.len() as u32);
                for item in items {
                    e.str(&item.name);
                    e.u8(u8::from(item.opened));
                }
            }
            Response::Tensor { dims, data } => {
                e.u8(RESP_TENSOR);
                e.u32(dims.len() as u32);
                e.u64s(dims);
                e.f64s(data);
            }
            Response::Scalar(v) => {
                e.u8(RESP_SCALAR);
                e.f64(*v);
            }
            Response::Vector(vs) => {
                e.u8(RESP_VECTOR);
                e.u32(vs.len() as u32);
                e.f64s(vs);
            }
            Response::Stats(s) => {
                e.u8(RESP_STATS);
                e.u64(s.served);
                e.u64(s.busy_rejections);
                e.u64(s.shed_sessions);
                e.u64(s.protocol_errors);
                e.u64(s.in_flight);
                e.u32(s.artifacts.len() as u32);
                for a in &s.artifacts {
                    e.str(&a.name);
                    e.u64(a.decoded_chunks);
                    e.u64(a.cache_hits);
                    e.u64(a.resident_chunks);
                }
            }
            Response::Metrics(text) => {
                e.u8(RESP_METRICS);
                e.str(text);
            }
            Response::Err {
                code,
                in_flight,
                message,
            } => {
                e.u8(RESP_ERR);
                e.u8(*code);
                e.u64(*in_flight);
                e.str(message);
            }
        }
        e.out
    }

    /// Decodes a response payload with the same defensive posture as
    /// [`Request::decode`]; a `Tensor` additionally requires its declared
    /// dims product to match the values actually present (overflow-checked).
    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut d = Dec::new(payload);
        let op = d.u8()?;
        let resp = match op {
            RESP_OPEN => {
                let n = d.modes("header summary")?;
                let dims = d.u64s(n)?;
                let ranks = d.u64s(n)?;
                let codec_id = d.u8()?;
                let codec = Codec::try_from_id(codec_id)
                    .map_err(|_| malformed(&format!("unknown codec id {codec_id}")))?;
                Response::Open(RemoteHeader {
                    dims,
                    ranks,
                    codec,
                    eps: d.f64()?,
                    quant_error_bound: d.f64()?,
                    chunk_count: d.u64()?,
                    file_bytes: d.u64()?,
                })
            }
            RESP_LIST => {
                let n = d.u32()? as usize;
                if n > MAX_POINTS {
                    return Err(malformed("artifact listing implausibly long"));
                }
                let mut items = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    items.push(ArtifactInfo {
                        name: d.str(MAX_NAME_BYTES, "artifact name")?,
                        opened: d.u8()? != 0,
                    });
                }
                Response::List(items)
            }
            RESP_TENSOR => {
                let n = d.modes("tensor response")?;
                let dims = d.u64s(n)?;
                let count = dims
                    .iter()
                    .try_fold(1u64, |acc, &dim| acc.checked_mul(dim))
                    .and_then(|c| usize::try_from(c).ok())
                    .ok_or_else(|| malformed("tensor dims product overflows"))?;
                let data = d.f64s(count)?;
                Response::Tensor { dims, data }
            }
            RESP_SCALAR => Response::Scalar(d.f64()?),
            RESP_VECTOR => {
                let n = d.u32()? as usize;
                if n > MAX_POINTS {
                    return Err(malformed(&format!(
                        "vector of {n} values exceeds cap {MAX_POINTS}"
                    )));
                }
                Response::Vector(d.f64s(n)?)
            }
            RESP_STATS => {
                let served = d.u64()?;
                let busy_rejections = d.u64()?;
                let shed_sessions = d.u64()?;
                let protocol_errors = d.u64()?;
                let in_flight = d.u64()?;
                let n = d.u32()? as usize;
                if n > MAX_POINTS {
                    return Err(malformed("stats listing implausibly long"));
                }
                let mut artifacts = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    artifacts.push(ArtifactStats {
                        name: d.str(MAX_NAME_BYTES, "artifact name")?,
                        decoded_chunks: d.u64()?,
                        cache_hits: d.u64()?,
                        resident_chunks: d.u64()?,
                    });
                }
                Response::Stats(ServeStats {
                    served,
                    busy_rejections,
                    shed_sessions,
                    protocol_errors,
                    in_flight,
                    artifacts,
                })
            }
            RESP_METRICS => Response::Metrics(d.str(MAX_METRICS_BYTES, "metrics exposition")?),
            RESP_ERR => Response::Err {
                code: d.u8()?,
                in_flight: d.u64()?,
                message: d.str(MAX_MESSAGE_BYTES, "error message")?,
            },
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        d.finish()?;
        Ok(resp)
    }
}

/// Prepends the `u32` length prefix to a payload, rejecting payloads
/// outside `1..=max` with a typed [`ProtocolError::FrameLength`].
pub fn encode_frame(payload: &[u8], max: u32) -> Result<Vec<u8>, ProtocolError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l >= 1 && l <= max)
        .ok_or(ProtocolError::FrameLength {
            len: payload.len() as u64,
            max: max as u64,
        })?;
    let mut frame = Vec::with_capacity(payload.len() + 4);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// Validates a received length prefix against `1..=max`.
pub fn check_frame_len(len: u32, max: u32) -> Result<usize, ProtocolError> {
    if len >= 1 && len <= max {
        Ok(len as usize)
    } else {
        Err(ProtocolError::FrameLength {
            len: len as u64,
            max: max as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = req.encode();
        assert!(payload.len() <= MAX_REQUEST_FRAME as usize);
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let payload = resp.encode();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Open { name: "sp".into() });
        round_trip_request(Request::List);
        round_trip_request(Request::Stats);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::ReconstructRange {
            name: "field".into(),
            ranges: vec![(0, 4), (2, 3), (10, 2)],
        });
        round_trip_request(Request::ReconstructSlice {
            name: "field".into(),
            mode: 2,
            index: 7,
        });
        round_trip_request(Request::Element {
            name: "x".into(),
            idx: vec![1, 2, 3],
        });
        round_trip_request(Request::Elements {
            name: "x".into(),
            ndims: 3,
            points: vec![0, 0, 0, 1, 2, 3],
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Open(RemoteHeader {
            dims: vec![16, 12, 10],
            ranks: vec![4, 4, 3],
            codec: Codec::F32,
            eps: 1e-4,
            quant_error_bound: 0.0,
            chunk_count: 10,
            file_bytes: 12345,
        }));
        round_trip_response(Response::List(vec![
            ArtifactInfo {
                name: "a".into(),
                opened: true,
            },
            ArtifactInfo {
                name: "b".into(),
                opened: false,
            },
        ]));
        round_trip_response(Response::Tensor {
            dims: vec![2, 3],
            data: vec![1.0, -2.5, 0.0, f64::MIN_POSITIVE, 4.0, 5.0],
        });
        round_trip_response(Response::Scalar(-0.25));
        round_trip_response(Response::Vector(vec![1.0, 2.0, 3.0]));
        round_trip_response(Response::Stats(ServeStats {
            served: 10,
            busy_rejections: 2,
            shed_sessions: 4,
            protocol_errors: 1,
            in_flight: 3,
            artifacts: vec![ArtifactStats {
                name: "a".into(),
                decoded_chunks: 5,
                cache_hits: 7,
                resident_chunks: 4,
            }],
        }));
        round_trip_response(Response::Metrics(
            "counter serve.requests 3\nhist serve.op.list.us count=3 sum_us=12 p50=4 p99=8\n"
                .into(),
        ));
        round_trip_response(Response::Err {
            code: ERR_BUSY,
            in_flight: 8,
            message: "at capacity".into(),
        });
    }

    #[test]
    fn oversized_metrics_exposition_is_rejected() {
        let mut bad = vec![RESP_METRICS];
        bad.extend_from_slice(&(MAX_METRICS_BYTES as u32 + 1).to_le_bytes());
        assert!(Response::decode(&bad).is_err());
    }

    #[test]
    fn unknown_opcodes_are_typed() {
        assert!(matches!(
            Request::decode(&[0x7F]),
            Err(ProtocolError::UnknownOpcode(0x7F))
        ));
        assert!(matches!(
            Response::decode(&[0x00]),
            Err(ProtocolError::UnknownOpcode(0x00))
        ));
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        // Truncated: an Open frame whose name length runs past the bytes.
        let mut bad = vec![OP_OPEN];
        bad.extend_from_slice(&100u32.to_le_bytes());
        bad.extend_from_slice(b"abc");
        assert!(Request::decode(&bad).is_err());
        // Trailing: a valid List with junk after it.
        assert!(Request::decode(&[OP_LIST, 0xAA]).is_err());
        // Empty payload.
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn caps_are_enforced() {
        // An absurd mode count must be rejected before any allocation.
        let mut bad = vec![OP_RANGE];
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.push(b'x');
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&bad).is_err());
        // A batch beyond MAX_POINTS likewise.
        let mut bad = vec![OP_ELEMENTS];
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.push(b'x');
        bad.extend_from_slice(&(MAX_POINTS as u32 + 1).to_le_bytes());
        bad.extend_from_slice(&3u32.to_le_bytes());
        assert!(Request::decode(&bad).is_err());
        // A tensor response whose dims product overflows u64.
        let mut bad = vec![RESP_TENSOR];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&u64::MAX.to_le_bytes());
        bad.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Response::decode(&bad).is_err());
        // A name longer than the cap.
        let mut bad = vec![OP_OPEN];
        bad.extend_from_slice(&(MAX_NAME_BYTES as u32 + 1).to_le_bytes());
        bad.extend_from_slice(&vec![b'n'; MAX_NAME_BYTES + 1]);
        assert!(Request::decode(&bad).is_err());
    }

    #[test]
    fn frame_lengths_are_validated_both_ways() {
        assert!(matches!(
            encode_frame(&[], MAX_REQUEST_FRAME),
            Err(ProtocolError::FrameLength { len: 0, .. })
        ));
        let frame = encode_frame(&[OP_LIST], MAX_REQUEST_FRAME).unwrap();
        assert_eq!(frame, vec![1, 0, 0, 0, OP_LIST]);
        assert!(check_frame_len(0, MAX_REQUEST_FRAME).is_err());
        assert!(check_frame_len(MAX_REQUEST_FRAME + 1, MAX_REQUEST_FRAME).is_err());
        assert_eq!(check_frame_len(17, MAX_REQUEST_FRAME).unwrap(), 17);
    }

    #[test]
    fn non_utf8_strings_are_rejected() {
        let mut bad = vec![OP_OPEN];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            Request::decode(&bad),
            Err(ProtocolError::Malformed(_))
        ));
    }
}
