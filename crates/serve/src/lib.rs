//! `tucker-serve` — a concurrent compression-artifact query daemon.
//!
//! The rest of the workspace answers queries in-process: open a `.tkr`
//! artifact, call [`TensorQuery`](tucker_api::TensorQuery) methods, done.
//! This crate puts that surface behind a socket so many clients — separate
//! processes, separate machines — can interrogate one set of artifacts
//! while sharing a **single decoded-chunk budget** instead of each paying
//! for its own cache.
//!
//! Everything is hand-rolled over `std::net`; there is no async runtime
//! and no external dependency. The pieces:
//!
//! - [`proto`] — the length-prefixed binary wire format. Both directions
//!   are fully bounds-checked: a hostile peer gets a typed
//!   [`ProtocolError`](tucker_api::ProtocolError), never a panic or an
//!   unbounded allocation.
//! - [`server`] — [`serve`] starts the daemon: a non-blocking accept loop,
//!   one lightweight session thread per connection, and a **bounded worker
//!   pool** (backed by the shared [`ExecContext`](tucker_exec::ExecContext)
//!   pool) that executes reconstructions. Admission control caps queued
//!   work — excess requests are refused with a typed `Busy` instead of
//!   piling up — and every request carries a server-side deadline.
//!   Readers for all sessions share one [`SharedChunkCache`]
//!   (`tucker_store::SharedChunkCache`), so a chunk decoded for one client
//!   is a cache hit for every other. [`ServerHandle::shutdown`] drains
//!   in-flight requests before returning.
//! - [`client`] — [`ServeClient`], the matching blocking client, which
//!   maps wire errors back onto the [`TuckerError`](tucker_api::TuckerError)
//!   hierarchy so remote callers handle exactly the errors local callers
//!   do.
//! - [`metrics`] — the daemon's instruments in the process-wide
//!   `tucker-obs` registry: a latency histogram per opcode, service-total
//!   mirrors, and the in-flight gauge. The `metrics` opcode (and
//!   [`ServeClient::metrics`]) scrapes the whole registry as a text
//!   exposition, so a live daemon's kernel counters, cache accounting, and
//!   per-opcode latency quantiles are one request away.
//!
//! # Quickstart
//!
//! ```
//! use tucker_serve::{serve, ServeClient, ServeConfig};
//! # use tucker_api::Compressor;
//! # use tucker_tensor::DenseTensor;
//! # let dir = std::env::temp_dir();
//! # let path = dir.join("tucker_serve_doctest.tkr");
//! # let x = DenseTensor::from_fn(&[8, 7, 6], |i| (i[0] + 2 * i[1]) as f64 - 0.5 * i[2] as f64);
//! # Compressor::new(&x).tolerance(1e-6).write_to(&path)?;
//! // Bind an ephemeral port and register artifacts by name.
//! let handle = serve(
//!     "127.0.0.1:0",
//!     &[("wave".to_string(), path.clone())],
//!     ServeConfig::default(),
//! )?;
//!
//! let mut client = ServeClient::connect(handle.addr())?;
//! let header = client.open("wave")?;
//! let window = client.reconstruct_range("wave", &[(1, 3), (0, 7), (2, 2)])?;
//! assert_eq!(window.dims(), &[3, 7, 2]);
//!
//! let stats = handle.shutdown(); // drains in-flight work first
//! assert!(stats.served >= 2);
//! # assert_eq!(header.dims, vec![8, 7, 6]);
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::ServeClient;
pub use proto::{ArtifactInfo, ArtifactStats, RemoteHeader, Request, Response, ServeStats};
pub use server::{serve, ServeConfig, ServerHandle};
