//! [`ServeClient`] — the blocking client side of the `tucker-serve` wire.
//!
//! One client owns one connection and issues one request at a time (the
//! protocol has no pipelining). Responses are decoded with the same
//! defensive posture as the server decodes requests — a misbehaving or
//! malicious server produces a typed [`TuckerError`], never a panic, a
//! hang (reads are bounded by a configurable timeout), or an oversized
//! allocation.
//!
//! Server-reported errors map onto the facade hierarchy so service callers
//! handle exactly the error type local callers do:
//!
//! | wire code | [`TuckerError`] |
//! |---|---|
//! | `ERR_BUSY` | [`TuckerError::Busy`] (typed backpressure; retry) |
//! | `ERR_QUERY` | [`TuckerError::Query`] with [`QueryError::Remote`] |
//! | `ERR_UNKNOWN_ARTIFACT` | [`TuckerError::Query`] with [`QueryError::Remote`] |
//! | `ERR_PROTOCOL` | [`TuckerError::Protocol`] with [`ProtocolError::Remote`] |
//! | `ERR_OPEN` | [`TuckerError::Format`] ([`FormatError::Invalid`]) |
//! | `ERR_DEADLINE` | [`TuckerError::Io`] (`TimedOut`) |
//! | `ERR_SHUTTING_DOWN` | [`TuckerError::Io`] (`ConnectionAborted`) |
//! | `ERR_INTERNAL` | [`TuckerError::Io`] (`Other`) |

use crate::proto::{
    check_frame_len, encode_frame, ArtifactInfo, RemoteHeader, Request, Response, ServeStats,
    ERR_BUSY, ERR_DEADLINE, ERR_OPEN, ERR_PROTOCOL, ERR_SHUTTING_DOWN, ERR_UNKNOWN_ARTIFACT,
    MAX_REQUEST_FRAME, MAX_RESPONSE_FRAME,
};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tucker_api::{ProtocolError, TuckerError};
use tucker_store::QueryError;
use tucker_tensor::DenseTensor;

/// A blocking client connection to a `tucker-serve` daemon.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects with a 30-second default IO timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = ServeClient { stream };
        client.set_timeout(Some(Duration::from_secs(30)))?;
        Ok(client)
    }

    /// Sets the per-operation read/write timeout (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Opens (or re-validates) a registered artifact, returning its header
    /// summary.
    pub fn open(&mut self, name: &str) -> Result<RemoteHeader, TuckerError> {
        match self.rpc(&Request::Open {
            name: name.to_string(),
        })? {
            Response::Open(h) => Ok(h),
            other => Err(unexpected(&other)),
        }
    }

    /// Lists the daemon's registered artifacts.
    pub fn list(&mut self) -> Result<Vec<ArtifactInfo>, TuckerError> {
        match self.rpc(&Request::List)? {
            Response::List(items) => Ok(items),
            other => Err(unexpected(&other)),
        }
    }

    /// Service counters plus per-artifact shared-cache accounting.
    pub fn stats(&mut self) -> Result<ServeStats, TuckerError> {
        match self.rpc(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// The daemon's whole `tucker-obs` metrics registry as a text
    /// exposition: one `counter`/`gauge`/`hist` line per instrument
    /// (sorted by name), followed by per-artifact cache gauges.
    pub fn metrics(&mut self) -> Result<String, TuckerError> {
        match self.rpc(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Reconstructs the window given by one `(start, len)` pair per mode.
    pub fn reconstruct_range(
        &mut self,
        name: &str,
        ranges: &[(usize, usize)],
    ) -> Result<DenseTensor, TuckerError> {
        let req = Request::ReconstructRange {
            name: name.to_string(),
            ranges: ranges.iter().map(|&(s, l)| (s as u64, l as u64)).collect(),
        };
        self.tensor_rpc(&req)
    }

    /// Reconstructs the hyperslice `index` of `mode`.
    pub fn reconstruct_slice(
        &mut self,
        name: &str,
        mode: usize,
        index: usize,
    ) -> Result<DenseTensor, TuckerError> {
        let req = Request::ReconstructSlice {
            name: name.to_string(),
            mode: mode as u64,
            index: index as u64,
        };
        self.tensor_rpc(&req)
    }

    /// Reconstructs a single element.
    pub fn element(&mut self, name: &str, idx: &[usize]) -> Result<f64, TuckerError> {
        let req = Request::Element {
            name: name.to_string(),
            idx: idx.iter().map(|&i| i as u64).collect(),
        };
        match self.rpc(&req)? {
            Response::Scalar(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// Reconstructs a batch of elements (values in request order).
    pub fn elements(&mut self, name: &str, points: &[&[usize]]) -> Result<Vec<f64>, TuckerError> {
        let ndims = points.first().map_or(0, |p| p.len());
        if points.iter().any(|p| p.len() != ndims) {
            return Err(TuckerError::Query(QueryError::ModeCountMismatch {
                expected: ndims,
                got: points
                    .iter()
                    .map(|p| p.len())
                    .find(|&l| l != ndims)
                    .unwrap_or(0),
            }));
        }
        let req = Request::Elements {
            name: name.to_string(),
            ndims: ndims as u32,
            points: points
                .iter()
                .flat_map(|p| p.iter().map(|&i| i as u64))
                .collect(),
        };
        match self.rpc(&req)? {
            Response::Vector(vs) => {
                if vs.len() == points.len() {
                    Ok(vs)
                } else {
                    Err(TuckerError::Protocol(ProtocolError::Malformed(format!(
                        "server answered {} values for {} points",
                        vs.len(),
                        points.len()
                    ))))
                }
            }
            other => Err(unexpected(&other)),
        }
    }

    fn tensor_rpc(&mut self, req: &Request) -> Result<DenseTensor, TuckerError> {
        match self.rpc(req)? {
            Response::Tensor { dims, data } => {
                let dims: Vec<usize> = dims
                    .iter()
                    .map(|&d| usize::try_from(d).unwrap_or(usize::MAX))
                    .collect();
                // Response::decode already pinned data.len() to the checked
                // dims product, so from_vec cannot be handed a mismatch.
                Ok(DenseTensor::from_vec(&dims, data))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// One request/response exchange, fully validated.
    fn rpc(&mut self, req: &Request) -> Result<Response, TuckerError> {
        let frame = encode_frame(&req.encode(), MAX_REQUEST_FRAME)?;
        self.stream.write_all(&frame).map_err(TuckerError::Io)?;
        self.stream.flush().map_err(TuckerError::Io)?;

        let mut prefix = [0u8; 4];
        read_exact_mapped(&mut self.stream, &mut prefix)?;
        let len = check_frame_len(u32::from_le_bytes(prefix), MAX_RESPONSE_FRAME)?;
        let mut payload = vec![0u8; len];
        read_exact_mapped(&mut self.stream, &mut payload)?;

        match Response::decode(&payload)? {
            Response::Err {
                code,
                in_flight,
                message,
            } => Err(remote_error(code, in_flight, message)),
            ok => Ok(ok),
        }
    }
}

/// Reads exactly `buf.len()` bytes, mapping a clean EOF onto the typed
/// truncation error (a server vanishing mid-response is a protocol event,
/// not a bare IO error).
fn read_exact_mapped(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), TuckerError> {
    stream.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TuckerError::Protocol(ProtocolError::Truncated)
        } else {
            TuckerError::Io(e)
        }
    })
}

fn unexpected(resp: &Response) -> TuckerError {
    let label = match resp {
        Response::Open(_) => "open summary",
        Response::List(_) => "listing",
        Response::Tensor { .. } => "tensor",
        Response::Scalar(_) => "scalar",
        Response::Vector(_) => "vector",
        Response::Stats(_) => "stats",
        Response::Metrics(_) => "metrics",
        Response::Err { .. } => "error",
    };
    TuckerError::Protocol(ProtocolError::Malformed(format!(
        "server answered with an unexpected {label} response"
    )))
}

/// Maps a wire error frame onto the facade hierarchy (see the module docs
/// for the table).
fn remote_error(code: u8, in_flight: u64, message: String) -> TuckerError {
    match code {
        ERR_BUSY => TuckerError::Busy {
            in_flight: usize::try_from(in_flight).unwrap_or(usize::MAX),
        },
        ERR_PROTOCOL => TuckerError::Protocol(ProtocolError::Remote { code, message }),
        ERR_OPEN => TuckerError::Format(tucker_store::FormatError::Invalid(message)),
        ERR_DEADLINE => TuckerError::Io(io::Error::new(io::ErrorKind::TimedOut, message)),
        ERR_SHUTTING_DOWN => {
            TuckerError::Io(io::Error::new(io::ErrorKind::ConnectionAborted, message))
        }
        ERR_UNKNOWN_ARTIFACT => TuckerError::Query(QueryError::Remote { message }),
        // ERR_QUERY and any future codes degrade to a remote query error so
        // old clients survive new servers.
        _ => TuckerError::Query(QueryError::Remote { message }),
    }
}
