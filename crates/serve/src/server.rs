//! The daemon: accept loop, per-connection sessions, a bounded worker pool,
//! admission control, deadlines, and graceful drain.
//!
//! # Architecture
//!
//! ```text
//! accept thread ──spawns──▶ session threads (one per connection)
//!                               │  read frame → decode → resolve artifact
//!                               │  admission: in_flight < queue_depth ?
//!                               ▼           no → typed Busy, stay connected
//!                           job channel (std::sync::mpsc)
//!                               ▼
//!                           worker threads (bounded pool; each query runs
//!                           on an ExecContext budget slice of the global
//!                           tucker-exec pool)
//! ```
//!
//! * **Session cap** — the accept thread itself counts live session
//!   threads; past [`ServeConfig::max_sessions`] it answers a typed `Busy`
//!   on the fresh socket and closes it *without spawning a thread*, so a
//!   connection flood is bounded at one write per reject
//!   (`ServeStats::shed_sessions` counts them).
//! * **Admission / backpressure** — one atomic in-flight counter, bumped
//!   *before* a job is queued and released by the worker after the reply is
//!   sent. At the cap ([`ServeConfig::queue_depth`]) the session answers a
//!   typed `Busy` (carrying the current depth) immediately instead of
//!   queueing — the client sees backpressure, the queue stays bounded.
//! * **Deadlines** — the session waits for its worker reply at most
//!   [`ServeConfig::deadline`] (measured from admission, so queue wait
//!   counts); on expiry the client gets a typed `Deadline` error, and the
//!   worker's eventual reply is discarded harmlessly. An expired job keeps
//!   its admission slot until the worker finishes it — deliberately, so a
//!   server drowning in slow queries sheds load as `Busy` instead of
//!   accepting ever more doomed work.
//! * **Protocol failures** — a payload that does not parse gets a typed
//!   protocol error and the connection stays usable; an unusable length
//!   prefix or a mid-frame disconnect drops only that connection. Sessions
//!   share nothing mutable but the registry, cache, and counters (all
//!   internally synchronized), so one misbehaving connection cannot poison
//!   another.
//! * **Graceful shutdown** — [`ServerHandle::shutdown`] flips the shutdown
//!   flag, joins the accept thread, then joins sessions: each session
//!   finishes (and responds to) any request already in flight, refuses new
//!   frames with `ShuttingDown`, and exits at the next idle read. Only then
//!   is the job sender dropped — `std::sync::mpsc` receivers drain every
//!   queued job before reporting disconnection, so workers exit exactly
//!   when the queue is empty and no session can enqueue more.
//!
//! Readers are opened on first use (under the registry lock) with a
//! server-wide [`SharedChunkCache`], so every session of every artifact
//! shares one chunk budget and per-artifact hit/decode/resident accounting —
//! the `stats` opcode reports it.

use crate::metrics;
use crate::proto::{
    check_frame_len, encode_frame, ArtifactInfo, ArtifactStats, RemoteHeader, Request, Response,
    ServeStats, ERR_BUSY, ERR_DEADLINE, ERR_INTERNAL, ERR_OPEN, ERR_PROTOCOL, ERR_QUERY,
    ERR_SHUTTING_DOWN, ERR_UNKNOWN_ARTIFACT, MAX_REQUEST_FRAME, MAX_RESPONSE_FRAME,
};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tucker_exec::ExecContext;
use tucker_store::{SharedChunkCache, TkrReader};

/// How long a session sleeps between polls while waiting for a frame to
/// start (also bounds shutdown latency).
const IDLE_POLL: Duration = Duration::from_millis(20);
/// How long a session waits for the rest of a frame once its first byte
/// arrived, before dropping the connection as truncated.
const MID_FRAME_PATIENCE: Duration = Duration::from_secs(2);
/// Socket write timeout: a client that stops reading cannot pin a session
/// forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration of a [`serve`] daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries (0 = `min(4, global pool threads)`).
    pub workers: usize,
    /// Admission cap: maximum requests in flight (queued + executing).
    pub queue_depth: usize,
    /// Per-request deadline, measured from admission (queue wait included).
    pub deadline: Duration,
    /// Shared chunk-cache budget in decoded chunks, across all artifacts.
    pub cache_chunks: usize,
    /// Lock stripes of the shared cache.
    pub cache_stripes: usize,
    /// Session-thread cap: maximum live connections (0 = unlimited). A
    /// connection over the cap is answered with a typed `Busy` *by the
    /// accept thread itself*, before any session thread is spawned — a
    /// connection flood costs the daemon one write per reject, not one
    /// thread per socket.
    pub max_sessions: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_depth: 32,
            deadline: Duration::from_secs(30),
            cache_chunks: 64,
            cache_stripes: 8,
            max_sessions: 256,
        }
    }
}

/// A registered artifact: its path, and the reader once first opened.
struct ArtifactEntry {
    path: PathBuf,
    reader: Option<Arc<TkrReader>>,
}

/// One admitted query plus the channel its reply goes back on.
struct Job {
    request: Request,
    reader: Arc<TkrReader>,
    reply: mpsc::Sender<Response>,
}

/// State shared by the accept loop, sessions, and workers.
struct Shared {
    shutdown: AtomicBool,
    registry: Mutex<HashMap<String, ArtifactEntry>>,
    cache: SharedChunkCache,
    query_ctx: ExecContext,
    in_flight: AtomicUsize,
    queue_depth: usize,
    deadline: Duration,
    max_sessions: usize,
    served: AtomicU64,
    busy: AtomicU64,
    shed: AtomicU64,
    proto_errors: AtomicU64,
    jobs: Mutex<Option<mpsc::Sender<Job>>>,
    sessions: Mutex<Vec<JoinHandle<()>>>,
}

/// A running daemon: its bound address plus the handles needed to stop it.
///
/// Dropping the handle without calling [`ServerHandle::shutdown`] leaves
/// the daemon running detached for the rest of the process.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The daemon's bound address (resolves ephemeral port 0 requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server-wide shared chunk cache (stats and budget inspection).
    pub fn cache(&self) -> &SharedChunkCache {
        &self.shared.cache
    }

    /// Gracefully stops the daemon: stop accepting, let every session
    /// finish and answer its in-flight request, drain the worker queue,
    /// join every thread. Returns the final service counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Sessions are joined while the job sender is still alive, so their
        // in-flight requests complete and get their responses.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut sessions = self
                    .shared
                    .sessions
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                sessions.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        // Now nothing can enqueue: drop the sender so workers drain the
        // queue and exit.
        *self.shared.jobs.lock().unwrap_or_else(|e| e.into_inner()) = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        stats_snapshot(&self.shared)
    }
}

/// Starts the daemon on `addr` (use port 0 for an ephemeral port) serving
/// the `artifacts` registry of `name → path` pairs. Registration does not
/// open or validate the files — readers open on first use, and a missing or
/// corrupt file surfaces as a typed per-request error.
pub fn serve(
    addr: impl ToSocketAddrs,
    artifacts: &[(String, PathBuf)],
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let pool = ExecContext::global();
    let workers = if config.workers == 0 {
        pool.threads().min(4).max(1)
    } else {
        config.workers
    };
    // Each concurrent query gets a budget slice of the one global pool —
    // workers are submitters, not nested pools, so total CPU stays bounded
    // by TUCKER_THREADS no matter how many requests are in flight.
    let query_ctx = pool.with_budget((pool.threads() / workers).max(1));

    let registry = artifacts
        .iter()
        .map(|(name, path)| {
            (
                name.clone(),
                ArtifactEntry {
                    path: path.clone(),
                    reader: None,
                },
            )
        })
        .collect();

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
        registry: Mutex::new(registry),
        cache: SharedChunkCache::new(config.cache_chunks, config.cache_stripes),
        query_ctx,
        in_flight: AtomicUsize::new(0),
        queue_depth: config.queue_depth.max(1),
        deadline: config.deadline,
        max_sessions: config.max_sessions,
        served: AtomicU64::new(0),
        busy: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        proto_errors: AtomicU64::new(0),
        jobs: Mutex::new(Some(job_tx)),
        sessions: Mutex::new(Vec::new()),
    });

    let job_rx = Arc::new(Mutex::new(job_rx));
    let worker_handles = (0..workers)
        .map(|_| {
            let rx = Arc::clone(&job_rx);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&rx, &shared))
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || accept_loop(listener, &accept_shared));

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers: worker_handles,
    })
}

fn stats_snapshot(shared: &Shared) -> ServeStats {
    ServeStats {
        served: shared.served.load(Ordering::Relaxed),
        busy_rejections: shared.busy.load(Ordering::Relaxed),
        shed_sessions: shared.shed.load(Ordering::Relaxed),
        protocol_errors: shared.proto_errors.load(Ordering::Relaxed),
        in_flight: shared.in_flight.load(Ordering::Relaxed) as u64,
        artifacts: shared
            .cache
            .artifacts()
            .into_iter()
            .map(|(name, s)| ArtifactStats {
                name,
                decoded_chunks: s.decoded_chunks as u64,
                cache_hits: s.cache_hits as u64,
                resident_chunks: s.resident_chunks as u64,
            })
            .collect(),
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Session cap: decide *before* spawning, so a connection
                // flood costs one synchronous write per reject rather than
                // one thread per socket. Finished handles are pruned first —
                // the cap counts live sessions, not historical ones.
                let live = {
                    let mut sessions = shared.sessions.lock().unwrap_or_else(|e| e.into_inner());
                    sessions.retain(|h| !h.is_finished());
                    sessions.len()
                };
                if shared.max_sessions > 0 && live >= shared.max_sessions {
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    metrics::SHED_SESSIONS.inc();
                    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                    let _ = write_response(
                        &mut stream,
                        &Response::Err {
                            code: ERR_BUSY,
                            in_flight: live as u64,
                            message: format!(
                                "session cap {} reached; retry later",
                                shared.max_sessions
                            ),
                        },
                    );
                    continue; // the socket closes here, unserved
                }
                let shared_session = Arc::clone(shared);
                let handle = std::thread::spawn(move || session_loop(stream, &shared_session));
                let mut sessions = shared.sessions.lock().unwrap_or_else(|e| e.into_inner());
                sessions.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(IDLE_POLL),
            Err(_) => std::thread::sleep(IDLE_POLL),
        }
    }
}

/// What reading one request frame from a session socket produced.
enum FrameRead {
    /// A complete payload.
    Payload(Vec<u8>),
    /// Clean close at a frame boundary (or shutdown while idle): end the
    /// session silently.
    End,
    /// The peer declared an unusable frame length; answer then drop.
    BadLength(u64),
    /// The connection died mid-frame (disconnect or stalled past patience):
    /// drop without answering.
    Dead,
}

/// Reads one length-prefixed frame with a short poll so the session notices
/// shutdown while idle, and bounded patience once a frame has started.
fn read_request_frame(stream: &mut TcpStream, shared: &Shared) -> FrameRead {
    let mut prefix = [0u8; 4];
    match read_buf_polling(stream, &mut prefix, shared, true) {
        BufRead::Done => {}
        BufRead::CleanEof | BufRead::ShutdownIdle => return FrameRead::End,
        BufRead::Dead => return FrameRead::Dead,
    }
    let declared = u32::from_le_bytes(prefix);
    let len = match check_frame_len(declared, MAX_REQUEST_FRAME) {
        Ok(len) => len,
        Err(_) => return FrameRead::BadLength(declared as u64),
    };
    let mut payload = vec![0u8; len];
    match read_buf_polling(stream, &mut payload, shared, false) {
        BufRead::Done => FrameRead::Payload(payload),
        _ => FrameRead::Dead,
    }
}

enum BufRead {
    Done,
    /// EOF before the first byte of this buffer (idle position only).
    CleanEof,
    /// Shutdown observed while no byte of this buffer had arrived.
    ShutdownIdle,
    Dead,
}

/// Fills `buf` from a socket with a read timeout, polling the shutdown flag
/// while idle. `idle_start`: whether byte 0 of `buf` is a frame boundary
/// (where EOF and shutdown are clean exits rather than truncation).
fn read_buf_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    idle_start: bool,
) -> BufRead {
    let mut got = 0usize;
    let mut started_at: Option<Instant> = None;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 && idle_start {
                    BufRead::CleanEof
                } else {
                    BufRead::Dead
                }
            }
            Ok(n) => {
                got += n;
                started_at.get_or_insert_with(Instant::now);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if got == 0 && idle_start {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return BufRead::ShutdownIdle;
                    }
                } else if started_at.get_or_insert_with(Instant::now).elapsed() > MID_FRAME_PATIENCE
                {
                    // A peer that started a frame and stalled: truncated.
                    return BufRead::Dead;
                }
            }
            Err(_) => return BufRead::Dead,
        }
    }
    BufRead::Done
}

fn err_response(code: u8, message: String) -> Response {
    Response::Err {
        code,
        in_flight: 0,
        message,
    }
}

/// Writes one response frame; `false` drops the connection.
fn write_response(stream: &mut TcpStream, resp: &Response) -> bool {
    let payload = resp.encode();
    let frame = match encode_frame(&payload, MAX_RESPONSE_FRAME) {
        Ok(f) => f,
        // A response too large for the frame cap (pre-checked for tensor
        // data; belt and braces here) degrades to a query error.
        Err(e) => match encode_frame(
            &err_response(ERR_QUERY, format!("response exceeds frame cap: {e}")).encode(),
            MAX_RESPONSE_FRAME,
        ) {
            Ok(f) => f,
            Err(_) => return false,
        },
    };
    stream
        .write_all(&frame)
        .and_then(|_| stream.flush())
        .is_ok()
}

fn session_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_request_frame(&mut stream, shared) {
            FrameRead::Payload(p) => p,
            FrameRead::End => return,
            FrameRead::BadLength(len) => {
                shared.proto_errors.fetch_add(1, Ordering::Relaxed);
                metrics::PROTO_ERRORS.inc();
                let resp = err_response(
                    ERR_PROTOCOL,
                    format!(
                        "frame length {len} outside the accepted range 1..={MAX_REQUEST_FRAME}"
                    ),
                );
                // The stream position is unrecoverable after a bad prefix:
                // answer, then drop the connection.
                let _ = write_response(&mut stream, &resp);
                return;
            }
            FrameRead::Dead => return,
        };

        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame boundary is intact, so the connection survives a
                // payload that does not parse.
                shared.proto_errors.fetch_add(1, Ordering::Relaxed);
                metrics::PROTO_ERRORS.inc();
                if !write_response(&mut stream, &err_response(ERR_PROTOCOL, e.to_string())) {
                    return;
                }
                continue;
            }
        };

        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = write_response(
                &mut stream,
                &err_response(ERR_SHUTTING_DOWN, "server is shutting down".to_string()),
            );
            return;
        }

        // Every successfully decoded request — busy rejections and typed
        // failures included — lands in its opcode's latency histogram,
        // observed around execution *and* the reply write so the numbers
        // match what a client on this connection actually waits.
        let op_hist = metrics::op_histogram(&request);
        let op_started = Instant::now();
        let response = handle_request(request, shared);
        let ok = write_response(&mut stream, &response);
        op_hist.observe(op_started.elapsed());
        if matches!(response, Response::Err { .. }) {
            // Typed request failures keep the session; only counters differ.
        } else {
            shared.served.fetch_add(1, Ordering::Relaxed);
            metrics::REQUESTS.inc();
        }
        if !ok {
            return;
        }
    }
}

/// Resolves a registered artifact to its (lazily opened) shared reader.
fn resolve_reader(name: &str, shared: &Shared) -> Result<Arc<TkrReader>, Response> {
    let mut registry = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
    let entry = registry.get_mut(name).ok_or_else(|| {
        err_response(
            ERR_UNKNOWN_ARTIFACT,
            format!("artifact `{name}` is not registered"),
        )
    })?;
    if let Some(reader) = &entry.reader {
        return Ok(Arc::clone(reader));
    }
    match TkrReader::open_shared(&entry.path, name, &shared.cache, &shared.query_ctx) {
        Ok(reader) => {
            let reader = Arc::new(reader);
            entry.reader = Some(Arc::clone(&reader));
            Ok(reader)
        }
        Err(e) => Err(err_response(
            ERR_OPEN,
            format!("artifact `{name}` failed to open: {e}"),
        )),
    }
}

fn handle_request(request: Request, shared: &Arc<Shared>) -> Response {
    match request {
        // Control-plane requests answer inline: they touch no core chunks,
        // so they bypass admission and stay responsive under load.
        Request::List => {
            let registry = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
            let mut items: Vec<ArtifactInfo> = registry
                .iter()
                .map(|(name, entry)| ArtifactInfo {
                    name: name.clone(),
                    opened: entry.reader.is_some(),
                })
                .collect();
            items.sort_by(|a, b| a.name.cmp(&b.name));
            Response::List(items)
        }
        Request::Stats => Response::Stats(stats_snapshot(shared)),
        Request::Metrics => Response::Metrics(metrics_exposition(shared)),
        Request::Open { name } => match resolve_reader(&name, shared) {
            Ok(reader) => Response::Open(remote_header(&reader)),
            Err(resp) => resp,
        },
        // Data-plane requests go through admission and the worker pool.
        compute => {
            let name = match request_artifact(&compute) {
                Some(n) => n.to_string(),
                None => {
                    return err_response(ERR_INTERNAL, "request has no artifact".to_string());
                }
            };
            let reader = match resolve_reader(&name, shared) {
                Ok(r) => r,
                Err(resp) => return resp,
            };

            // Admission: reserve a slot or reject with the observed depth.
            if shared
                .in_flight
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |d| {
                    (d < shared.queue_depth).then_some(d + 1)
                })
                .is_err()
            {
                shared.busy.fetch_add(1, Ordering::Relaxed);
                metrics::BUSY_REJECTIONS.inc();
                return Response::Err {
                    code: ERR_BUSY,
                    in_flight: shared.in_flight.load(Ordering::Relaxed) as u64,
                    message: format!("admission cap {} reached; retry later", shared.queue_depth),
                };
            }

            metrics::IN_FLIGHT.inc();

            let (reply_tx, reply_rx) = mpsc::channel();
            let job = Job {
                request: compute,
                reader,
                reply: reply_tx,
            };
            let sent = {
                let jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
                match jobs.as_ref() {
                    Some(tx) => tx.send(job).is_ok(),
                    None => false,
                }
            };
            if !sent {
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                metrics::IN_FLIGHT.dec();
                return err_response(ERR_SHUTTING_DOWN, "server is shutting down".to_string());
            }

            match reply_rx.recv_timeout(shared.deadline) {
                Ok(resp) => resp,
                Err(mpsc::RecvTimeoutError::Timeout) => err_response(
                    ERR_DEADLINE,
                    format!("request missed its {:?} deadline", shared.deadline),
                ),
                // The worker died mid-job (it catches panics, so this is
                // a process-level failure).
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    err_response(ERR_INTERNAL, "worker failed to reply".to_string())
                }
            }
        }
    }
}

fn request_artifact(request: &Request) -> Option<&str> {
    match request {
        Request::Open { name }
        | Request::ReconstructRange { name, .. }
        | Request::ReconstructSlice { name, .. }
        | Request::Element { name, .. }
        | Request::Elements { name, .. } => Some(name),
        Request::List | Request::Stats | Request::Metrics => None,
    }
}

/// The `metrics` opcode's payload: the whole process registry rendered by
/// `tucker_obs::metrics::render`, followed by per-artifact cache gauges
/// (`serve.artifact.<name>.*`, sorted by artifact name) derived from the
/// same [`SharedChunkCache`] accounting the `stats` opcode reports.
fn metrics_exposition(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let mut out = tucker_obs::metrics::render();
    let mut artifacts = shared.cache.artifacts();
    artifacts.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, s) in artifacts {
        let _ = writeln!(
            out,
            "gauge serve.artifact.{name}.decoded_chunks {}",
            s.decoded_chunks
        );
        let _ = writeln!(
            out,
            "gauge serve.artifact.{name}.cache_hits {}",
            s.cache_hits
        );
        let _ = writeln!(
            out,
            "gauge serve.artifact.{name}.resident_chunks {}",
            s.resident_chunks
        );
    }
    out
}

fn remote_header(reader: &TkrReader) -> RemoteHeader {
    let h = reader.header();
    RemoteHeader {
        dims: h.dims.iter().map(|&d| d as u64).collect(),
        ranks: h.ranks.iter().map(|&r| r as u64).collect(),
        codec: h.codec,
        eps: h.eps,
        quant_error_bound: h.quant_error_bound,
        chunk_count: reader.chunk_count() as u64,
        file_bytes: reader.file_bytes(),
    }
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Job>>, shared: &Shared) {
    loop {
        // Holding the lock across the blocking recv is deliberate: exactly
        // one idle worker waits on the channel, the rest queue on the mutex
        // (same discipline as the tucker-exec pool). Disconnection is
        // reported only once the queue is empty, which is the drain
        // guarantee shutdown relies on.
        let job = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let Ok(job) = job else { return };
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&job.request, &job.reader)
        }))
        .unwrap_or_else(|_| err_response(ERR_INTERNAL, "query execution panicked".to_string()));
        // Send before releasing the admission slot so the cap always covers
        // work the pool has actually committed to.
        let _ = job.reply.send(response);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        metrics::IN_FLIGHT.dec();
    }
}

/// Overflow-proof `u64 → usize` for index conversion: values beyond
/// `usize::MAX` saturate and fail shape validation downstream.
fn as_index(v: u64) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Rejects reconstructions whose raw values alone would overflow the
/// response frame.
fn tensor_fits(dims: &[usize]) -> bool {
    dims.iter()
        .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
        .and_then(|n| n.checked_mul(8))
        .is_some_and(|bytes| bytes + 1024 <= MAX_RESPONSE_FRAME as u64)
}

fn tensor_response(t: tucker_tensor::DenseTensor) -> Response {
    Response::Tensor {
        dims: t.dims().iter().map(|&d| d as u64).collect(),
        data: t.into_vec(),
    }
}

fn execute(request: &Request, reader: &TkrReader) -> Response {
    match request {
        Request::ReconstructRange { ranges, .. } => {
            let ranges: Vec<(usize, usize)> = ranges
                .iter()
                .map(|&(s, l)| (as_index(s), as_index(l)))
                .collect();
            let out_dims: Vec<usize> = ranges.iter().map(|&(_, l)| l).collect();
            if !tensor_fits(&out_dims) {
                return err_response(
                    ERR_QUERY,
                    "requested window exceeds the response frame cap".to_string(),
                );
            }
            match reader.reconstruct_range(&ranges) {
                Ok(t) => tensor_response(t),
                Err(e) => err_response(ERR_QUERY, e.to_string()),
            }
        }
        Request::ReconstructSlice { mode, index, .. } => {
            let mut out_dims = reader.header().dims.clone();
            if let Some(d) = out_dims.get_mut(as_index(*mode)) {
                *d = 1;
            }
            if !tensor_fits(&out_dims) {
                return err_response(
                    ERR_QUERY,
                    "requested slice exceeds the response frame cap".to_string(),
                );
            }
            match reader.reconstruct_slice(as_index(*mode), as_index(*index)) {
                Ok(t) => tensor_response(t),
                Err(e) => err_response(ERR_QUERY, e.to_string()),
            }
        }
        Request::Element { idx, .. } => {
            let idx: Vec<usize> = idx.iter().map(|&i| as_index(i)).collect();
            match reader.element(&idx) {
                Ok(v) => Response::Scalar(v),
                Err(e) => err_response(ERR_QUERY, e.to_string()),
            }
        }
        Request::Elements { ndims, points, .. } => {
            let ndims = (*ndims as usize).max(1);
            let points: Vec<Vec<usize>> = points
                .chunks(ndims)
                .map(|p| p.iter().map(|&i| as_index(i)).collect())
                .collect();
            let refs: Vec<&[usize]> = points.iter().map(|p| p.as_slice()).collect();
            match reader.elements(&refs) {
                Ok(vs) => Response::Vector(vs),
                Err(e) => err_response(ERR_QUERY, e.to_string()),
            }
        }
        // Open/List/Stats/Metrics never reach the worker pool.
        Request::Open { .. } | Request::List | Request::Stats | Request::Metrics => err_response(
            ERR_INTERNAL,
            "control request routed to a worker".to_string(),
        ),
    }
}
