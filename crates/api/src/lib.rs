//! `tucker-api` — the unified public facade of the `parallel-tucker`
//! workspace.
//!
//! The underlying crates expose every pipeline variant as its own entry
//! point (sequential / streaming / distributed ST-HOSVD, HOOI, storage
//! writers, two reader types). This crate is the **one surface** production
//! code should program against, built from three pillars:
//!
//! 1. **[`TuckerError`]** — a workspace-wide typed error hierarchy with
//!    `From` conversions from every constituent crate's errors. Nothing
//!    reachable through this crate panics on malformed input.
//! 2. **[`Compressor`]** — a builder over every ingest path
//!    ([`Compressor::new`] for resident tensors, [`Compressor::from_slabs`]
//!    for out-of-core sources, [`Compressor::distributed`] for a processor
//!    grid) and both sinks ([`CompressionPlan::run`] in memory,
//!    [`CompressionPlan::write_to`] as a `.tkr` artifact). It dispatches to
//!    the exact existing kernels, so results are bit-identical to direct
//!    calls — it removes choice anxiety, not determinism.
//! 3. **[`TensorQuery`]** — one query interface implemented by both the
//!    eager and the lazy artifact readers, with [`Open`] choosing the
//!    backend (`Open::eager()` / `Open::lazy().cache_chunks(k)`).
//!
//! # End to end
//!
//! ```
//! use tucker_api::{Compressor, Open, TensorQuery};
//! use tucker_store::Codec;
//! use tucker_tensor::DenseTensor;
//!
//! let x = DenseTensor::from_fn(&[16, 12, 10], |idx| {
//!     (0.2 * idx[0] as f64).sin() * (0.1 * idx[1] as f64).cos() + 0.01 * idx[2] as f64
//! });
//!
//! // Compress and persist in one fallible chain.
//! let path = std::env::temp_dir().join("tucker_api_doctest.tkr");
//! let written = Compressor::new(&x)
//!     .tolerance(1e-4)
//!     .codec(Codec::F32)
//!     .write_to(&path)?;
//! assert!(written.report.compression_ratio(x.dims()) > 1.0);
//!
//! // Query through the backend-agnostic interface.
//! let reader = Open::lazy().cache_chunks(4).open(&path)?;
//! let window = reader.reconstruct_range(&[(2, 3), (0, 12), (5, 2)])?;
//! assert_eq!(window.dims(), &[3, 12, 2]);
//! std::fs::remove_file(&path).ok();
//! # Ok::<(), tucker_api::TuckerError>(())
//! ```

#![deny(missing_docs)]

pub mod compressor;
pub mod error;
pub mod query;

pub use compressor::{
    Compressed, CompressedOutput, CompressionPlan, Compressor, DistRunInfo, KernelPath, Refine,
    Written,
};
pub use error::{PlanError, ProtocolError, TuckerError};
pub use query::{Open, Reader, TensorQuery};
