//! The [`Compressor`] builder: one entry point over every pipeline variant.
//!
//! Four PRs of growth left the workspace with ~10 compression entry points
//! (`st_hosvd`, `st_hosvd_ctx`, `st_hosvd_streaming{,_ctx}`, `hooi{,_ctx}`,
//! `dist_st_hosvd{,_ctx}`, `write_tucker{,_ctx}`, `compress_streaming`,
//! `gather_and_write`). They are all still there — and this module adds
//! nothing algorithmic on top of them. A [`Compressor`] composes *which* of
//! them to run:
//!
//! | source | `.refine(..)`? | kernel dispatched |
//! |---|---|---|
//! | [`Compressor::new`] (resident tensor)     | no  | `try_st_hosvd_ctx` |
//! | [`Compressor::new`]                       | yes | `try_hooi_ctx` |
//! | [`Compressor::from_slabs`] (out-of-core)  | no  | `try_st_hosvd_streaming_ctx` |
//! | [`Compressor::from_slabs`]                | yes | rejected ([`PlanError::RefineNeedsResident`]) |
//! | [`Compressor::distributed`] (grid)        | no  | `try_dist_st_hosvd_ctx` per rank + gather |
//! | [`Compressor::distributed`]               | yes | `try_dist_hooi_ctx` per rank + gather |
//!
//! and both sinks — [`CompressionPlan::run`] (in-memory result) and
//! [`CompressionPlan::write_to`] (a `.tkr` artifact via
//! `try_write_tucker_ctx`) — dispatch to those existing kernels, so the
//! output is **bit-identical** to calling them directly (pinned by
//! `tests/api_equivalence.rs`). All validation happens at
//! [`Compressor::plan`] time through the `tucker_core::validate` /
//! `tucker_store` typed-error layers: no input, however malformed, panics.

use crate::error::{PlanError, TuckerError};
use std::path::Path;
use tucker_core::dist::{try_dist_hooi_ctx, try_dist_st_hosvd_ctx, DistTensor};
use tucker_core::rank::RankSelection;
use tucker_core::validate::{self, RankError};
use tucker_core::{
    try_hooi_ctx, try_st_hosvd_ctx, try_st_hosvd_streaming_ctx, HooiOptions, HooiResult, ModeOrder,
    SthosvdOptions, SthosvdResult, StreamingOptions, TuckerTensor,
};
use tucker_distmem::runtime::spmd_with_grid_handle;
use tucker_distmem::ProcGrid;
use tucker_exec::ExecContext;
use tucker_store::{try_write_tucker_ctx, Codec, EncodeReport, StoreOptions, TkrMetadata};
use tucker_tensor::{DenseTensor, SlabSource};

/// Where the input tensor lives.
enum SourceKind<'a> {
    /// A resident tensor.
    Dense(&'a DenseTensor),
    /// An out-of-core source yielding whole last-mode slabs.
    Slabs(&'a dyn SlabSource),
    /// A (logically) global tensor block-distributed over a processor grid
    /// by the simulated runtime.
    Dist {
        global: &'a DenseTensor,
        grid: ProcGrid,
    },
}

impl SourceKind<'_> {
    fn dims(&self) -> &[usize] {
        match self {
            SourceKind::Dense(x) => x.dims(),
            SourceKind::Slabs(s) => s.dims(),
            SourceKind::Dist { global, .. } => global.dims(),
        }
    }
}

/// HOOI refinement settings for [`Compressor::refine`]: how many alternating
/// sweeps to run on top of the ST-HOSVD initialization, and when to stop
/// early. (The initialization itself — ranks, tolerance, mode order — comes
/// from the builder, so it cannot disagree with the rest of the plan.)
#[derive(Debug, Clone, PartialEq)]
pub struct Refine {
    /// Maximum number of outer HOOI iterations.
    pub max_iterations: usize,
    /// Stop when the decrease of `‖X‖² − ‖G‖²` between outer iterations
    /// falls below this fraction of `‖X‖²`.
    pub fit_tolerance: f64,
}

impl Refine {
    /// At most `n` HOOI sweeps with the default fit tolerance (`1e-10`, the
    /// same default as [`HooiOptions`]).
    pub fn sweeps(n: usize) -> Refine {
        Refine {
            max_iterations: n,
            fit_tolerance: 1e-10,
        }
    }

    /// Replaces the early-stopping fit tolerance.
    pub fn fit_tolerance(mut self, tol: f64) -> Refine {
        self.fit_tolerance = tol;
        self
    }
}

/// Which kernel pipeline a [`CompressionPlan`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// `tucker_core::try_st_hosvd_ctx` on a resident tensor.
    InMemory,
    /// `tucker_core::try_hooi_ctx` (ST-HOSVD init + HOOI sweeps).
    InMemoryRefined,
    /// `tucker_core::streaming::try_st_hosvd_streaming_ctx` over slabs.
    Streaming,
    /// `tucker_core::dist::try_dist_st_hosvd_ctx` on every rank of the grid,
    /// gathered to root.
    Distributed,
    /// `tucker_core::dist::try_dist_hooi_ctx` on every rank, gathered.
    DistributedRefined,
}

impl KernelPath {
    /// The name of the underlying entry point (for logs and reports).
    pub fn name(&self) -> &'static str {
        match self {
            KernelPath::InMemory => "st_hosvd",
            KernelPath::InMemoryRefined => "hooi",
            KernelPath::Streaming => "st_hosvd_streaming",
            KernelPath::Distributed => "dist_st_hosvd",
            KernelPath::DistributedRefined => "dist_hooi",
        }
    }
}

/// Communication accounting of a distributed run (absent on the sequential
/// and streaming paths).
#[derive(Debug, Clone, Copy)]
pub struct DistRunInfo {
    /// Number of simulated ranks.
    pub ranks: usize,
    /// Wall-clock seconds of the SPMD region.
    pub elapsed: f64,
    /// Total messages sent across all ranks.
    pub messages_sent: u64,
    /// Total words sent across all ranks.
    pub words_sent: u64,
}

/// What a compression run produced: the decomposition plus the full
/// diagnostics of whichever kernel ran.
#[derive(Debug, Clone)]
pub enum CompressedOutput {
    /// An ST-HOSVD result (in-memory, streaming, or gathered distributed).
    Sthosvd(SthosvdResult),
    /// A HOOI-refined result (in-memory or gathered distributed).
    Hooi(HooiResult),
}

/// The result of [`CompressionPlan::run`].
#[derive(Debug, Clone)]
pub struct Compressed {
    output: CompressedOutput,
    kernel: KernelPath,
    dist: Option<DistRunInfo>,
}

impl Compressed {
    /// The computed decomposition.
    pub fn tucker(&self) -> &TuckerTensor {
        match &self.output {
            CompressedOutput::Sthosvd(r) => &r.tucker,
            CompressedOutput::Hooi(r) => &r.tucker,
        }
    }

    /// Consumes the result, keeping only the decomposition.
    pub fn into_tucker(self) -> TuckerTensor {
        match self.output {
            CompressedOutput::Sthosvd(r) => r.tucker,
            CompressedOutput::Hooi(r) => r.tucker,
        }
    }

    /// The reduced dimension chosen in each mode.
    pub fn ranks(&self) -> &[usize] {
        match &self.output {
            CompressedOutput::Sthosvd(r) => &r.ranks,
            CompressedOutput::Hooi(r) => &r.ranks,
        }
    }

    /// Which kernel pipeline produced this result.
    pub fn kernel(&self) -> KernelPath {
        self.kernel
    }

    /// The full diagnostics of the kernel that ran.
    pub fn output(&self) -> &CompressedOutput {
        &self.output
    }

    /// Consumes the result, returning the kernel diagnostics.
    pub fn into_output(self) -> CompressedOutput {
        self.output
    }

    /// The ST-HOSVD diagnostics, when no refinement ran.
    pub fn sthosvd(&self) -> Option<&SthosvdResult> {
        match &self.output {
            CompressedOutput::Sthosvd(r) => Some(r),
            CompressedOutput::Hooi(_) => None,
        }
    }

    /// The HOOI diagnostics, when refinement ran.
    pub fn hooi(&self) -> Option<&HooiResult> {
        match &self.output {
            CompressedOutput::Sthosvd(_) => None,
            CompressedOutput::Hooi(r) => Some(r),
        }
    }

    /// Communication accounting, when the distributed path ran.
    pub fn dist_info(&self) -> Option<&DistRunInfo> {
        self.dist.as_ref()
    }
}

/// The result of [`CompressionPlan::write_to`]: the in-memory result plus
/// the encode report of the artifact on disk.
#[derive(Debug, Clone)]
pub struct Written {
    /// The compression result (as [`CompressionPlan::run`] would return).
    pub compressed: Compressed,
    /// Sizes and codec error of the written artifact.
    pub report: EncodeReport,
}

/// Builder for one compression run over any ingest path.
///
/// ```
/// use tucker_api::Compressor;
/// use tucker_tensor::DenseTensor;
///
/// let x = DenseTensor::from_fn(&[12, 10, 8], |idx| {
///     (0.3 * idx[0] as f64).sin() + 0.05 * (idx[1] * idx[2]) as f64
/// });
/// let result = Compressor::new(&x).tolerance(1e-3).run()?;
/// assert!(result.tucker().compression_ratio(x.dims()) > 1.0);
/// # Ok::<(), tucker_api::TuckerError>(())
/// ```
pub struct Compressor<'a> {
    source: SourceKind<'a>,
    rank: Option<RankSelection>,
    order: ModeOrder,
    refine: Option<Refine>,
    slab_width: usize,
    threads: Option<usize>,
    codec: Codec,
    declared_eps: Option<f64>,
    meta: TkrMetadata,
}

impl<'a> Compressor<'a> {
    fn with_source(source: SourceKind<'a>) -> Self {
        Compressor {
            source,
            rank: None,
            order: ModeOrder::Natural,
            refine: None,
            slab_width: 1,
            threads: None,
            codec: Codec::F64,
            declared_eps: None,
            meta: TkrMetadata::default(),
        }
    }

    /// Compresses a resident tensor (the in-memory pipeline).
    pub fn new(x: &'a DenseTensor) -> Self {
        Compressor::with_source(SourceKind::Dense(x))
    }

    /// Compresses an out-of-core slab source (the streaming pipeline; peak
    /// memory `O(slab + truncated tensor)`). A resident [`DenseTensor`] is
    /// its own slab source, so this also works for testing the streaming
    /// path against in-memory data.
    pub fn from_slabs(src: &'a dyn SlabSource) -> Self {
        Compressor::with_source(SourceKind::Slabs(src))
    }

    /// Compresses a global tensor block-distributed over `grid` on the
    /// simulated message-passing runtime: every rank runs the parallel
    /// kernels (Algs. 3–5) on its block and the result is gathered to root.
    pub fn distributed(global: &'a DenseTensor, grid: ProcGrid) -> Self {
        Compressor::with_source(SourceKind::Dist { global, grid })
    }

    /// Sets ε-driven rank selection (Alg. 1 line 5): in each mode, keep the
    /// smallest rank whose discarded eigenvalue tail stays within
    /// `ε²‖X‖²/N`. Overrides any earlier target.
    pub fn tolerance(mut self, eps: f64) -> Self {
        self.rank = Some(RankSelection::Tolerance(eps));
        self
    }

    /// Sets fixed per-mode target ranks. Overrides any earlier target.
    pub fn ranks(mut self, ranks: impl Into<Vec<usize>>) -> Self {
        self.rank = Some(RankSelection::Fixed(ranks.into()));
        self
    }

    /// Sets an arbitrary [`RankSelection`] (e.g. tolerance with per-mode
    /// caps). Overrides any earlier target.
    pub fn rank_selection(mut self, sel: RankSelection) -> Self {
        self.rank = Some(sel);
        self
    }

    /// Sets the mode-processing order (default: natural). Streaming sources
    /// require an order that processes the last mode last.
    pub fn order(mut self, order: ModeOrder) -> Self {
        self.order = order;
        self
    }

    /// Adds HOOI refinement sweeps on top of the ST-HOSVD initialization.
    /// Supported for resident and distributed sources; a streaming source is
    /// rejected at [`Compressor::plan`] time.
    pub fn refine(mut self, refine: Refine) -> Self {
        self.refine = Some(refine);
        self
    }

    /// Last-mode steps per slab for the streaming path (default 1 — the
    /// strictest memory profile). Ignored by the other ingest paths. The
    /// results are bit-identical for every width.
    pub fn slab_width(mut self, width: usize) -> Self {
        self.slab_width = width.max(1);
        self
    }

    /// Caps the parallelism budget: the plan runs on a view of the global
    /// pool whose scatters split into at most `n` chunks. A distributed plan
    /// splits the budget hybrid-style across its ranks (each rank scatters
    /// with `max(1, n / ranks)`), exactly like the default, which uses the
    /// whole global pool. Results are bit-identical for every setting.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Sets the value codec for [`CompressionPlan::write_to`]
    /// (default: lossless [`Codec::F64`]).
    pub fn codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Declares the relative decomposition error recorded in written
    /// artifact headers (feeding readers' `error_budget()`). Defaults to
    /// the [`tolerance`](Compressor::tolerance) when one was set, and to
    /// `0.0` for fixed-rank plans — fixed-rank truncation error is
    /// data-dependent, so callers who know it (e.g. from
    /// [`SthosvdResult::error_bound`]) should declare it here before
    /// shipping the artifact.
    pub fn declared_eps(mut self, eps: f64) -> Self {
        self.declared_eps = Some(eps);
        self
    }

    /// Attaches provenance metadata to written artifacts.
    pub fn meta(mut self, meta: TkrMetadata) -> Self {
        self.meta = meta;
        self
    }

    /// Validates the whole configuration against the source's shape and
    /// freezes it into an executable [`CompressionPlan`]. Every malformed
    /// input — empty or zero-extent shapes, ranks exceeding mode dims, bad
    /// tolerances, non-permutation orders, refinement on a streaming source,
    /// a grid that does not fit the tensor — is a typed [`TuckerError`]
    /// here; nothing panics later.
    pub fn plan(self) -> Result<CompressionPlan<'a>, TuckerError> {
        let rank = self.rank.ok_or(PlanError::NoTarget)?;
        let sth = SthosvdOptions {
            rank,
            order: self.order,
        };
        let dims = self.source.dims();
        if let Some(refine) = &self.refine {
            if !refine.fit_tolerance.is_finite() || refine.fit_tolerance < 0.0 {
                return Err(RankError::BadTolerance {
                    eps: refine.fit_tolerance,
                }
                .into());
            }
        }
        if let Some(eps) = self.declared_eps {
            if !eps.is_finite() || eps < 0.0 {
                return Err(RankError::BadTolerance { eps }.into());
            }
        }
        // Metadata destined for the artifact header is checked against the
        // shape now, so a bad label count cannot surface as an IO error
        // after the whole compression has already run.
        self.meta.validate(dims.len())?;
        let kernel = match &self.source {
            SourceKind::Dense(_) => {
                validate::validate_sthosvd_inputs(dims, &sth)?;
                if self.refine.is_some() {
                    KernelPath::InMemoryRefined
                } else {
                    KernelPath::InMemory
                }
            }
            SourceKind::Slabs(_) => {
                if self.refine.is_some() {
                    return Err(PlanError::RefineNeedsResident.into());
                }
                validate::validate_streaming_inputs(dims, &sth)?;
                KernelPath::Streaming
            }
            SourceKind::Dist { grid, .. } => {
                validate::validate_sthosvd_inputs(dims, &sth)?;
                validate::validate_grid(dims, grid.shape())?;
                if self.refine.is_some() {
                    KernelPath::DistributedRefined
                } else {
                    KernelPath::Distributed
                }
            }
        };
        let eps = self.declared_eps.unwrap_or_else(|| sth.rank.tolerance());
        Ok(CompressionPlan {
            source: self.source,
            sth,
            stream: StreamingOptions::with_slab_width(self.slab_width),
            refine: self.refine,
            threads: self.threads,
            store: StoreOptions::new(self.codec, eps).with_meta(self.meta),
            kernel,
        })
    }

    /// [`Compressor::plan`] followed by [`CompressionPlan::run`].
    pub fn run(self) -> Result<Compressed, TuckerError> {
        self.plan()?.run()
    }

    /// [`Compressor::plan`] followed by [`CompressionPlan::write_to`].
    pub fn write_to(self, path: impl AsRef<Path>) -> Result<Written, TuckerError> {
        self.plan()?.write_to(path)
    }
}

/// A validated, executable compression configuration. Produced by
/// [`Compressor::plan`]; every input check has already passed, so the only
/// failures left are environmental (IO).
pub struct CompressionPlan<'a> {
    source: SourceKind<'a>,
    sth: SthosvdOptions,
    stream: StreamingOptions,
    refine: Option<Refine>,
    threads: Option<usize>,
    store: StoreOptions,
    kernel: KernelPath,
}

impl CompressionPlan<'_> {
    /// Which kernel pipeline this plan dispatches to.
    pub fn kernel(&self) -> KernelPath {
        self.kernel
    }

    /// The resolved decomposition options (rank selection + mode order).
    pub fn options(&self) -> &SthosvdOptions {
        &self.sth
    }

    /// The store options (codec, declared ε, metadata) used by
    /// [`CompressionPlan::write_to`].
    pub fn store_options(&self) -> &StoreOptions {
        &self.store
    }

    /// The sequential-or-pooled execution context this plan computes on.
    fn exec(&self) -> ExecContext {
        let global = ExecContext::global();
        match self.threads {
            Some(n) => global.with_budget(n),
            None => global.clone(),
        }
    }

    /// Runs the planned pipeline and returns the decomposition with full
    /// kernel diagnostics. Dispatches to the exact existing kernel path (see
    /// the module docs) — the result is bit-identical to direct calls.
    pub fn run(&self) -> Result<Compressed, TuckerError> {
        let ctx = self.exec();
        match &self.source {
            SourceKind::Dense(x) => match &self.refine {
                None => Ok(Compressed {
                    output: CompressedOutput::Sthosvd(try_st_hosvd_ctx(x, &self.sth, &ctx)?),
                    kernel: self.kernel,
                    dist: None,
                }),
                Some(refine) => {
                    let opts = HooiOptions {
                        init: self.sth.clone(),
                        max_iterations: refine.max_iterations,
                        fit_tolerance: refine.fit_tolerance,
                    };
                    Ok(Compressed {
                        output: CompressedOutput::Hooi(try_hooi_ctx(x, &opts, &ctx)?),
                        kernel: self.kernel,
                        dist: None,
                    })
                }
            },
            SourceKind::Slabs(src) => Ok(Compressed {
                output: CompressedOutput::Sthosvd(try_st_hosvd_streaming_ctx(
                    src,
                    &self.sth,
                    &self.stream,
                    &ctx,
                )?),
                kernel: self.kernel,
                dist: None,
            }),
            SourceKind::Dist { global, grid } => self.run_distributed(global, grid),
        }
    }

    /// The distributed dispatch: an SPMD region over the grid, each rank
    /// compressing its block with the parallel kernels (hybrid
    /// ranks × threads on the shared pool), the decomposition gathered to
    /// root exactly as the direct `dist_st_hosvd` + `gather_to_root` calls
    /// would.
    fn run_distributed(
        &self,
        global: &DenseTensor,
        grid: &ProcGrid,
    ) -> Result<Compressed, TuckerError> {
        let nranks = grid.size();
        let refine = &self.refine;
        let sth = &self.sth;
        let threads = self.threads;
        let handle = spmd_with_grid_handle(
            grid.clone(),
            move |comm| -> Result<Option<CompressedOutput>, tucker_core::validate::CoreError> {
                let ctx = {
                    let global_ctx = ExecContext::global();
                    let budget = threads.unwrap_or(global_ctx.threads());
                    global_ctx.with_budget((budget / comm.size().max(1)).max(1))
                };
                let dx = DistTensor::from_global(&comm, global);
                match refine {
                    None => {
                        let r = try_dist_st_hosvd_ctx(&comm, &dx, sth, &ctx)?;
                        let gathered = r.tucker.gather_to_root(&comm);
                        Ok(gathered.map(|tucker| {
                            CompressedOutput::Sthosvd(SthosvdResult {
                                tucker,
                                ranks: r.ranks,
                                mode_eigenvalues: r.mode_eigenvalues,
                                discarded_energy: r.discarded_energy,
                                norm_x_sq: r.norm_x_sq,
                                processed_order: r.processed_order,
                            })
                        }))
                    }
                    Some(refine) => {
                        let opts = HooiOptions {
                            init: sth.clone(),
                            max_iterations: refine.max_iterations,
                            fit_tolerance: refine.fit_tolerance,
                        };
                        let r = try_dist_hooi_ctx(&comm, &dx, &opts, &ctx)?;
                        let gathered = r.tucker.gather_to_root(&comm);
                        Ok(gathered.map(|tucker| {
                            CompressedOutput::Hooi(HooiResult {
                                tucker,
                                ranks: r.ranks,
                                fit_history: r.fit_history,
                                iterations: r.iterations,
                            })
                        }))
                    }
                }
            },
        );
        let stats = handle.total_stats();
        let mut root = None;
        for per_rank in handle.results {
            let gathered: Option<CompressedOutput> = per_rank.map_err(TuckerError::from)?;
            if let Some(output) = gathered {
                root = Some(output);
            }
        }
        let output = root.ok_or_else(|| {
            TuckerError::Io(std::io::Error::other(
                "distributed gather produced no root result",
            ))
        })?;
        Ok(Compressed {
            output,
            kernel: self.kernel,
            dist: Some(DistRunInfo {
                ranks: nranks,
                elapsed: handle.elapsed,
                messages_sent: stats.messages_sent,
                words_sent: stats.words_sent,
            }),
        })
    }

    /// Runs the planned pipeline and writes the decomposition to `path` as a
    /// `.tkr` artifact with the configured codec and metadata. The bytes are
    /// identical to running the corresponding direct pipeline and calling
    /// `write_tucker` (or `compress_streaming` / `gather_and_write`, which
    /// serialize through the same writer) — for every thread count.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<Written, TuckerError> {
        let compressed = self.run()?;
        let report = try_write_tucker_ctx(path, compressed.tucker(), &self.store, &self.exec())?;
        Ok(Written { compressed, report })
    }
}
