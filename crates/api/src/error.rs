//! [`TuckerError`] — the one error type of the public facade.
//!
//! Every fallible operation reachable through `tucker-api` funnels into this
//! hierarchy, with `From` conversions from every constituent crate's error
//! types, so callers can `?` their way through a whole compress–store–query
//! pipeline with a single error type:
//!
//! | variant | source | typical cause |
//! |---|---|---|
//! | [`TuckerError::Shape`]  | `tucker_core::validate::ShapeError`  | empty/zero-extent shape, bad mode order, bad grid |
//! | [`TuckerError::Rank`]   | `tucker_core::validate::RankError`   | ranks exceeding dims, bad tolerance |
//! | [`TuckerError::Codec`]  | `tucker_store::CodecError`           | unknown codec id |
//! | [`TuckerError::Format`] | `tucker_store::FormatError`          | container-contract violations, corrupt artifacts |
//! | [`TuckerError::Query`]  | `tucker_store::QueryError`           | out-of-range reconstruction requests |
//! | [`TuckerError::Slab`]   | `tucker_tensor::SlabRangeError`      | last-mode slab windows outside the tensor |
//! | [`TuckerError::Plan`]   | this crate                           | an unsatisfiable [`Compressor`](crate::Compressor) or [`Open`](crate::Open) configuration (no target, refine-on-streaming, zero cache) |
//! | [`TuckerError::Protocol`] | this crate                         | malformed service frames (either side of the `tucker-serve` wire) |
//! | [`TuckerError::Busy`]   | `tucker-serve`                       | a service rejecting a request at its admission cap |
//! | [`TuckerError::Io`]     | `std::io::Error`                     | filesystem failures |

use std::fmt;
use std::io;
use tucker_core::validate::{CoreError, RankError, ShapeError};
use tucker_store::{CodecError, FormatError, QueryError, StoreError};
use tucker_tensor::SlabRangeError;

/// Why a [`Compressor`](crate::Compressor) configuration cannot be planned,
/// even though each individual setting is well-formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Neither [`tolerance`](crate::Compressor::tolerance) nor
    /// [`ranks`](crate::Compressor::ranks) was set — the plan has no
    /// compression target.
    NoTarget,
    /// [`refine`](crate::Compressor::refine) on a streaming source: HOOI
    /// sweeps revisit the full tensor once per mode and iteration, which
    /// defeats the out-of-core contract. Materialize the source (or skip
    /// refinement).
    RefineNeedsResident,
    /// [`cache_chunks(0)`](crate::Open::cache_chunks): a lazy reader needs
    /// at least one resident chunk, and `0` has historically been a silent
    /// clamp-to-1, never "unbounded" — the facade rejects it instead of
    /// guessing.
    ZeroCacheChunks,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoTarget => write!(
                f,
                "no compression target: set .tolerance(eps) or .ranks(..) before planning"
            ),
            PlanError::RefineNeedsResident => write!(
                f,
                "HOOI refinement needs a resident tensor; streaming sources cannot be refined"
            ),
            PlanError::ZeroCacheChunks => write!(
                f,
                "cache_chunks(0): a lazy reader needs at least one resident chunk"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A violation of the `tucker-serve` wire protocol, on either side of the
/// connection: the daemon answering a malformed request, or the client
/// refusing a malformed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A frame length prefix of zero or beyond the side's frame cap.
    FrameLength {
        /// The declared payload length.
        len: u64,
        /// The receiving side's cap.
        max: u64,
    },
    /// The connection ended mid-frame (or before an expected response).
    Truncated,
    /// A frame starting with an opcode this side does not know.
    UnknownOpcode(u8),
    /// A frame whose payload does not parse under its opcode.
    Malformed(String),
    /// The remote side reported a protocol violation of ours.
    Remote {
        /// The remote side's error code.
        code: u8,
        /// The remote side's diagnostic message.
        message: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::FrameLength { len, max } => {
                write!(f, "frame length {len} outside the accepted range 1..={max}")
            }
            ProtocolError::Truncated => write!(f, "connection closed mid-frame"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            ProtocolError::Remote { code, message } => {
                write!(f, "remote reported protocol error (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The workspace-wide error hierarchy of the public facade.
#[derive(Debug)]
pub enum TuckerError {
    /// A structurally invalid tensor shape, mode ordering, or grid.
    Shape(ShapeError),
    /// An invalid rank selection or tolerance.
    Rank(RankError),
    /// An invalid or unsupported value encoding.
    Codec(CodecError),
    /// A `.tkr` container-contract violation or corrupt artifact.
    Format(FormatError),
    /// An out-of-range or malformed reconstruction query.
    Query(QueryError),
    /// A last-mode slab window outside the tensor (from the checked slab
    /// accessors of `tucker-tensor`).
    Slab(SlabRangeError),
    /// An unsatisfiable [`Compressor`](crate::Compressor) or
    /// [`Open`](crate::Open) configuration.
    Plan(PlanError),
    /// A malformed frame on the `tucker-serve` wire (either side).
    Protocol(ProtocolError),
    /// A `tucker-serve` daemon rejecting a request at its admission cap —
    /// transient backpressure; the request is safe to retry.
    Busy {
        /// Requests in flight when the admission cap rejected this one.
        in_flight: usize,
    },
    /// An IO failure.
    Io(io::Error),
}

impl fmt::Display for TuckerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuckerError::Shape(e) => write!(f, "shape error: {e}"),
            TuckerError::Rank(e) => write!(f, "rank error: {e}"),
            TuckerError::Codec(e) => write!(f, "codec error: {e}"),
            TuckerError::Format(e) => write!(f, "format error: {e}"),
            TuckerError::Query(e) => write!(f, "query error: {e}"),
            TuckerError::Slab(e) => write!(f, "slab error: {e}"),
            TuckerError::Plan(e) => write!(f, "plan error: {e}"),
            TuckerError::Protocol(e) => write!(f, "protocol error: {e}"),
            TuckerError::Busy { in_flight } => {
                write!(
                    f,
                    "service busy ({in_flight} requests in flight); retry later"
                )
            }
            TuckerError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TuckerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuckerError::Shape(e) => Some(e),
            TuckerError::Rank(e) => Some(e),
            TuckerError::Codec(e) => Some(e),
            TuckerError::Format(e) => Some(e),
            TuckerError::Query(e) => Some(e),
            TuckerError::Slab(e) => Some(e),
            TuckerError::Plan(e) => Some(e),
            TuckerError::Protocol(e) => Some(e),
            TuckerError::Busy { .. } => None,
            TuckerError::Io(e) => Some(e),
        }
    }
}

impl From<ShapeError> for TuckerError {
    fn from(e: ShapeError) -> Self {
        TuckerError::Shape(e)
    }
}

impl From<RankError> for TuckerError {
    fn from(e: RankError) -> Self {
        TuckerError::Rank(e)
    }
}

impl From<CoreError> for TuckerError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Shape(s) => TuckerError::Shape(s),
            CoreError::Rank(r) => TuckerError::Rank(r),
        }
    }
}

impl From<CodecError> for TuckerError {
    fn from(e: CodecError) -> Self {
        TuckerError::Codec(e)
    }
}

impl From<FormatError> for TuckerError {
    fn from(e: FormatError) -> Self {
        TuckerError::Format(e)
    }
}

impl From<StoreError> for TuckerError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Format(f) => TuckerError::Format(f),
            StoreError::Codec(c) => TuckerError::Codec(c),
            StoreError::Io(io) => TuckerError::Io(io),
        }
    }
}

impl From<QueryError> for TuckerError {
    fn from(e: QueryError) -> Self {
        TuckerError::Query(e)
    }
}

impl From<PlanError> for TuckerError {
    fn from(e: PlanError) -> Self {
        TuckerError::Plan(e)
    }
}

impl From<ProtocolError> for TuckerError {
    fn from(e: ProtocolError) -> Self {
        TuckerError::Protocol(e)
    }
}

impl From<io::Error> for TuckerError {
    fn from(e: io::Error) -> Self {
        TuckerError::Io(e)
    }
}

impl From<SlabRangeError> for TuckerError {
    fn from(e: SlabRangeError) -> Self {
        TuckerError::Slab(e)
    }
}

/// Maps an artifact-open `io::Error` into the facade hierarchy:
/// `InvalidData` (the readers' verdict for corrupt or truncated artifacts)
/// becomes a typed [`FormatError::Invalid`]; everything else stays IO.
pub(crate) fn open_error(e: io::Error) -> TuckerError {
    if e.kind() == io::ErrorKind::InvalidData {
        TuckerError::Format(FormatError::Invalid(e.to_string()))
    } else {
        TuckerError::Io(e)
    }
}
