//! [`TensorQuery`] — one query interface over both artifact readers.
//!
//! `tucker-store` grew two reader types with identical query semantics but
//! unrelated APIs: the eager [`TkrArtifact`] (core decoded at open) and the
//! lazy [`TkrReader`] (chunk directory at open, bounded LRU cache, chunks
//! decoded on demand). Their answers are byte-identical by contract — so
//! benches, examples, and service code should not care which one they hold.
//! [`TensorQuery`] is that seam: both readers implement it, the [`Reader`]
//! enum erases the choice, and [`Open`] is the builder that picks a backend
//! at open time:
//!
//! ```no_run
//! use tucker_api::{Open, TensorQuery};
//!
//! let reader = Open::lazy().cache_chunks(8).open("field.tkr")?;
//! let window = reader.reconstruct_range(&[(0, 4), (2, 3), (10, 2)])?;
//! # let _ = window;
//! # Ok::<(), tucker_api::TuckerError>(())
//! ```

use crate::error::{open_error, PlanError, TuckerError};
use std::path::Path;
use tucker_core::TuckerTensor;
use tucker_exec::ExecContext;
use tucker_store::{
    QueryError, SharedChunkCache, TkrArtifact, TkrHeader, TkrReader, DEFAULT_CACHE_CHUNKS,
};
use tucker_tensor::{DenseTensor, SubtensorSpec};

/// A uniform, backend-agnostic view of a compressed-tensor artifact.
///
/// Every reconstruction method validates its request against the artifact's
/// shape and returns a typed [`QueryError`] instead of panicking. The
/// window/subtensor/slice/full reconstructions and per-point
/// [`element`](TensorQuery::element) answer **byte-identically** on both
/// backends; the batched [`elements`](TensorQuery::elements) contract is
/// per-backend — the lazy walk is bit-identical to the per-point walk,
/// while the eager batch shares contraction work across points and is
/// round-off-equivalent (the same sum in a different association order).
/// Both pinned by `tests/api_equivalence.rs`.
pub trait TensorQuery {
    /// The parsed header (shape, ranks, ε, codec, quantization bound,
    /// metadata).
    fn header(&self) -> &TkrHeader;

    /// Total size of the artifact on disk in bytes.
    fn file_bytes(&self) -> u64;

    /// The original tensor dimensions `I_1, …, I_N`.
    fn dims(&self) -> &[usize] {
        &self.header().dims
    }

    /// The stored core dimensions `R_1, …, R_N`.
    fn ranks(&self) -> &[usize] {
        &self.header().ranks
    }

    /// The total relative-error budget: the decomposition's ε plus the
    /// codec's quantization bound.
    fn error_budget(&self) -> f64 {
        self.header().error_budget()
    }

    /// Physical compression ratio versus the original field as raw `f64`.
    fn compression_ratio(&self) -> f64 {
        let original: f64 = self.dims().iter().map(|&d| d as f64).product();
        8.0 * original / self.file_bytes() as f64
    }

    /// Reconstructs the full tensor.
    fn reconstruct(&self) -> Result<DenseTensor, QueryError>;

    /// Reconstructs the sub-tensor covering one `(start, len)` window per
    /// mode.
    fn reconstruct_range(&self, ranges: &[(usize, usize)]) -> Result<DenseTensor, QueryError>;

    /// Reconstructs an arbitrary per-mode index selection.
    fn reconstruct_subtensor(&self, spec: &SubtensorSpec) -> Result<DenseTensor, QueryError>;

    /// Reconstructs the hyperslice `index` of `mode` (the result keeps the
    /// mode with extent 1).
    fn reconstruct_slice(&self, mode: usize, index: usize) -> Result<DenseTensor, QueryError>;

    /// Reconstructs a single element.
    fn element(&self, idx: &[usize]) -> Result<f64, QueryError>;

    /// Reconstructs a batch of elements (shared contraction work; see the
    /// readers' docs).
    fn elements(&self, points: &[&[usize]]) -> Result<Vec<f64>, QueryError>;
}

impl TensorQuery for TkrArtifact {
    fn header(&self) -> &TkrHeader {
        TkrArtifact::header(self)
    }

    fn file_bytes(&self) -> u64 {
        TkrArtifact::file_bytes(self)
    }

    fn reconstruct(&self) -> Result<DenseTensor, QueryError> {
        Ok(TkrArtifact::reconstruct(self))
    }

    fn reconstruct_range(&self, ranges: &[(usize, usize)]) -> Result<DenseTensor, QueryError> {
        TkrArtifact::reconstruct_range(self, ranges)
    }

    fn reconstruct_subtensor(&self, spec: &SubtensorSpec) -> Result<DenseTensor, QueryError> {
        TkrArtifact::reconstruct_subtensor(self, spec)
    }

    fn reconstruct_slice(&self, mode: usize, index: usize) -> Result<DenseTensor, QueryError> {
        TkrArtifact::reconstruct_slice(self, mode, index)
    }

    fn element(&self, idx: &[usize]) -> Result<f64, QueryError> {
        TkrArtifact::element(self, idx)
    }

    fn elements(&self, points: &[&[usize]]) -> Result<Vec<f64>, QueryError> {
        TkrArtifact::elements(self, points)
    }
}

impl TensorQuery for TkrReader {
    fn header(&self) -> &TkrHeader {
        TkrReader::header(self)
    }

    fn file_bytes(&self) -> u64 {
        TkrReader::file_bytes(self)
    }

    fn reconstruct(&self) -> Result<DenseTensor, QueryError> {
        TkrReader::reconstruct(self)
    }

    fn reconstruct_range(&self, ranges: &[(usize, usize)]) -> Result<DenseTensor, QueryError> {
        TkrReader::reconstruct_range(self, ranges)
    }

    fn reconstruct_subtensor(&self, spec: &SubtensorSpec) -> Result<DenseTensor, QueryError> {
        TkrReader::reconstruct_subtensor(self, spec)
    }

    fn reconstruct_slice(&self, mode: usize, index: usize) -> Result<DenseTensor, QueryError> {
        TkrReader::reconstruct_slice(self, mode, index)
    }

    fn element(&self, idx: &[usize]) -> Result<f64, QueryError> {
        TkrReader::element(self, idx)
    }

    fn elements(&self, points: &[&[usize]]) -> Result<Vec<f64>, QueryError> {
        TkrReader::elements(self, points)
    }
}

/// An open artifact with the backend chosen at [`Open`] time. Implements
/// [`TensorQuery`] by delegation, so code generic over the trait works with
/// either backend — and so does code holding the enum directly.
pub enum Reader {
    /// The eager backend: whole core decoded at open.
    Eager(TkrArtifact),
    /// The lazy backend: chunks decoded on demand behind a bounded cache.
    Lazy(TkrReader),
}

impl Reader {
    /// Consumes the reader and returns the full decoded decomposition
    /// (decoding everything on the lazy path).
    pub fn into_tucker(self) -> Result<TuckerTensor, TuckerError> {
        match self {
            Reader::Eager(a) => Ok(a.into_tucker()),
            Reader::Lazy(r) => r.into_tucker().map_err(TuckerError::from),
        }
    }

    /// The eager artifact, when that backend was chosen.
    pub fn as_eager(&self) -> Option<&TkrArtifact> {
        match self {
            Reader::Eager(a) => Some(a),
            Reader::Lazy(_) => None,
        }
    }

    /// The lazy reader, when that backend was chosen.
    pub fn as_lazy(&self) -> Option<&TkrReader> {
        match self {
            Reader::Eager(_) => None,
            Reader::Lazy(r) => Some(r),
        }
    }
}

impl TensorQuery for Reader {
    fn header(&self) -> &TkrHeader {
        match self {
            Reader::Eager(a) => TensorQuery::header(a),
            Reader::Lazy(r) => TensorQuery::header(r),
        }
    }

    fn file_bytes(&self) -> u64 {
        match self {
            Reader::Eager(a) => TensorQuery::file_bytes(a),
            Reader::Lazy(r) => TensorQuery::file_bytes(r),
        }
    }

    fn reconstruct(&self) -> Result<DenseTensor, QueryError> {
        match self {
            Reader::Eager(a) => TensorQuery::reconstruct(a),
            Reader::Lazy(r) => TensorQuery::reconstruct(r),
        }
    }

    fn reconstruct_range(&self, ranges: &[(usize, usize)]) -> Result<DenseTensor, QueryError> {
        match self {
            Reader::Eager(a) => TensorQuery::reconstruct_range(a, ranges),
            Reader::Lazy(r) => TensorQuery::reconstruct_range(r, ranges),
        }
    }

    fn reconstruct_subtensor(&self, spec: &SubtensorSpec) -> Result<DenseTensor, QueryError> {
        match self {
            Reader::Eager(a) => TensorQuery::reconstruct_subtensor(a, spec),
            Reader::Lazy(r) => TensorQuery::reconstruct_subtensor(r, spec),
        }
    }

    fn reconstruct_slice(&self, mode: usize, index: usize) -> Result<DenseTensor, QueryError> {
        match self {
            Reader::Eager(a) => TensorQuery::reconstruct_slice(a, mode, index),
            Reader::Lazy(r) => TensorQuery::reconstruct_slice(r, mode, index),
        }
    }

    fn element(&self, idx: &[usize]) -> Result<f64, QueryError> {
        match self {
            Reader::Eager(a) => TensorQuery::element(a, idx),
            Reader::Lazy(r) => TensorQuery::element(r, idx),
        }
    }

    fn elements(&self, points: &[&[usize]]) -> Result<Vec<f64>, QueryError> {
        match self {
            Reader::Eager(a) => TensorQuery::elements(a, points),
            Reader::Lazy(r) => TensorQuery::elements(r, points),
        }
    }
}

/// How the artifact should be opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpenMode {
    Eager,
    Lazy,
}

/// Builder choosing the reader backend for an artifact.
///
/// [`Open::eager`] decodes the whole core at open — lowest per-query
/// latency, resident memory `O(core)`. [`Open::lazy`] scans the framing
/// only and decodes core chunks on demand behind a bounded LRU cache —
/// resident memory `O(cache)`, right choice for artifacts larger than the
/// working set. Both yield byte-identical answers.
#[derive(Debug, Clone)]
pub struct Open {
    mode: OpenMode,
    cache_chunks: usize,
    threads: Option<usize>,
    shared: Option<(SharedChunkCache, String)>,
}

impl Open {
    /// Open eagerly: the whole core is decoded (in parallel) at open time.
    pub fn eager() -> Open {
        Open {
            mode: OpenMode::Eager,
            cache_chunks: DEFAULT_CACHE_CHUNKS,
            threads: None,
            shared: None,
        }
    }

    /// Open lazily: the framing is scanned and validated at open time, core
    /// chunks are decoded on first touch and kept in a bounded LRU cache.
    pub fn lazy() -> Open {
        Open {
            mode: OpenMode::Lazy,
            cache_chunks: DEFAULT_CACHE_CHUNKS,
            threads: None,
            shared: None,
        }
    }

    /// Cache capacity in chunks for the lazy backend (ignored by the eager
    /// backend, which keeps everything, and by
    /// [`shared_cache`](Open::shared_cache), whose pool carries its own
    /// budget).
    ///
    /// `0` is rejected with a typed [`PlanError::ZeroCacheChunks`] at
    /// [`open`](Open::open) — a lazy reader needs at least one resident
    /// chunk, and the historical "0 silently clamps to 1" sentinel is gone
    /// from this surface.
    pub fn cache_chunks(mut self, k: usize) -> Open {
        self.cache_chunks = k;
        self
    }

    /// Registers the reader in a [`SharedChunkCache`] under `key` instead of
    /// giving it a private cache: readers sharing one cache share its global
    /// residency budget, and readers under the same key share decoded chunks
    /// and aggregate their accounting. Implies the lazy backend (the eager
    /// one has no chunk cache). All sessions of a key must name the same
    /// artifact bytes.
    pub fn shared_cache(mut self, cache: &SharedChunkCache, key: &str) -> Open {
        self.mode = OpenMode::Lazy;
        self.shared = Some((cache.clone(), key.to_string()));
        self
    }

    /// Caps the parallelism budget of open-time (eager) and on-demand
    /// (lazy) chunk decoding. Default: the whole global pool.
    pub fn threads(mut self, n: usize) -> Open {
        self.threads = Some(n);
        self
    }

    /// Opens the artifact at `path` with the chosen backend. Corrupt or
    /// truncated artifacts are a typed
    /// [`FormatError`](tucker_store::FormatError); filesystem failures stay
    /// [`TuckerError::Io`]; a [`cache_chunks(0)`](Open::cache_chunks)
    /// configuration is a typed [`PlanError::ZeroCacheChunks`] on **both**
    /// backends (the builder validates uniformly, so switching backends
    /// cannot change which configurations are accepted).
    pub fn open(&self, path: impl AsRef<Path>) -> Result<Reader, TuckerError> {
        if self.cache_chunks == 0 {
            return Err(TuckerError::Plan(PlanError::ZeroCacheChunks));
        }
        let global = ExecContext::global();
        let ctx = match self.threads {
            Some(n) => global.with_budget(n),
            None => global.clone(),
        };
        match self.mode {
            OpenMode::Eager => TkrArtifact::open_ctx(path, &ctx)
                .map(Reader::Eager)
                .map_err(open_error),
            OpenMode::Lazy => match &self.shared {
                Some((cache, key)) => TkrReader::open_shared(path, key, cache, &ctx)
                    .map(Reader::Lazy)
                    .map_err(open_error),
                None => TkrReader::open_with(path, self.cache_chunks, &ctx)
                    .map(Reader::Lazy)
                    .map_err(open_error),
            },
        }
    }
}
