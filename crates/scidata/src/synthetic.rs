//! Random Tucker tensors with controlled structure.
//!
//! Two families are provided:
//!
//! * [`random_low_rank`] / [`NoisyLowRank`] — an exactly low-multilinear-rank
//!   tensor (random core times random orthonormal factors) plus optional white
//!   noise. Used throughout the test suites and in the weak/strong scaling
//!   experiments (the paper's scaling runs also use synthetic data with a known
//!   core size, Sec. VIII-C/D/E).
//! * [`random_tucker_with_spectra`] — a tensor whose mode-wise singular values
//!   follow prescribed [`SpectralDecay`] profiles, used to emulate datasets of
//!   different compressibility.

use crate::spectra::SpectralDecay;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tucker_linalg::qr::householder_qr;
use tucker_linalg::Matrix;
use tucker_tensor::{ttm_chain, DenseTensor, TtmTranspose};

/// Configuration for an exactly-low-rank tensor plus noise.
#[derive(Debug, Clone)]
pub struct NoisyLowRank {
    /// Global tensor dimensions.
    pub dims: Vec<usize>,
    /// Multilinear rank of the noise-free part.
    pub ranks: Vec<usize>,
    /// Relative Frobenius norm of the additive white noise (0 disables noise).
    pub noise_level: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl NoisyLowRank {
    /// Generates the tensor.
    pub fn generate(&self) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = low_rank_from_rng(&mut rng, &self.dims, &self.ranks);
        if self.noise_level > 0.0 {
            let noise = DenseTensor::from_fn(&self.dims, |_| rng.gen_range(-1.0..1.0));
            let scale = self.noise_level * x.norm() / noise.norm().max(1e-300);
            for (xi, ni) in x.as_mut_slice().iter_mut().zip(noise.as_slice()) {
                *xi += scale * ni;
            }
        }
        x
    }
}

/// Generates an exactly low-multilinear-rank tensor from a seed.
pub fn random_low_rank(seed: u64, dims: &[usize], ranks: &[usize]) -> DenseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    low_rank_from_rng(&mut rng, dims, ranks)
}

fn low_rank_from_rng(rng: &mut StdRng, dims: &[usize], ranks: &[usize]) -> DenseTensor {
    assert_eq!(dims.len(), ranks.len());
    for (&d, &r) in dims.iter().zip(ranks.iter()) {
        assert!(r >= 1 && r <= d, "rank must satisfy 1 <= r <= dim");
    }
    let core = DenseTensor::from_fn(ranks, |_| rng.gen_range(-1.0..1.0));
    let factors: Vec<Matrix> = dims
        .iter()
        .zip(ranks.iter())
        .map(|(&d, &r)| random_orthonormal(rng, d, r))
        .collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    ttm_chain(&core, &refs, TtmTranspose::NoTranspose)
}

/// A random `rows × cols` matrix with orthonormal columns (thin Q of a QR).
pub fn random_orthonormal(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    assert!(cols <= rows, "random_orthonormal: need cols <= rows");
    let m = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0));
    householder_qr(&m).q
}

/// Generates a tensor whose mode-n unfolding has (approximately) the singular
/// value profile `spectra[n]`.
///
/// Construction: full orthonormal factors `Q_n` (size `I_n × I_n`) and a core
/// whose entry at multi-index `(i_1, …, i_N)` is a standard normal draw scaled
/// by `∏_n σ_n(i_n)`. The mode-n Gram matrix of the result then has expected
/// eigenvalues proportional to `σ_n(i)²` (up to the cross-mode constant), so
/// the relative decay per mode — which is what determines compressibility — is
/// exactly the prescribed profile.
pub fn random_tucker_with_spectra(
    seed: u64,
    dims: &[usize],
    spectra: &[SpectralDecay],
) -> DenseTensor {
    assert_eq!(dims.len(), spectra.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let sigmas: Vec<Vec<f64>> = dims
        .iter()
        .zip(spectra.iter())
        .map(|(&d, s)| s.generate(d))
        .collect();
    // Core with per-index scaling.
    let core = DenseTensor::from_fn(dims, |idx| {
        let scale: f64 = idx.iter().enumerate().map(|(n, &i)| sigmas[n][i]).product();
        // Box-Muller-free normal-ish draw: sum of uniforms is close enough and cheap.
        let g: f64 = (0..4).map(|_| rng.gen_range(-0.5..0.5)).sum::<f64>();
        scale * g
    });
    let factors: Vec<Matrix> = dims
        .iter()
        .map(|&d| random_orthonormal(&mut rng, d, d))
        .collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    ttm_chain(&core, &refs, TtmTranspose::NoTranspose)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tucker_linalg::eig::sym_eig_desc;
    use tucker_tensor::gram;

    #[test]
    fn low_rank_tensor_has_exact_rank() {
        let x = random_low_rank(7, &[12, 10, 8], &[3, 2, 4]);
        for (n, &expected) in [3usize, 2, 4].iter().enumerate() {
            let eig = sym_eig_desc(&gram(&x, n));
            let max = eig.values[0];
            let numerical_rank = eig.values.iter().filter(|&&v| v > 1e-10 * max).count();
            assert_eq!(numerical_rank, expected, "mode {n}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_low_rank(42, &[6, 5, 4], &[2, 2, 2]);
        let b = random_low_rank(42, &[6, 5, 4], &[2, 2, 2]);
        let c = random_low_rank(43, &[6, 5, 4], &[2, 2, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_level_controls_residual() {
        let clean = NoisyLowRank {
            dims: vec![10, 10, 10],
            ranks: vec![2, 2, 2],
            noise_level: 0.0,
            seed: 11,
        }
        .generate();
        let noisy = NoisyLowRank {
            dims: vec![10, 10, 10],
            ranks: vec![2, 2, 2],
            noise_level: 0.1,
            seed: 11,
        }
        .generate();
        let rel = clean.sub(&noisy).norm() / clean.norm();
        assert!((rel - 0.1).abs() < 0.02, "noise level off: {rel}");
    }

    #[test]
    fn orthonormal_factory_produces_orthonormal_columns() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = random_orthonormal(&mut rng, 20, 7);
        assert!(q.has_orthonormal_columns(1e-10));
    }

    #[test]
    fn spectra_control_mode_wise_decay() {
        // Mode 0 decays fast, mode 1 decays slowly: the Gram eigenvalue decay
        // must reflect that ordering.
        let dims = [20usize, 20, 6];
        let spectra = [
            SpectralDecay::Exponential { rate: 1.0 },
            SpectralDecay::Power { exponent: 0.25 },
            SpectralDecay::Exponential { rate: 0.1 },
        ];
        let x = random_tucker_with_spectra(5, &dims, &spectra);
        let decay_at = |mode: usize, k: usize| -> f64 {
            let eig = sym_eig_desc(&gram(&x, mode));
            eig.values[k].max(1e-300) / eig.values[0]
        };
        // After 10 indices, the fast mode has decayed by orders of magnitude
        // more than the slow mode.
        let fast = decay_at(0, 10);
        let slow = decay_at(1, 10);
        assert!(
            fast < slow * 1e-3,
            "expected mode 0 ({fast:e}) to decay much faster than mode 1 ({slow:e})"
        );
    }

    #[test]
    #[should_panic]
    fn rank_larger_than_dim_panics() {
        random_low_rank(1, &[4, 4], &[5, 2]);
    }
}
