//! Prescribed singular-value decay profiles.
//!
//! The compressibility of a tensor in mode `n` is determined by how quickly the
//! singular values of its mode-n unfolding decay (Sec. VII-B, Fig. 6). The
//! generators in this crate let each mode's decay be dialed in explicitly, so a
//! surrogate dataset can be made to match the qualitative behaviour of the
//! paper's datasets (e.g. SP's steep spatial decay vs TJLR's flat one).

use serde::{Deserialize, Serialize};

/// A parametric singular-value decay profile for one tensor mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpectralDecay {
    /// `σ_i = exp(−rate · i)`: fast, smooth decay (highly compressible mode).
    Exponential {
        /// Decay rate per index.
        rate: f64,
    },
    /// `σ_i = (i + 1)^(−exponent)`: slow algebraic decay (poorly compressible).
    Power {
        /// Decay exponent.
        exponent: f64,
    },
    /// `σ_i = 1` for `i < rank`, then `σ_i = floor`: an exactly low-rank mode
    /// plus a noise floor.
    Step {
        /// Number of leading singular values equal to one.
        rank: usize,
        /// Magnitude of the trailing singular values.
        floor: f64,
    },
    /// `σ_i = max(exp(−rate · i), floor)`: exponential decay that bottoms out
    /// at a noise floor — the shape observed for real simulation data.
    ExponentialWithFloor {
        /// Decay rate per index.
        rate: f64,
        /// Noise floor.
        floor: f64,
    },
}

impl SpectralDecay {
    /// Generates `n` singular values following the profile, in descending order.
    pub fn generate(&self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| match *self {
                SpectralDecay::Exponential { rate } => (-rate * i as f64).exp(),
                SpectralDecay::Power { exponent } => ((i + 1) as f64).powf(-exponent),
                SpectralDecay::Step { rank, floor } => {
                    if i < rank {
                        1.0
                    } else {
                        floor
                    }
                }
                SpectralDecay::ExponentialWithFloor { rate, floor } => {
                    (-rate * i as f64).exp().max(floor)
                }
            })
            .collect()
    }

    /// The effective rank: the number of singular values at least `threshold`
    /// times the largest one.
    pub fn effective_rank(&self, n: usize, threshold: f64) -> usize {
        let s = self.generate(n);
        let max = s.first().copied().unwrap_or(0.0);
        s.iter().filter(|&&v| v >= threshold * max).count().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_decays_monotonically() {
        let s = SpectralDecay::Exponential { rate: 0.5 }.generate(10);
        assert_eq!(s.len(), 10);
        assert!((s[0] - 1.0).abs() < 1e-15);
        for w in s.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn power_decay_values() {
        let s = SpectralDecay::Power { exponent: 1.0 }.generate(4);
        assert!((s[1] - 0.5).abs() < 1e-15);
        assert!((s[3] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn step_profile() {
        let s = SpectralDecay::Step {
            rank: 3,
            floor: 1e-6,
        }
        .generate(6);
        assert_eq!(&s[..3], &[1.0, 1.0, 1.0]);
        assert!(s[3..].iter().all(|&v| v == 1e-6));
    }

    #[test]
    fn floor_clamps_exponential() {
        let s = SpectralDecay::ExponentialWithFloor {
            rate: 2.0,
            floor: 1e-3,
        }
        .generate(20);
        assert!(s.iter().all(|&v| v >= 1e-3));
        assert!((s[0] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn effective_rank_counts_above_threshold() {
        let d = SpectralDecay::Step {
            rank: 4,
            floor: 1e-8,
        };
        assert_eq!(d.effective_rank(10, 1e-4), 4);
        let e = SpectralDecay::Exponential {
            rate: f64::ln(10.0),
        };
        // σ_i = 10^-i: values ≥ 9e-3 are i = 0,1,2 (a strict 1e-2 cutoff would
        // sit exactly on the floating-point boundary of σ_2).
        assert_eq!(e.effective_rank(10, 9e-3), 3);
    }

    #[test]
    fn generate_zero_length() {
        assert!(SpectralDecay::Exponential { rate: 1.0 }
            .generate(0)
            .is_empty());
    }
}
