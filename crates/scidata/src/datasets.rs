//! Named dataset presets mirroring the paper's combustion datasets (Sec. VII-A).
//!
//! | preset | paper shape | paper size | surrogate shape (scale = 1) |
//! |---|---|---|---|
//! | HCCI | 672 × 672 × 33 × 627 | 70 GB | 48 × 48 × 16 × 40 |
//! | TJLR | 460 × 700 × 360 × 35 × 16 | 520 GB | 20 × 24 × 16 × 12 × 8 |
//! | SP   | 500 × 500 × 500 × 11 × 50 | 550 GB | 24 × 24 × 24 × 8 × 16 |
//!
//! The surrogates keep the *qualitative* mode structure (2-D vs 3-D grids,
//! small species and time modes) and the relative compressibility ordering
//! (SP most compressible, TJLR least), at sizes that run on a laptop. The
//! `scale` parameter multiplies the spatial extents for larger experiments.

use crate::combustion::{CombustionConfig, CombustionField};
use crate::normalize::{normalize_per_slice, Normalization};
use serde::{Deserialize, Serialize};
use tucker_tensor::DenseTensor;

/// The three combustion datasets of the paper, as surrogate presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// Homogeneous Charge Compression Ignition: 2-D grid, 33 variables, long
    /// time horizon; moderately compressible.
    Hcci,
    /// Temporally-evolving jet flame (DME fuel): 3-D grid, heavily downsampled
    /// in the paper, hence the least compressible dataset.
    Tjlr,
    /// Statistically steady planar premixed flame: 3-D grid, most compressible.
    Sp,
}

/// A generated, normalized surrogate dataset.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Which preset produced it.
    pub preset: DatasetPreset,
    /// The centered-and-scaled data tensor (the form the paper compresses).
    pub data: DenseTensor,
    /// The normalization statistics (per species slice).
    pub normalization: Normalization,
    /// Mode labels for plots and tables.
    pub mode_labels: Vec<String>,
}

impl DatasetPreset {
    /// All presets, in the order the paper tabulates them.
    pub fn all() -> [DatasetPreset; 3] {
        [DatasetPreset::Hcci, DatasetPreset::Tjlr, DatasetPreset::Sp]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetPreset::Hcci => "HCCI",
            DatasetPreset::Tjlr => "TJLR",
            DatasetPreset::Sp => "SP",
        }
    }

    /// The dataset dimensions used in the paper.
    pub fn paper_dims(&self) -> Vec<usize> {
        match self {
            DatasetPreset::Hcci => vec![672, 672, 33, 627],
            DatasetPreset::Tjlr => vec![460, 700, 360, 35, 16],
            DatasetPreset::Sp => vec![500, 500, 500, 11, 50],
        }
    }

    /// The surrogate generator configuration at the given spatial scale
    /// (`scale = 1` is the laptop-sized default; larger values grow the grid).
    pub fn surrogate_config(&self, scale: usize, seed: u64) -> CombustionConfig {
        let s = scale.max(1);
        match self {
            // Moderately smooth, moderate noise, long time axis.
            DatasetPreset::Hcci => CombustionConfig {
                grid: vec![48 * s, 48 * s],
                n_variables: 16,
                n_timesteps: 40,
                n_kernels: 12,
                species_rank: 5,
                kernel_width: 0.09,
                drift: 0.3,
                noise_level: 5e-4,
                seed,
            },
            // Downsampled / turbulent: narrow kernels, strong drift, and the
            // highest noise floor of the three → hardest to compress. The
            // floor is kept just below the ε = 1e-3 per-mode budget so the
            // Tab. II row is not degenerate (ratio 1 / error ~1e-15): a thin
            // spectral tail exists in every mode, TJLR compresses a little,
            // and the SP ≫ HCCI ≫ TJLR ordering is preserved.
            DatasetPreset::Tjlr => CombustionConfig {
                grid: vec![20 * s, 24 * s, 16 * s],
                n_variables: 12,
                n_timesteps: 10,
                n_kernels: 14,
                species_rank: 7,
                kernel_width: 0.08,
                drift: 0.45,
                noise_level: 1.5e-4,
                seed,
            },
            // Statistically steady: wide kernels, little drift, low noise →
            // most compressible.
            DatasetPreset::Sp => CombustionConfig {
                grid: vec![24 * s, 24 * s, 24 * s],
                n_variables: 8,
                n_timesteps: 16,
                n_kernels: 4,
                species_rank: 2,
                kernel_width: 0.3,
                drift: 0.04,
                noise_level: 2e-5,
                seed,
            },
        }
    }

    /// Generates the normalized surrogate dataset at the given scale.
    pub fn generate(&self, scale: usize, seed: u64) -> GeneratedDataset {
        let cfg = self.surrogate_config(scale, seed);
        let CombustionField {
            mut data,
            mode_labels,
            variable_mode,
            ..
        } = cfg.generate();
        let normalization = normalize_per_slice(&mut data, variable_mode);
        GeneratedDataset {
            preset: *self,
            data,
            normalization,
            mode_labels,
        }
    }

    /// Size of the paper's dataset in bytes (double precision).
    pub fn paper_size_bytes(&self) -> u64 {
        self.paper_dims().iter().map(|&d| d as u64).product::<u64>() * 8
    }
}

impl GeneratedDataset {
    /// Undoes the per-species normalization on a reconstruction (or any
    /// subtensor that keeps the species mode intact), in place.
    ///
    /// This is the analyst-side final step of the storage pipeline: the
    /// normalization statistics travel in the `.tkr` header (see
    /// `tucker-store`), a subtensor is reconstructed from the compressed
    /// artifact, and this puts it back in physical units.
    ///
    /// # Panics
    /// Panics if the species mode of `x` does not have one slice per recorded
    /// variable.
    pub fn denormalize(&self, x: &mut DenseTensor) {
        assert_eq!(
            x.dim(self.normalization.mode),
            self.normalization.means.len(),
            "denormalize: species mode size does not match the recorded statistics"
        );
        self.normalization.invert(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dims_match_the_paper() {
        assert_eq!(DatasetPreset::Hcci.paper_dims(), vec![672, 672, 33, 627]);
        assert_eq!(
            DatasetPreset::Tjlr.paper_dims(),
            vec![460, 700, 360, 35, 16]
        );
        assert_eq!(DatasetPreset::Sp.paper_dims(), vec![500, 500, 500, 11, 50]);
        // Paper: HCCI ≈ 70 GB, TJLR ≈ 520 GB, SP ≈ 550 GB.
        assert!((DatasetPreset::Hcci.paper_size_bytes() as f64 / 1e9 - 74.7).abs() < 5.0);
        assert!((DatasetPreset::Tjlr.paper_size_bytes() as f64 / 1e9 - 519.0).abs() < 15.0);
        assert!((DatasetPreset::Sp.paper_size_bytes() as f64 / 1e9 - 550.0).abs() < 15.0);
    }

    #[test]
    fn surrogate_mode_counts_match_paper_structure() {
        // HCCI is 4-way (2-D grid), TJLR and SP are 5-way (3-D grids).
        assert_eq!(DatasetPreset::Hcci.surrogate_config(1, 0).grid.len() + 2, 4);
        assert_eq!(DatasetPreset::Tjlr.surrogate_config(1, 0).grid.len() + 2, 5);
        assert_eq!(DatasetPreset::Sp.surrogate_config(1, 0).grid.len() + 2, 5);
    }

    #[test]
    fn generated_dataset_is_normalized() {
        let ds = DatasetPreset::Hcci.generate(1, 7);
        assert_eq!(ds.data.ndims(), 4);
        // Mean of the whole normalized tensor is near zero.
        let mean: f64 = ds.data.as_slice().iter().sum::<f64>() / ds.data.len() as f64;
        assert!(mean.abs() < 1e-8);
        assert_eq!(ds.mode_labels.len(), 4);
        assert_eq!(ds.normalization.means.len(), 16);
    }

    #[test]
    fn scale_grows_the_spatial_grid() {
        let small = DatasetPreset::Hcci.surrogate_config(1, 0);
        let large = DatasetPreset::Hcci.surrogate_config(2, 0);
        assert_eq!(large.grid[0], 2 * small.grid[0]);
        assert_eq!(large.n_variables, small.n_variables);
    }

    #[test]
    fn denormalize_restores_physical_units() {
        let preset = DatasetPreset::Hcci;
        let ds = preset.generate(1, 11);
        // Regenerate the raw field and compare against a denormalized copy.
        let raw = preset.surrogate_config(1, 11).generate().data;
        let mut back = ds.data.clone();
        ds.denormalize(&mut back);
        for (a, b) in back.as_slice().iter().zip(raw.as_slice()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn names_and_all() {
        let names: Vec<&str> = DatasetPreset::all().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["HCCI", "TJLR", "SP"]);
    }
}
