//! Synthetic scientific datasets for the parallel Tucker compression study.
//!
//! The paper evaluates compression on three combustion DNS datasets produced by
//! the S3D solver (HCCI, TJLR, SP — Sec. VII-A). Those datasets are not
//! publicly available, so this crate provides *surrogates*: synthetic fields
//! built from traveling coherent structures with low-rank species correlations
//! and smooth temporal evolution, whose mode-wise singular-value decay can be
//! controlled so that the relative compressibility ordering of the paper
//! (SP ≫ HCCI ≫ TJLR) is reproduced by construction. See DESIGN.md §2 for the
//! substitution argument.
//!
//! * [`spectra`]   — prescribed singular-value decay profiles.
//! * [`synthetic`] — random Tucker tensors with prescribed per-mode spectra.
//! * [`combustion`]— the HCCI / TJLR / SP surrogate field generators.
//! * [`normalize`] — per-variable centering and scaling (Sec. VII-A).
//! * [`datasets`]  — named presets mirroring the paper's dataset shapes.
//! * [`slab`]      — offset-addressable slab generators driving the
//!   out-of-core pipeline without materializing the field.

pub mod combustion;
pub mod datasets;
pub mod normalize;
pub mod slab;
pub mod spectra;
pub mod synthetic;

pub use combustion::{CombustionConfig, CombustionField};
pub use datasets::{DatasetPreset, GeneratedDataset};
pub use normalize::{normalize_per_slice, Normalization};
pub use slab::CombustionSlabSource;
pub use spectra::SpectralDecay;
pub use synthetic::{random_low_rank, random_tucker_with_spectra, NoisyLowRank};
