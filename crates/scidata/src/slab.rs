//! Offset-addressable slab generators for the surrogate datasets.
//!
//! The streaming pipeline (`tucker_core::streaming`) consumes tensors
//! through the `SlabSource` trait — whole last-mode slabs on demand, never
//! the full field. [`CombustionConfig::generate`] cannot serve that role
//! directly: its turbulent-noise term draws from a *sequential* rng over the
//! whole storage order, so producing slab `t` would require generating every
//! element before it (and the values would depend on where slab boundaries
//! fall). [`CombustionSlabSource`] replaces only the noise term with a
//! **counter-based** generator (a splitmix64 finalizer of the element's
//! linear offset), making every element a pure function of `(seed, offset)`:
//!
//! * slabs of any width, requested in any order, repeatedly, always agree —
//!   the precondition for `st_hosvd_streaming`'s "bit-identical for every
//!   slab width" contract;
//! * [`CombustionSlabSource::materialize`] produces exactly the tensor the
//!   streaming path sees, so the in-memory and out-of-core pipelines can be
//!   compared element for element (the `table5_memory` gate does this);
//! * the field has the same structure and noise statistics as
//!   [`CombustionConfig::generate`] (identical kernels, identical noise
//!   amplitude, both uniform in [-1, 1)), but is **not byte-identical to
//!   it** — the sequential generator is kept unchanged so historical
//!   datasets stay stable.
//!
//! The source is raw (un-normalized): per-species normalization needs global
//! statistics and therefore a pass of its own, which the out-of-core
//! pipeline leaves to the caller.

use crate::combustion::{CombustionConfig, SurrogateModel};
use crate::datasets::DatasetPreset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tucker_tensor::{DenseTensor, SlabSource};

/// A deterministic, random-access slab view of a surrogate combustion field.
pub struct CombustionSlabSource {
    model: SurrogateModel,
    noise_level: f64,
    noise_seed: u64,
}

impl CombustionConfig {
    /// An offset-addressable slab source of this configuration (see the
    /// module docs for how its noise differs from [`CombustionConfig::generate`]).
    pub fn slab_source(&self) -> CombustionSlabSource {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let model = SurrogateModel::new(self, &mut rng);
        CombustionSlabSource {
            model,
            noise_level: self.noise_level,
            // Decorrelate the per-element noise stream from the model draws.
            noise_seed: self.seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl DatasetPreset {
    /// The slab source of this preset's surrogate at the given scale — the
    /// streaming-ingest counterpart of [`DatasetPreset::generate`] (raw
    /// field, no normalization).
    pub fn slab_source(&self, scale: usize, seed: u64) -> CombustionSlabSource {
        self.surrogate_config(scale, seed).slab_source()
    }
}

impl CombustionSlabSource {
    /// Human-readable label per mode.
    pub fn mode_labels(&self) -> Vec<String> {
        self.model.mode_labels()
    }

    /// Index of the variables (species) mode.
    pub fn variable_mode(&self) -> usize {
        self.model.var_mode
    }

    /// Index of the time (streaming) mode.
    pub fn time_mode(&self) -> usize {
        self.model.time_mode
    }

    /// The full field as a resident tensor — element-for-element what the
    /// slab API serves, used to drive the in-memory baseline in comparisons
    /// against the streaming pipeline.
    pub fn materialize(&self) -> DenseTensor {
        let stride = self.slab_stride();
        let last = self.last_dim();
        let mut data = vec![0.0f64; stride * last];
        if last > 0 {
            self.fill_slab(0, last, &mut data);
        }
        DenseTensor::from_vec(&self.model.dims, data)
    }

    /// The field value at linear offset `off` (natural storage order).
    fn value_at(&self, idx: &[usize], off: usize) -> f64 {
        let mut v = self.model.structural_value(idx);
        if self.noise_level > 0.0 {
            v += self.noise_level * hashed_unit(self.noise_seed, off as u64);
        }
        v
    }
}

impl SlabSource for CombustionSlabSource {
    fn dims(&self) -> &[usize] {
        &self.model.dims
    }

    fn fill_slab(&self, start: usize, len: usize, out: &mut [f64]) {
        let dims = &self.model.dims;
        let last = *dims.last().expect("surrogate has at least one mode");
        assert!(
            start + len <= last,
            "fill_slab: range {start}+{len} exceeds time dim {last}"
        );
        let stride = self.slab_stride();
        assert_eq!(
            out.len(),
            len * stride,
            "fill_slab: output buffer length mismatch"
        );
        // Walk the slab in storage order, advancing the multi-index in place
        // (first mode fastest; the last-mode component starts at `start`).
        let mut idx = vec![0usize; dims.len()];
        *idx.last_mut().unwrap() = start;
        let base = start * stride;
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.value_at(&idx, base + i);
            for (k, c) in idx.iter_mut().enumerate() {
                *c += 1;
                if *c < dims[k] || k == dims.len() - 1 {
                    break;
                }
                *c = 0;
            }
        }
    }
}

/// Maps `(seed, counter)` to a uniform value in [-1, 1) via the splitmix64
/// finalizer — stateless, so any element can be generated independently.
fn hashed_unit(seed: u64, counter: u64) -> f64 {
    let mut z = seed ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 53 high-entropy bits → [0, 1) → [-1, 1).
    ((z >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_source() -> CombustionSlabSource {
        CombustionConfig {
            grid: vec![10, 8],
            n_variables: 6,
            n_timesteps: 7,
            n_kernels: 4,
            species_rank: 2,
            kernel_width: 0.2,
            drift: 0.2,
            noise_level: 1e-3,
            seed: 99,
        }
        .slab_source()
    }

    #[test]
    fn slabs_agree_with_materialized_field_for_any_width() {
        let src = small_source();
        let full = src.materialize();
        assert_eq!(full.dims(), &[10, 8, 6, 7]);
        let stride = src.slab_stride();
        for width in [1usize, 2, 3, 7] {
            let mut start = 0;
            while start < 7 {
                let w = width.min(7 - start);
                let mut buf = vec![0.0; w * stride];
                src.fill_slab(start, w, &mut buf);
                assert_eq!(&buf[..], full.last_mode_slab(start, w), "slab {start}+{w}");
                start += w;
            }
        }
    }

    #[test]
    fn repeated_and_out_of_order_reads_are_stable() {
        let src = small_source();
        let stride = src.slab_stride();
        let mut a = vec![0.0; stride];
        let mut b = vec![0.0; stride];
        src.fill_slab(5, 1, &mut a);
        src.fill_slab(0, 1, &mut b); // unrelated read in between
        src.fill_slab(5, 1, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn structure_matches_the_sequential_generator() {
        // Same seed, same kernels: the noise-free parts agree exactly, so
        // the two generators differ by at most twice the noise amplitude.
        let cfg = CombustionConfig {
            noise_level: 1e-3,
            ..CombustionConfig {
                grid: vec![9, 7],
                n_variables: 5,
                n_timesteps: 6,
                n_kernels: 3,
                species_rank: 2,
                kernel_width: 0.15,
                drift: 0.3,
                noise_level: 0.0,
                seed: 1234,
            }
        };
        let sequential = cfg.generate().data;
        let streamed = cfg.slab_source().materialize();
        assert_eq!(sequential.dims(), streamed.dims());
        for (a, b) in sequential.as_slice().iter().zip(streamed.as_slice()) {
            assert!((a - b).abs() <= 2e-3, "{a} vs {b}");
        }
        // And with zero noise they are bit-identical.
        let quiet = CombustionConfig {
            noise_level: 0.0,
            ..cfg
        };
        assert_eq!(
            quiet.generate().data.as_slice(),
            quiet.slab_source().materialize().as_slice()
        );
    }

    #[test]
    fn preset_sources_expose_the_preset_shapes() {
        let src = DatasetPreset::Hcci.slab_source(1, 7);
        assert_eq!(SlabSource::dims(&src), &[48, 48, 16, 40]);
        assert_eq!(src.variable_mode(), 2);
        assert_eq!(src.time_mode(), 3);
        assert_eq!(src.mode_labels().len(), 4);
        assert_eq!(src.slab_stride(), 48 * 48 * 16);
        assert_eq!(src.last_dim(), 40);
    }

    #[test]
    fn hashed_noise_is_uniformish_and_deterministic() {
        let n = 4096;
        let mean: f64 = (0..n).map(|i| hashed_unit(42, i)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "counter noise badly biased: {mean}");
        assert!((0..n).all(|i| (-1.0..1.0).contains(&hashed_unit(42, i))));
        assert_eq!(hashed_unit(7, 123).to_bits(), hashed_unit(7, 123).to_bits());
        assert_ne!(hashed_unit(7, 123).to_bits(), hashed_unit(8, 123).to_bits());
    }

    #[test]
    #[should_panic]
    fn out_of_range_slab_panics() {
        let src = small_source();
        let mut buf = vec![0.0; src.slab_stride() * 2];
        src.fill_slab(6, 2, &mut buf);
    }
}
