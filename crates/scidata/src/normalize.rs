//! Per-variable centering and scaling (Sec. VII-A of the paper).
//!
//! Each species/variable slice is transformed by subtracting its mean and
//! dividing by its standard deviation — unless the standard deviation is below
//! `10⁻¹⁰`, in which case the division is skipped (exactly the paper's rule).
//! The returned [`Normalization`] stores the per-slice statistics so the
//! transformation can be inverted after reconstruction.

use serde::{Deserialize, Serialize};
use tucker_tensor::{extract_subtensor, DenseTensor, SubtensorSpec};

/// The threshold below which a slice's standard deviation is treated as zero.
pub const STD_GUARD: f64 = 1e-10;

/// Per-slice statistics recorded during normalization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalization {
    /// The mode whose slices were normalized (the variables/species mode).
    pub mode: usize,
    /// Mean of each slice.
    pub means: Vec<f64>,
    /// Standard deviation of each slice (as computed, before the guard).
    pub stds: Vec<f64>,
}

impl Normalization {
    /// Whether the division was applied for slice `i`.
    pub fn scaled(&self, i: usize) -> bool {
        self.stds[i] >= STD_GUARD
    }

    /// Applies the inverse transformation in place (de-normalization).
    pub fn invert(&self, x: &mut DenseTensor) {
        apply_slicewise(x, self.mode, |i, v| {
            let scaled = if self.scaled(i) { v * self.stds[i] } else { v };
            scaled + self.means[i]
        });
    }

    /// Applies the forward transformation in place (e.g. to new data with the
    /// same statistics).
    pub fn apply(&self, x: &mut DenseTensor) {
        apply_slicewise(x, self.mode, |i, v| {
            let centered = v - self.means[i];
            if self.scaled(i) {
                centered / self.stds[i]
            } else {
                centered
            }
        });
    }
}

/// Centers and scales every slice of mode `mode` in place, returning the
/// statistics needed to invert the transformation.
pub fn normalize_per_slice(x: &mut DenseTensor, mode: usize) -> Normalization {
    let n = x.dim(mode);
    let mut means = vec![0.0f64; n];
    let mut stds = vec![0.0f64; n];
    let slice_len = x.codim(mode);

    // Pass 1: means and standard deviations per slice.
    for i in 0..n {
        let spec = SubtensorSpec::all(x.dims()).restrict_mode(mode, vec![i]);
        let slice = extract_subtensor(x, &spec);
        let mean = slice.as_slice().iter().sum::<f64>() / slice_len.max(1) as f64;
        let var = slice
            .as_slice()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f64>()
            / slice_len.max(1) as f64;
        means[i] = mean;
        stds[i] = var.sqrt();
    }

    let norm = Normalization { mode, means, stds };
    // Pass 2: transform in place.
    let norm_ref = norm.clone();
    apply_slicewise(x, mode, |i, v| {
        let centered = v - norm_ref.means[i];
        if norm_ref.scaled(i) {
            centered / norm_ref.stds[i]
        } else {
            centered
        }
    });
    norm
}

/// Applies `f(slice_index, value)` to every element, where `slice_index` is the
/// element's index in the given mode.
fn apply_slicewise(x: &mut DenseTensor, mode: usize, f: impl Fn(usize, f64) -> f64) {
    let dims = x.dims().to_vec();
    // Stride pattern of the natural layout: index in `mode` changes every
    // `inner` elements and wraps every `inner * dims[mode]`.
    let inner: usize = dims[..mode].iter().product();
    let modal = dims[mode];
    for (off, v) in x.as_mut_slice().iter_mut().enumerate() {
        let i = (off / inner) % modal;
        *v = f(i, *v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn species_tensor() -> DenseTensor {
        // 4x3x5 tensor where species s (mode 1) has values centered at 10*s
        // with spread depending on s.
        DenseTensor::from_fn(&[4, 3, 5], |idx| {
            let s = idx[1] as f64;
            10.0 * s + (idx[0] as f64 - 1.5) * (s + 1.0) + 0.1 * idx[2] as f64
        })
    }

    #[test]
    fn normalized_slices_have_zero_mean_unit_std() {
        let mut x = species_tensor();
        let norm = normalize_per_slice(&mut x, 1);
        for s in 0..3 {
            let spec = SubtensorSpec::all(x.dims()).restrict_mode(1, vec![s]);
            let slice = extract_subtensor(&x, &spec);
            let mean = slice.as_slice().iter().sum::<f64>() / slice.len() as f64;
            let var = slice
                .as_slice()
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f64>()
                / slice.len() as f64;
            assert!(mean.abs() < 1e-10, "slice {s} mean {mean}");
            assert!((var - 1.0).abs() < 1e-8, "slice {s} var {var}");
            assert!(norm.scaled(s));
        }
    }

    #[test]
    fn round_trip_restores_original() {
        let original = species_tensor();
        let mut x = original.clone();
        let norm = normalize_per_slice(&mut x, 1);
        norm.invert(&mut x);
        for (a, b) in x.as_slice().iter().zip(original.as_slice()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn apply_matches_normalize() {
        let original = species_tensor();
        let mut x = original.clone();
        let norm = normalize_per_slice(&mut x, 1);
        let mut y = original.clone();
        norm.apply(&mut y);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_slice_is_centered_but_not_scaled() {
        // Mode-1 slice 0 constant: std below the guard.
        let mut x = DenseTensor::from_fn(&[3, 2, 4], |idx| {
            if idx[1] == 0 {
                5.0
            } else {
                idx[0] as f64 + idx[2] as f64
            }
        });
        let norm = normalize_per_slice(&mut x, 1);
        assert!(!norm.scaled(0));
        assert!(norm.scaled(1));
        // Every element of slice 0 is now exactly zero.
        for i in 0..3 {
            for k in 0..4 {
                assert_eq!(x.get(&[i, 0, k]), 0.0);
            }
        }
    }

    #[test]
    fn normalization_on_last_mode() {
        let mut x = DenseTensor::from_fn(&[3, 4, 2], |idx| (idx[2] * 100 + idx[0]) as f64);
        let norm = normalize_per_slice(&mut x, 2);
        assert_eq!(norm.means.len(), 2);
        assert!(norm.means[1] > norm.means[0]);
        // Round-trip.
        let mut y = x.clone();
        norm.invert(&mut y);
        assert!((y.get(&[0, 0, 1]) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_on_first_mode() {
        let mut x = DenseTensor::from_fn(&[2, 5], |idx| (idx[0] * 7 + idx[1]) as f64);
        let original = x.clone();
        let norm = normalize_per_slice(&mut x, 0);
        norm.invert(&mut x);
        for (a, b) in x.as_slice().iter().zip(original.as_slice()) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
