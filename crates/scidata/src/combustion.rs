//! Surrogate combustion DNS fields.
//!
//! The paper's datasets come from S3D direct numerical simulations of turbulent
//! flames (Sec. VII-A). The surrogate generator here mimics the structural
//! properties that make such data Tucker-compressible:
//!
//! * **bursty spatial structure** — a moderate number of coherent "flame
//!   kernels" (traveling Gaussian blobs) superimposed on a smooth background;
//! * **low-rank species coupling** — each kernel excites the chemical species
//!   through a small number of latent reaction modes, so the species mode has
//!   low rank;
//! * **temporal coherence** — kernels move smoothly in time, so the time mode
//!   is compressible for statistically-steady flames (SP) and less so for
//!   temporally-evolving ones (TJLR);
//! * **broadband noise** — small-scale turbulence modeled as white noise whose
//!   amplitude controls the noise floor of every mode's spectrum (and therefore
//!   the achievable compression at tight tolerances).
//!
//! The three presets in [`crate::datasets`] differ only in these knobs, chosen
//! so the relative compressibility ordering (SP ≫ HCCI ≫ TJLR) matches Fig. 7.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tucker_tensor::DenseTensor;

/// Configuration of the surrogate combustion field generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombustionConfig {
    /// Spatial grid sizes (1–3 dimensions).
    pub grid: Vec<usize>,
    /// Number of tracked variables (chemical species + derived quantities).
    pub n_variables: usize,
    /// Number of time steps.
    pub n_timesteps: usize,
    /// Number of coherent structures ("flame kernels").
    pub n_kernels: usize,
    /// Number of latent reaction modes coupling the species (species rank).
    pub species_rank: usize,
    /// Kernel width as a fraction of the domain (larger = smoother = more compressible).
    pub kernel_width: f64,
    /// Fraction of the domain a kernel travels over the whole simulation
    /// (larger = less temporally compressible).
    pub drift: f64,
    /// Relative amplitude of the broadband turbulent noise.
    pub noise_level: f64,
    /// RNG seed.
    pub seed: u64,
}

/// A generated surrogate field together with its dimension labels.
#[derive(Debug, Clone)]
pub struct CombustionField {
    /// The raw (un-normalized) data tensor: spatial modes, then variables, then time.
    pub data: DenseTensor,
    /// Human-readable label per mode (e.g. `["Spatial 1", "Spatial 2", "Species", "Time"]`).
    pub mode_labels: Vec<String>,
    /// Index of the variables (species) mode.
    pub variable_mode: usize,
    /// Index of the time mode.
    pub time_mode: usize,
}

struct Kernel {
    /// Starting center per spatial dimension, in [0, 1).
    center: Vec<f64>,
    /// Drift direction per spatial dimension (unit-ish), scaled by config.drift.
    velocity: Vec<f64>,
    /// Width of the Gaussian.
    width: f64,
    /// Amplitude of the kernel in each latent reaction mode.
    latent_amplitude: Vec<f64>,
    /// Temporal phase and frequency of the kernel's intensity envelope.
    phase: f64,
    freq: f64,
}

/// The deterministic (noise-free) part of a surrogate field: precomputed
/// kernel trajectories plus a pure per-index evaluator. Shared by the
/// materializing [`CombustionConfig::generate`] (which layers sequential rng
/// noise on top) and the offset-addressable slab source of
/// [`crate::slab`] (which layers counter-based noise on top).
pub(crate) struct SurrogateModel {
    pub(crate) grid: Vec<usize>,
    pub(crate) dims: Vec<usize>,
    pub(crate) nspace: usize,
    pub(crate) var_mode: usize,
    pub(crate) time_mode: usize,
    background: Vec<f64>,
    kernels: Vec<Kernel>,
    centers: Vec<Vec<Vec<f64>>>,
    intensities: Vec<Vec<f64>>,
    species_amp: Vec<Vec<f64>>,
}

impl SurrogateModel {
    /// Builds the model, drawing from `rng` in the exact historical order
    /// (species loadings, kernels, background) so that
    /// [`CombustionConfig::generate`] — which continues drawing noise from
    /// the same rng — produces bit-identical fields to every prior release.
    pub(crate) fn new(cfg: &CombustionConfig, rng: &mut StdRng) -> SurrogateModel {
        assert!(
            (1..=3).contains(&cfg.grid.len()),
            "CombustionConfig: 1–3 spatial dimensions supported"
        );
        assert!(cfg.species_rank >= 1 && cfg.species_rank <= cfg.n_variables);

        // Latent reaction modes → species loading matrix (n_variables × species_rank).
        let species_loadings: Vec<Vec<f64>> = (0..cfg.n_variables)
            .map(|_| {
                (0..cfg.species_rank)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect()
            })
            .collect();

        // Flame kernels.
        let kernels: Vec<Kernel> = (0..cfg.n_kernels)
            .map(|_| Kernel {
                center: cfg.grid.iter().map(|_| rng.gen_range(0.1..0.9)).collect(),
                velocity: cfg
                    .grid
                    .iter()
                    .map(|_| rng.gen_range(-1.0..1.0) * cfg.drift)
                    .collect(),
                width: cfg.kernel_width * rng.gen_range(0.6..1.4),
                latent_amplitude: (0..cfg.species_rank)
                    .map(|_| rng.gen_range(0.5..1.5) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                    .collect(),
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
                freq: rng.gen_range(0.5..2.0),
            })
            .collect();

        // Smooth background per variable (slowly varying in space, constant in time).
        let background: Vec<f64> = (0..cfg.n_variables)
            .map(|_| rng.gen_range(-0.5..0.5))
            .collect();

        let mut dims = cfg.grid.clone();
        dims.push(cfg.n_variables);
        dims.push(cfg.n_timesteps);
        let nspace = cfg.grid.len();

        // Precompute per-(kernel, time) centers and intensities; per-(kernel, variable)
        // species amplitudes.
        let nt = cfg.n_timesteps.max(1);
        let centers: Vec<Vec<Vec<f64>>> = kernels
            .iter()
            .map(|k| {
                (0..nt)
                    .map(|t| {
                        let tau = t as f64 / nt as f64;
                        k.center
                            .iter()
                            .zip(k.velocity.iter())
                            .map(|(&c, &v)| c + v * tau)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let intensities: Vec<Vec<f64>> = kernels
            .iter()
            .map(|k| {
                (0..nt)
                    .map(|t| {
                        let tau = t as f64 / nt as f64;
                        1.0 + 0.3 * (k.freq * std::f64::consts::TAU * tau + k.phase).sin()
                    })
                    .collect()
            })
            .collect();
        let species_amp: Vec<Vec<f64>> = kernels
            .iter()
            .map(|k| {
                (0..cfg.n_variables)
                    .map(|v| {
                        k.latent_amplitude
                            .iter()
                            .zip(species_loadings[v].iter())
                            .map(|(a, l)| a * l)
                            .sum::<f64>()
                    })
                    .collect()
            })
            .collect();

        SurrogateModel {
            grid: cfg.grid.clone(),
            dims,
            nspace,
            var_mode: nspace,
            time_mode: nspace + 1,
            background,
            kernels,
            centers,
            intensities,
            species_amp,
        }
    }

    /// The noise-free field value at a multi-index — byte-for-byte the
    /// historical `from_fn` closure body minus the rng noise term.
    pub(crate) fn structural_value(&self, idx: &[usize]) -> f64 {
        // Normalized spatial coordinates.
        let pos: Vec<f64> = (0..self.nspace)
            .map(|d| idx[d] as f64 / self.grid[d] as f64)
            .collect();
        let v = idx[self.var_mode];
        let t = idx[self.time_mode];
        let mut value = self.background[v];
        for (ki, k) in self.kernels.iter().enumerate() {
            let c = &self.centers[ki][t];
            let mut dist2 = 0.0;
            for d in 0..self.nspace {
                let delta = pos[d] - c[d];
                dist2 += delta * delta;
            }
            let shape = (-dist2 / (2.0 * k.width * k.width)).exp();
            value += self.intensities[ki][t] * self.species_amp[ki][v] * shape;
        }
        value
    }

    /// Mode labels matching the dims layout.
    pub(crate) fn mode_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = (0..self.nspace)
            .map(|d| format!("Spatial {}", d + 1))
            .collect();
        labels.push("Species".to_string());
        labels.push("Time".to_string());
        labels
    }
}

impl CombustionConfig {
    /// Generates the surrogate field.
    pub fn generate(&self) -> CombustionField {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let model = SurrogateModel::new(self, &mut rng);
        let noise = self.noise_level;
        let data = DenseTensor::from_fn(&model.dims, |idx| {
            let mut value = model.structural_value(idx);
            if noise > 0.0 {
                value += noise * rng.gen_range(-1.0..1.0);
            }
            value
        });

        CombustionField {
            data,
            mode_labels: model.mode_labels(),
            variable_mode: model.var_mode,
            time_mode: model.time_mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tucker_linalg::eig::sym_eig_desc;
    use tucker_tensor::gram;

    fn small_config() -> CombustionConfig {
        CombustionConfig {
            grid: vec![16, 16],
            n_variables: 8,
            n_timesteps: 10,
            n_kernels: 5,
            species_rank: 3,
            kernel_width: 0.15,
            drift: 0.2,
            noise_level: 1e-4,
            seed: 123,
        }
    }

    #[test]
    fn dims_follow_configuration() {
        let field = small_config().generate();
        assert_eq!(field.data.dims(), &[16, 16, 8, 10]);
        assert_eq!(field.variable_mode, 2);
        assert_eq!(field.time_mode, 3);
        assert_eq!(field.mode_labels.len(), 4);
        assert_eq!(field.mode_labels[0], "Spatial 1");
        assert_eq!(field.mode_labels[2], "Species");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_config().generate();
        let b = small_config().generate();
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn species_mode_has_low_rank() {
        let field = small_config().generate();
        let eig = sym_eig_desc(&gram(&field.data, 2));
        let max = eig.values[0];
        // species_rank latent modes + smooth background: a handful of
        // significant eigenvalues out of 8.
        let significant = eig.values.iter().filter(|&&v| v > 1e-6 * max).count();
        assert!(
            significant <= 5,
            "species mode should be low-rank, got {significant} significant eigenvalues"
        );
    }

    #[test]
    fn smoother_kernels_are_more_compressible_spatially() {
        // Wider kernels → faster spatial eigenvalue decay.
        let smooth = CombustionConfig {
            kernel_width: 0.3,
            noise_level: 0.0,
            ..small_config()
        }
        .generate();
        let rough = CombustionConfig {
            kernel_width: 0.05,
            noise_level: 0.0,
            ..small_config()
        }
        .generate();
        let tail_fraction = |x: &DenseTensor| {
            let eig = sym_eig_desc(&gram(x, 0));
            let total: f64 = eig.values.iter().sum();
            let tail: f64 = eig.values[4..].iter().sum();
            tail / total
        };
        assert!(
            tail_fraction(&smooth.data) < tail_fraction(&rough.data),
            "wider kernels should concentrate energy in fewer spatial modes"
        );
    }

    #[test]
    fn noise_raises_the_spectral_floor() {
        let clean = CombustionConfig {
            noise_level: 0.0,
            ..small_config()
        }
        .generate();
        let noisy = CombustionConfig {
            noise_level: 0.05,
            ..small_config()
        }
        .generate();
        let floor = |x: &DenseTensor| {
            let eig = sym_eig_desc(&gram(x, 0));
            eig.values.last().copied().unwrap_or(0.0).max(0.0) / eig.values[0]
        };
        assert!(floor(&noisy.data) > floor(&clean.data));
    }

    #[test]
    fn three_dimensional_grid_supported() {
        let cfg = CombustionConfig {
            grid: vec![8, 8, 8],
            n_variables: 4,
            n_timesteps: 5,
            n_kernels: 3,
            species_rank: 2,
            kernel_width: 0.2,
            drift: 0.1,
            noise_level: 0.0,
            seed: 9,
        };
        let field = cfg.generate();
        assert_eq!(field.data.dims(), &[8, 8, 8, 4, 5]);
        assert_eq!(field.variable_mode, 3);
        assert_eq!(field.time_mode, 4);
    }

    #[test]
    #[should_panic]
    fn too_many_spatial_dims_panics() {
        CombustionConfig {
            grid: vec![4, 4, 4, 4],
            ..small_config()
        }
        .generate();
    }
}
