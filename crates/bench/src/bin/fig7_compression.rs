//! Fig. 7 — approximation error versus compression ratio for all three
//! datasets (HCCI, TJLR, SP).
//!
//! The paper's qualitative result: TJLR is the least compressible (ratios 2–37
//! over ε = 10⁻⁶ … 10⁻²), SP the most (5–5600), HCCI in between. The surrogate
//! sweep reproduces that ordering at every tolerance.
//!
//! Run: `cargo run --release -p tucker-bench --bin fig7_compression`

use tucker_bench::{eng, print_header, print_row};
use tucker_core::prelude::*;
use tucker_scidata::DatasetPreset;
use tucker_tensor::normalized_rms_error;

fn main() {
    let epsilons = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2];
    println!("Fig. 7 — compression ratio vs max normalized RMS error\n");

    let mut table: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for preset in DatasetPreset::all() {
        let ds = preset.generate(1, 7);
        let dims = ds.data.dims().to_vec();
        let mut series = Vec::new();
        for &eps in &epsilons {
            let result = st_hosvd(&ds.data, &SthosvdOptions::with_tolerance(eps));
            let rec = result.tucker.reconstruct();
            let err = normalized_rms_error(&ds.data, &rec);
            let ratio = result.tucker.compression_ratio(&dims);
            series.push((err, ratio));
        }
        table.push((preset.name().to_string(), series));
    }

    let widths = [12usize, 22, 22, 22];
    print_header(
        &[
            "target eps",
            "HCCI (err, ratio)",
            "TJLR (err, ratio)",
            "SP (err, ratio)",
        ],
        &widths,
    );
    for (i, &eps) in epsilons.iter().enumerate() {
        let cell = |name: &str| -> String {
            let (err, ratio) = table.iter().find(|(n, _)| n == name).unwrap().1[i];
            format!("{}, {:.1}x", eng(err, 1), ratio)
        };
        print_row(
            &[format!("{eps:.0e}"), cell("HCCI"), cell("TJLR"), cell("SP")],
            &widths,
        );
    }

    // Shape checks mirroring the paper's conclusions.
    let ratio_at = |name: &str, i: usize| table.iter().find(|(n, _)| n == name).unwrap().1[i].1;
    let last = epsilons.len() - 1;
    assert!(
        ratio_at("SP", last) > ratio_at("HCCI", last)
            && ratio_at("HCCI", last) > ratio_at("TJLR", last),
        "compressibility ordering SP > HCCI > TJLR must hold at loose tolerance"
    );
    assert!(
        ratio_at("SP", last) / ratio_at("SP", 0) > ratio_at("TJLR", last) / ratio_at("TJLR", 0),
        "SP's ratio must grow faster with eps than TJLR's"
    );
    println!(
        "\nShape check passed: SP >> HCCI >> TJLR in compressibility, and the spread\n\
         widens as the tolerance is relaxed — the Fig. 7 ordering."
    );
}
