//! Tab. V (this repo's extension) — peak-memory gate for the out-of-core
//! pipeline.
//!
//! The whole point of `st_hosvd_streaming` + `compress_streaming` is that
//! neither compression nor serialization ever holds the full tensor: peak
//! memory is `O(slab + truncated tensor)` instead of `O(full tensor)` (the
//! in-memory pipeline is ≥ 2× the tensor on its own — `st_hosvd` clones its
//! input). This harness *measures* that claim with a tracking global
//! allocator and enforces it:
//!
//! * **in-memory**  — materialize the HCCI surrogate slab source, run
//!   `st_hosvd_ctx`, `write_tucker` the result;
//! * **streaming**  — run `compress_streaming` on the same slab source (the
//!   field is generated slab by slab, never materialized);
//! * **gate**       — the run **exits non-zero** unless the streaming peak
//!   is below 50% of the in-memory peak and the two artifacts are
//!   byte-identical.
//!
//! Peak accounting is "live heap bytes above the phase baseline", reset
//! between phases; pool worker allocations are counted too (both paths use
//! the same pool). `TUCKER_TABLE5_SLAB` overrides the slab width
//! (default 1 — the strictest profile).
//!
//! Run: `cargo run --release -p tucker-bench --bin table5_memory`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use tucker_bench::{print_header, print_row};
use tucker_core::prelude::*;
use tucker_exec::ExecContext;
use tucker_scidata::DatasetPreset;
use tucker_store::{compress_streaming, write_tucker_ctx, Codec, StoreOptions};
use tucker_tensor::SlabSource;

/// Live heap bytes and the high-water mark above the last reset.
struct TrackingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

impl TrackingAlloc {
    fn record_alloc(size: usize) {
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn record_dealloc(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }

    /// Resets the high-water mark to the current live volume and returns
    /// the baseline.
    fn reset_peak() -> usize {
        let live = LIVE.load(Ordering::Relaxed);
        PEAK.store(live, Ordering::Relaxed);
        live
    }

    /// Peak bytes above `baseline` since the last reset.
    fn peak_above(baseline: usize) -> usize {
        PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
    }
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::record_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::record_dealloc(layout.size());
            Self::record_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

fn main() {
    let eps = 1e-3;
    let slab_width: usize = std::env::var("TUCKER_TABLE5_SLAB")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(1);
    let preset = DatasetPreset::Hcci;
    let src = preset.slab_source(1, 2024);
    let dims = SlabSource::dims(&src).to_vec();
    let field_bytes = 8 * dims.iter().product::<usize>();
    let ctx = ExecContext::global();
    let tmp = std::env::temp_dir();
    let path_mem = tmp.join(format!("table5_{}_inmem.tkr", std::process::id()));
    let path_str = tmp.join(format!("table5_{}_stream.tkr", std::process::id()));

    println!(
        "Tab. V — peak heap of compress-and-store on the {} surrogate\n\
         (shape {:?}, raw field {} MiB, eps = {eps:.0e}, slab width {slab_width})\n",
        preset.name(),
        dims,
        mib(field_bytes),
    );

    // In-memory pipeline: materialize → st_hosvd_ctx → write_tucker.
    let base = TrackingAlloc::reset_peak();
    let inmem_report = {
        let x = src.materialize();
        let result = st_hosvd_ctx(&x, &SthosvdOptions::with_tolerance(eps), ctx);
        write_tucker_ctx(
            &path_mem,
            &result.tucker,
            &StoreOptions::new(Codec::F32, eps),
            ctx,
        )
        .expect("in-memory write failed")
    };
    let inmem_peak = TrackingAlloc::peak_above(base);

    // Streaming pipeline: the source is generated slab by slab.
    let base = TrackingAlloc::reset_peak();
    let (stream_result, stream_report) = compress_streaming(
        &path_str,
        &src,
        &SthosvdOptions::with_tolerance(eps),
        &StreamingOptions::with_slab_width(slab_width),
        &StoreOptions::new(Codec::F32, eps),
        ctx,
    )
    .expect("streaming write failed");
    let stream_peak = TrackingAlloc::peak_above(base);

    let widths = [12usize, 12, 14, 12];
    print_header(&["pipeline", "peak MiB", "peak/field", "file MiB"], &widths);
    for (name, peak, bytes) in [
        ("in-memory", inmem_peak, inmem_report.bytes),
        ("streaming", stream_peak, stream_report.bytes),
    ] {
        print_row(
            &[
                name.to_string(),
                mib(peak),
                format!("{:.2}", peak as f64 / field_bytes as f64),
                mib(bytes as usize),
            ],
            &widths,
        );
    }

    // Gate 1: the two pipelines must produce byte-identical artifacts —
    // streaming is a memory optimization, not a different compressor.
    let bytes_mem = std::fs::read(&path_mem).expect("read in-memory artifact");
    let bytes_str = std::fs::read(&path_str).expect("read streaming artifact");
    std::fs::remove_file(&path_mem).ok();
    std::fs::remove_file(&path_str).ok();
    assert_eq!(
        bytes_mem, bytes_str,
        "streaming artifact differs from the in-memory artifact"
    );
    println!(
        "\nartifacts byte-identical ({} bytes, ranks {:?}, error bound {:.2e})",
        bytes_mem.len(),
        stream_result.ranks,
        stream_result.error_bound()
    );

    // Gate 2: streaming peak below 50% of the in-memory pipeline.
    let ratio = stream_peak as f64 / inmem_peak as f64;
    println!(
        "streaming peak is {:.1}% of the in-memory peak (gate: < 50%)",
        100.0 * ratio
    );
    if ratio >= 0.5 {
        eprintln!(
            "FAIL: streaming pipeline peaked at {} MiB vs {} MiB in-memory \
             ({:.1}% >= 50%)",
            mib(stream_peak),
            mib(inmem_peak),
            100.0 * ratio
        );
        std::process::exit(1);
    }
    println!("\nMemory gate passed.");
}
