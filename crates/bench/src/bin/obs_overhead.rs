//! Observability overhead gate: the `tucker-obs` instrumentation must be
//! effectively free.
//!
//! Runs the full compress → store → query pipeline on the SP surrogate
//! twice per trial — once with the metrics registry disabled
//! (`set_enabled(false)`, every instrument a no-op) and once enabled —
//! strictly alternating so clock drift and cache warmth hit both arms
//! equally. The gate compares the per-arm medians and **exits non-zero**
//! if the metrics-on median exceeds the metrics-off median by more than
//! 5% plus a small absolute floor (the floor absorbs scheduler jitter on
//! small/oversubscribed CI machines; the 5% is the contract from the
//! observability design note in ARCHITECTURE §9).
//!
//! Run: `cargo run --release -p tucker-bench --bin obs_overhead`
//! Smoke (fewer trials, CI-sized): `TUCKER_OBS_SMOKE=1 cargo run ...`

use std::time::Instant;
use tucker_api::{Compressor, Open, TensorQuery};
use tucker_scidata::DatasetPreset;

/// Tolerated slowdown: on ≤ off × (1 + REL_TOL) + ABS_FLOOR_MS.
const REL_TOL: f64 = 0.05;
/// Absolute jitter floor in milliseconds. On an oversubscribed single-core
/// CI box a timer tick of scheduler noise is indistinguishable from real
/// overhead; anything under this is noise, not instrumentation cost.
const ABS_FLOOR_MS: f64 = 25.0;

fn main() {
    let smoke = std::env::var("TUCKER_OBS_SMOKE").is_ok_and(|v| v != "0");
    let pairs = if smoke { 3 } else { 5 };

    println!("obs_overhead — metrics-on vs metrics-off on the SP surrogate\n");

    // Generate once, outside all timing; the pipeline under test starts at
    // compression. Smoke keeps the surrogate itself (the queries below are
    // artifact-sized, not data-sized) but runs fewer trials.
    let ds = DatasetPreset::Sp.generate(1, 2024);
    let dims = ds.data.dims().to_vec();
    println!("dataset: SP surrogate dims={dims:?}, {pairs} alternating trial pairs");

    let dir = std::env::temp_dir();
    let path = dir.join(format!("tucker_obs_overhead_{}.tkr", std::process::id()));

    let mut off_ms: Vec<f64> = Vec::new();
    let mut on_ms: Vec<f64> = Vec::new();

    // One untimed warm-up run so file-system and allocator warm-up costs
    // are paid before either arm is measured.
    run_pipeline(&ds.data, &path);

    for pair in 0..pairs {
        for &on in &[false, true] {
            tucker_obs::metrics::set_enabled(on);
            let t0 = Instant::now();
            let checksum = run_pipeline(&ds.data, &path);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            tucker_obs::metrics::set_enabled(true);
            assert!(
                checksum.is_finite(),
                "pipeline produced a non-finite query checksum"
            );
            let arm = if on { "on " } else { "off" };
            println!("  pair {pair} metrics={arm} {ms:9.1} ms (checksum {checksum:.6e})");
            if on {
                on_ms.push(ms);
            } else {
                off_ms.push(ms);
            }
        }
    }
    std::fs::remove_file(&path).ok();

    let off_med = median(&mut off_ms);
    let on_med = median(&mut on_ms);
    let budget = off_med * (1.0 + REL_TOL) + ABS_FLOOR_MS;
    let delta_pct = (on_med - off_med) / off_med * 100.0;
    println!(
        "\nmedians: off {off_med:.1} ms, on {on_med:.1} ms ({delta_pct:+.2}%); \
         budget {budget:.1} ms (off x {:.2} + {ABS_FLOOR_MS:.0} ms floor)",
        1.0 + REL_TOL
    );

    if on_med <= budget {
        println!(
            "overhead gate passed: metrics-on is within the {:.0}% contract",
            REL_TOL * 100.0
        );
    } else {
        println!(
            "overhead gate FAILED: metrics-on median {on_med:.1} ms exceeds budget {budget:.1} ms"
        );
        std::process::exit(1);
    }
}

/// The pipeline under test: compress the surrogate, write the artifact,
/// reopen it lazily, and answer a representative query mix. Returns a
/// checksum over the query answers so the whole chain stays observable to
/// the optimizer (and so both arms can be asserted to do real work).
fn run_pipeline(data: &tucker_tensor::DenseTensor, path: &std::path::Path) -> f64 {
    Compressor::new(data)
        .tolerance(1e-3)
        .write_to(path)
        .unwrap_or_else(|e| panic!("compress/write failed: {e}"));

    let reader = Open::lazy()
        .cache_chunks(32)
        .open(path)
        .unwrap_or_else(|e| panic!("open failed: {e}"));

    let dims = reader.dims().to_vec();
    let mut checksum = 0.0f64;

    // Point queries scattered across the tensor.
    for k in 0..16usize {
        let idx: Vec<usize> = dims
            .iter()
            .enumerate()
            .map(|(m, &d)| (k * (m + 3) * 7919) % d)
            .collect();
        checksum += reader
            .element(&idx)
            .unwrap_or_else(|e| panic!("element query failed: {e}"));
    }

    // A window covering a corner of every mode.
    let ranges: Vec<(usize, usize)> = dims.iter().map(|&d| (0, (d / 3).max(1))).collect();
    let window = reader
        .reconstruct_range(&ranges)
        .unwrap_or_else(|e| panic!("range query failed: {e}"));
    checksum += window.as_slice().iter().sum::<f64>();

    // One hyperslice along the last mode.
    let last = dims.len() - 1;
    let slice = reader
        .reconstruct_slice(last, dims[last] / 2)
        .unwrap_or_else(|e| panic!("slice query failed: {e}"));
    checksum += slice.as_slice().iter().sum::<f64>();

    checksum
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}
