//! Fig. 1b — compression ratio vs normalized RMS error for the SP dataset.
//!
//! The paper reports ratios of roughly 5, 16, 55, 231 and 5 580 at errors
//! 10⁻⁶ … 10⁻² for the 550 GB SP dataset. The surrogate reproduces the shape:
//! orders-of-magnitude growth of the compression ratio as the tolerance is
//! relaxed, with the steepest gains between 10⁻⁴ and 10⁻².
//!
//! Run: `cargo run --release -p tucker-bench --bin fig1b_compression`

use tucker_bench::{eng, print_header, print_row};
use tucker_core::prelude::*;
use tucker_scidata::DatasetPreset;
use tucker_tensor::normalized_rms_error;

fn main() {
    let ds = DatasetPreset::Sp.generate(1, 42);
    let dims = ds.data.dims().to_vec();
    println!(
        "Fig. 1b — compression vs error, SP surrogate {:?} (paper: {:?}, 550 GB)\n",
        dims,
        DatasetPreset::Sp.paper_dims()
    );

    let widths = [12usize, 26, 16, 16];
    print_header(
        &["target eps", "reduced dims", "achieved err", "compression"],
        &widths,
    );
    let mut last_ratio = 0.0;
    for eps in [1e-6, 1e-5, 1e-4, 1e-3, 1e-2] {
        let result = st_hosvd(&ds.data, &SthosvdOptions::with_tolerance(eps));
        let rec = result.tucker.reconstruct();
        let err = normalized_rms_error(&ds.data, &rec);
        let ratio = result.tucker.compression_ratio(&dims);
        print_row(
            &[
                format!("{eps:.0e}"),
                format!("{:?}", result.ranks),
                eng(err, 2),
                format!("{:.1}x", ratio),
            ],
            &widths,
        );
        assert!(err <= eps + 1e-12, "tolerance guarantee violated");
        assert!(
            ratio >= last_ratio - 1e-9,
            "compression ratio must grow as the tolerance is relaxed"
        );
        last_ratio = ratio;
    }
    println!(
        "\nShape check (paper Fig. 1b): ratio grows monotonically by orders of\n\
         magnitude from eps = 1e-6 to 1e-2. Absolute values differ because the\n\
         surrogate is far smaller than the 550 GB original (see DESIGN.md)."
    );
}
