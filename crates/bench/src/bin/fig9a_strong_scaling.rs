//! Fig. 9a — strong scaling of ST-HOSVD and one HOOI iteration.
//!
//! The paper fixes a 200⁴ tensor compressed to 20⁴ and scales from 1 to 512
//! nodes (24·2ᵏ cores), reporting decreasing run time up to 256 nodes. On a
//! single host we cannot observe real speedups, so the harness does what the
//! paper's analysis enables: it *measures* the algorithm on small simulated
//! grids (verifying that per-rank work and communication volume behave as
//! derived in Sec. VI) and *evaluates the α-β-γ model* at the paper's scale to
//! regenerate the shape of Fig. 9a.
//!
//! Run: `cargo run --release -p tucker-bench --bin fig9a_strong_scaling`

use tucker_bench::{print_header, print_row, run_dist_sthosvd, st_hosvd_flops};
use tucker_core::prelude::*;
use tucker_distmem::{CostModel, MachineParams, ProcGrid};
use tucker_scidata::random_low_rank;

fn main() {
    // ------------------------------------------------------------------
    // Measured part: a 24^4 problem compressed to 6^4 on growing grids.
    // ------------------------------------------------------------------
    let dims = vec![24usize, 24, 24, 24];
    let ranks = vec![6usize, 6, 6, 6];
    let x = random_low_rank(99, &dims, &ranks);
    let opts = SthosvdOptions::with_ranks(ranks.clone());
    let flops = st_hosvd_flops(&dims, &ranks, &[0, 1, 2, 3]);

    println!(
        "Fig. 9a (measured, simulated runtime) — {:?} -> {:?}\n",
        dims, ranks
    );
    println!("{}\n", tucker_bench::transport_banner());
    let widths = [16usize, 8, 12, 16, 16];
    print_header(
        &["grid", "P", "time (s)", "words moved", "flops/rank"],
        &widths,
    );
    let grids = [
        vec![1usize, 1, 1, 1],
        vec![2, 1, 1, 1],
        vec![2, 2, 1, 1],
        vec![2, 2, 2, 1],
        vec![2, 2, 2, 2],
    ];
    let mut words = Vec::new();
    for g in &grids {
        let p: usize = g.iter().product();
        let report = run_dist_sthosvd(&x, g, &opts);
        words.push(report.comm.words_sent);
        print_row(
            &[
                format!("{g:?}"),
                format!("{p}"),
                format!("{:.3}", report.elapsed),
                format!("{}", report.comm.words_sent),
                format!("{:.2e}", flops / p as f64),
            ],
            &widths,
        );
    }
    // Communication grows with P while per-rank flops shrink — the strong-scaling
    // trade-off of Sec. VI.
    assert_eq!(words[0], 0, "a 1x1x1x1 grid must not communicate");
    assert!(
        words.windows(2).all(|w| w[1] >= w[0]),
        "total communication volume must not decrease as the grid grows"
    );

    // ------------------------------------------------------------------
    // Model part: the paper-scale curve (200^4 -> 20^4, P = 24·2^k).
    // ------------------------------------------------------------------
    println!("\nFig. 9a (alpha-beta-gamma model, paper scale 200^4 -> 20^4):\n");
    let paper_dims = vec![200usize; 4];
    let paper_ranks = vec![20usize; 4];
    let params = MachineParams::edison_like();
    let widths = [8usize, 8, 18, 18, 14];
    print_header(
        &[
            "nodes",
            "cores",
            "ST-HOSVD (s)",
            "+1 HOOI iter (s)",
            "speedup",
        ],
        &widths,
    );
    let mut first_time = None;
    let mut times = Vec::new();
    for k in 0..=9u32 {
        let nodes = 1usize << k;
        let cores = 24 * nodes;
        // Spread the cores over a 4-way grid as evenly as possible while
        // respecting P_n <= R_n (same constraint the paper's tuning uses).
        let grid_shape = best_grid(cores, &paper_ranks);
        let model = CostModel::new(ProcGrid::new(&grid_shape), params);
        let st = model.st_hosvd_time(&paper_dims, &paper_ranks, &[0, 1, 2, 3]);
        let hooi = model.hooi_iteration_time(&paper_dims, &paper_ranks);
        let total = st + hooi;
        let base = *first_time.get_or_insert(total);
        times.push(total);
        print_row(
            &[
                format!("{nodes}"),
                format!("{cores}"),
                format!("{st:.3}"),
                format!("{:.3}", total),
                format!("{:.1}x", base / total),
            ],
            &widths,
        );
    }
    // Shape check: time decreases substantially from 1 node to ~256 nodes, then
    // the curve flattens (communication/latency bound) — Fig. 9a's behaviour.
    assert!(times[4] < times[0] / 4.0, "should scale well to 16 nodes");
    let tail_improvement = times[times.len() - 2] / times[times.len() - 1];
    assert!(
        tail_improvement < 1.8,
        "scaling should flatten at high node counts (got {tail_improvement:.2}x at the tail)"
    );
    println!(
        "\nShape check passed: near-ideal scaling at low node counts, flattening at\n\
         high counts as communication dominates — the Fig. 9a curve."
    );
    // Under TUCKER_TRACE, close the sink so the chrome trace of the
    // distributed runs is complete and strictly valid JSON.
    tucker_obs::trace::uninstall();
}

/// Picks a 4-way factorization of `p` that minimizes the model's ST-HOSVD time
/// subject to P_n ≤ R_n, mimicking the paper's per-point grid tuning.
fn best_grid(p: usize, ranks: &[usize]) -> Vec<usize> {
    let params = MachineParams::edison_like();
    let dims = vec![200usize; 4];
    ProcGrid::enumerate_grids(p, 4)
        .into_iter()
        .filter(|g| g.iter().zip(ranks.iter()).all(|(&pg, &r)| pg <= r))
        .min_by(|a, b| {
            let ta = CostModel::new(ProcGrid::new(a), params).st_hosvd_time(
                &dims,
                &ranks.to_vec(),
                &[0, 1, 2, 3],
            );
            let tb = CostModel::new(ProcGrid::new(b), params).st_hosvd_time(
                &dims,
                &ranks.to_vec(),
                &[0, 1, 2, 3],
            );
            ta.partial_cmp(&tb).unwrap()
        })
        .expect("at least one admissible grid")
}
