//! Fig. 6 — mode-wise contributions to the error bound for the three
//! combustion datasets (HCCI, TJLR, SP).
//!
//! For each dataset and mode, prints the normalized mode-wise RMS error
//! `sqrt(Σ_{i>R} λ⁽ⁿ⁾ᵢ)/‖X‖` as a function of the retained rank `R`, plus the
//! rank at which each curve crosses the ε/√N threshold for ε = 10⁻³ (the dotted
//! line in the paper's figure).
//!
//! Run: `cargo run --release -p tucker-bench --bin fig6_modewise_error`

use tucker_bench::{eng, print_header, print_row};
use tucker_core::error::{mode_wise_error_curves, ranks_for_tolerance};
use tucker_scidata::DatasetPreset;

fn main() {
    let eps = 1e-3;
    for preset in DatasetPreset::all() {
        let ds = preset.generate(1, 2024);
        let dims = ds.data.dims().to_vec();
        let n = dims.len() as f64;
        println!(
            "\nFig. 6 ({}) — mode-wise normalized RMS error vs rank; surrogate {:?}",
            preset.name(),
            dims
        );
        let curves = mode_wise_error_curves(&ds.data);

        // Sample the curves at a handful of ranks (relative positions).
        let widths = [12usize, 10, 12, 12, 12, 12, 14];
        print_header(
            &[
                "mode",
                "dim",
                "R=1",
                "R=25%",
                "R=50%",
                "R=75%",
                "rank@eps/sqrtN",
            ],
            &widths,
        );
        let threshold = eps / n.sqrt();
        for (curve, label) in curves.iter().zip(ds.mode_labels.iter()) {
            let d = curve.eigenvalues.len();
            let at = |frac: f64| -> String {
                let r = ((d as f64 * frac).round() as usize).clamp(1, d);
                eng(curve.tail_error[r], 2)
            };
            print_row(
                &[
                    label.clone(),
                    format!("{d}"),
                    eng(curve.tail_error[1], 2),
                    at(0.25),
                    at(0.5),
                    at(0.75),
                    format!("{}", curve.rank_for_threshold(threshold)),
                ],
                &widths,
            );
        }

        let implied = ranks_for_tolerance(&curves, eps);
        println!(
            "  Ranks implied by eps = {eps:.0e} (the Fig. 6 threshold intersections): {implied:?}"
        );
    }
    println!(
        "\nShape check: every curve decays monotonically; the species mode crosses the\n\
         threshold at a small rank (low-rank chemistry); TJLR's spatial curves stay\n\
         high (least compressible), SP's drop fastest (most compressible)."
    );
}
