//! Tab. VI (this repo's extension) — service-layer latency, throughput, and
//! a hard byte-identity gate (ISSUE 6).
//!
//! The paper's use case for compressed artifacts is *post hoc* analysis:
//! many analysts interrogating one archived simulation. This harness stands
//! up the `tucker-serve` daemon on a loopback socket with three artifacts
//! (one per codec: F64, F32, Q16) behind a shared chunk cache sized
//! **below** the total chunk inventory, then drives it with in-process load
//! generators:
//!
//! * ≥ 8 concurrent clients (override: `TUCKER_TABLE6_CLIENTS`), each
//!   running a deterministic mixed workload — ~40% single elements,
//!   20% element batches, 25% range reconstructions, 10% hyperslices,
//!   5% stats/list control calls — against artifacts picked pseudo-randomly
//!   per request.
//! * **Byte-identity gate (hard):** every data-carrying response is compared
//!   bit-for-bit (`f64::to_bits`) against a direct in-process
//!   [`TensorQuery`] reader on the same artifact. Any mismatch exits
//!   non-zero — the service layer must be a transport, not an approximation.
//! * **Liveness gate (hard):** a watchdog aborts with a distinct exit code
//!   if the run wedges (lost reply, dead worker, stuck drain).
//! * Reported: per-operation p50/p99 latency, aggregate queries/sec, `Busy`
//!   retry count, and the server's shared-cache accounting (decoded chunks,
//!   hits, resident ≤ budget).
//!
//! Run: `cargo run --release -p tucker-bench --bin table6_service`
//! (set `TUCKER_TABLE6_SMOKE=1` for the quick CI shape).

use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tucker_api::{Open, TensorQuery, TuckerError};
use tucker_bench::{print_header, print_row};
use tucker_core::prelude::*;
use tucker_serve::{serve, ServeClient, ServeConfig};
use tucker_store::{Codec, TkrHeader, TkrMetadata, TkrWriter};
use tucker_tensor::DenseTensor;

/// Operation mix: cumulative per-mille thresholds over a `u64 % 1000` draw.
const MIX: [(Op, u64); 5] = [
    (Op::Element, 400),
    (Op::Elements, 600),
    (Op::Range, 850),
    (Op::Slice, 950),
    (Op::Control, 1000),
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Op {
    Element,
    Elements,
    Range,
    Slice,
    Control,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Element => "element",
            Op::Elements => "elements",
            Op::Range => "range",
            Op::Slice => "slice",
            Op::Control => "stats/list",
        }
    }
}

/// SplitMix64 — deterministic per-client stream, seeded by client id.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn wavy(dims: &[usize], phase: f64) -> DenseTensor {
    DenseTensor::from_fn(dims, |idx| {
        let mut v = phase;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 2) as f64 * 0.11 * i as f64 + phase).sin();
        }
        v
    })
}

/// Writes `t` with one core chunk per last-mode slab so the artifact has a
/// deep chunk directory (cache pressure needs many chunks, and the writer's
/// default target would pack these small cores into one chunk).
fn write_slab_chunked(path: &PathBuf, t: &TuckerTensor, codec: Codec, eps: f64) {
    let header = TkrHeader {
        dims: t.original_dims(),
        ranks: t.ranks(),
        eps,
        codec,
        quant_error_bound: 0.0,
        meta: TkrMetadata::default(),
    };
    let mut w = TkrWriter::create(path, header).expect("create artifact");
    for (n, u) in t.factors.iter().enumerate() {
        w.write_factor(n, u).expect("write factor");
    }
    let last = *t.core.dims().last().expect("non-scalar core");
    for s in 0..last {
        w.write_core_chunk(t.core.last_mode_slab(s, 1))
            .expect("write chunk");
    }
    w.finish().expect("finish artifact");
}

/// Client-side wire-request attempts per server opcode: every frame this
/// harness actually sent, busy-rejected retries included — exactly the
/// requests the daemon's per-opcode latency histograms observe.
#[derive(Default, Clone, Copy)]
struct WireAttempts {
    element: u64,
    elements: u64,
    range: u64,
    slice: u64,
    stats: u64,
    list: u64,
}

impl WireAttempts {
    fn add(&mut self, other: &WireAttempts) {
        self.element += other.element;
        self.elements += other.elements;
        self.range += other.range;
        self.slice += other.slice;
        self.stats += other.stats;
        self.list += other.list;
    }
}

struct ClientOutcome {
    /// (op, latency) per successful request.
    latencies: Vec<(Op, Duration)>,
    attempts: WireAttempts,
    busy_retries: u64,
    mismatches: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    id: usize,
    addr: std::net::SocketAddr,
    names: &[String],
    paths: &[PathBuf],
    dims: &[usize],
    ops: usize,
) -> Result<ClientOutcome, TuckerError> {
    let mut client = ServeClient::connect(addr).map_err(TuckerError::Io)?;
    // Each client keeps its own direct readers as the source of truth.
    let direct: Vec<_> = paths
        .iter()
        .map(|p| Open::eager().open(p))
        .collect::<Result<_, _>>()?;
    let mut rng = Rng(0x5EED_0000 + id as u64 * 0x1_0001);
    let mut out = ClientOutcome {
        latencies: Vec::with_capacity(ops),
        attempts: WireAttempts::default(),
        busy_retries: 0,
        mismatches: 0,
    };

    // Warm the connection with one untimed control request: the daemon's
    // accept loop polls every 20ms, so a fresh connection's first request
    // can absorb that much client-side wait before a session thread even
    // reads it — a delay the server-side histograms never see. It still
    // counts as a wire attempt (the server observes it).
    out.attempts.list += 1;
    client.list()?;

    for _ in 0..ops {
        let a = rng.below(names.len());
        let (name, reader) = (&names[a], &direct[a]);
        let draw = rng.next() % 1000;
        let op = MIX
            .iter()
            .find(|&&(_, hi)| draw < hi)
            .map(|&(op, _)| op)
            .unwrap_or(Op::Element);
        let started = Instant::now();
        let identical = match op {
            Op::Element => {
                let idx: Vec<usize> = dims.iter().map(|&d| rng.below(d)).collect();
                let got = retry_busy(&mut out.busy_retries, &mut out.attempts.element, || {
                    client.element(name, &idx)
                })?;
                let want = reader.element(&idx)?;
                got.to_bits() == want.to_bits()
            }
            Op::Elements => {
                let count = 4 + rng.below(13);
                let points: Vec<Vec<usize>> = (0..count)
                    .map(|_| dims.iter().map(|&d| rng.below(d)).collect())
                    .collect();
                let refs: Vec<&[usize]> = points.iter().map(Vec::as_slice).collect();
                let got = retry_busy(&mut out.busy_retries, &mut out.attempts.elements, || {
                    client.elements(name, &refs)
                })?;
                // The documented bit-exact reference for a batch is the
                // per-point element walk (the eager batch contraction is
                // only round-off-equivalent, by contract).
                let want: Vec<f64> = refs
                    .iter()
                    .map(|p| reader.element(p))
                    .collect::<Result<_, _>>()?;
                bits_equal(&got, &want)
            }
            Op::Range => {
                let ranges: Vec<(usize, usize)> = dims
                    .iter()
                    .map(|&d| {
                        let start = rng.below(d);
                        (start, 1 + rng.below(d - start))
                    })
                    .collect();
                let got = retry_busy(&mut out.busy_retries, &mut out.attempts.range, || {
                    client.reconstruct_range(name, &ranges)
                })?;
                let want = reader.reconstruct_range(&ranges)?;
                got.dims() == want.dims() && bits_equal(got.as_slice(), want.as_slice())
            }
            Op::Slice => {
                let mode = rng.below(dims.len());
                let index = rng.below(dims[mode]);
                let got = retry_busy(&mut out.busy_retries, &mut out.attempts.slice, || {
                    client.reconstruct_slice(name, mode, index)
                })?;
                let want = reader.reconstruct_slice(mode, index)?;
                got.dims() == want.dims() && bits_equal(got.as_slice(), want.as_slice())
            }
            Op::Control => {
                if rng.next() % 2 == 0 {
                    out.attempts.stats += 1;
                    let stats = client.stats()?;
                    stats.artifacts.len() == names.len()
                } else {
                    out.attempts.list += 1;
                    client.list()?.len() == names.len()
                }
            }
        };
        out.latencies.push((op, started.elapsed()));
        if !identical {
            out.mismatches += 1;
        }
    }
    Ok(out)
}

/// Retries typed `Busy` backpressure (brief backoff); anything else is
/// final. Every call of `f` — busy rejections included — is one wire
/// request the server observed, so `attempts` counts them all.
fn retry_busy<T>(
    counter: &mut u64,
    attempts: &mut u64,
    mut f: impl FnMut() -> Result<T, TuckerError>,
) -> Result<T, TuckerError> {
    loop {
        *attempts += 1;
        match f() {
            Err(TuckerError::Busy { .. }) => {
                *counter += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            other => return other,
        }
    }
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Nearest-rank percentile: the `ceil(p·n)`-th smallest sample, with `p`
/// clamped to `[0, 1]` and the rank explicitly clamped to `1..=n` (so
/// `p = 0` is the minimum and `p = 1` the maximum, never out of bounds);
/// `ZERO` on an empty sample set. This is the same definition
/// `tucker_obs::metrics::HistSnapshot::quantile_us` uses, so the daemon
/// cross-check below compares like with like.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let p = p.clamp(0.0, 1.0);
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Parses one `hist <name> count=N sum_us=S p50=X p99=Y` exposition line,
/// returning `(count, p50_us, p99_us)`.
fn parse_hist(exposition: &str, name: &str) -> Option<(u64, u64, u64)> {
    let prefix = format!("hist {name} ");
    let line = exposition.lines().find(|l| l.starts_with(&prefix))?;
    let (mut count, mut p50, mut p99) = (None, None, None);
    for field in line.split_whitespace().skip(2) {
        let (key, value) = field.split_once('=')?;
        let v = value.parse::<u64>().ok()?;
        match key {
            "count" => count = Some(v),
            "p50" => p50 = Some(v),
            "p99" => p99 = Some(v),
            _ => {}
        }
    }
    Some((count?, p50?, p99?))
}

/// Noise floor for the percentile cross-check: below this the loopback
/// round trip the client measures on top of the server's handle+write
/// window dominates, and bucket comparison is meaningless.
const XCHECK_FLOOR_US: u64 = 256;

/// Compares a client-measured percentile against the daemon's histogram
/// value for the same opcode: both are clamped to the noise floor and must
/// land within one power-of-two latency bucket of each other.
fn percentile_agrees(client_us: u64, server_us: u64) -> bool {
    let cb = tucker_obs::metrics::bucket_index(client_us.max(XCHECK_FLOOR_US));
    let sb = tucker_obs::metrics::bucket_index(server_us.max(XCHECK_FLOOR_US));
    cb.abs_diff(sb) <= 1
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn main() {
    let smoke = std::env::var("TUCKER_TABLE6_SMOKE").is_ok_and(|v| v == "1");
    let clients: usize = std::env::var("TUCKER_TABLE6_CLIENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&c| c >= 1)
        .unwrap_or(8);
    let (dims, ops_per_client, eps) = if smoke {
        (vec![14usize, 12, 16], 40usize, 1e-3)
    } else {
        (vec![24usize, 20, 32], 250usize, 1e-4)
    };

    // One artifact per codec, slab-per-chunk; the shared budget holds about
    // a third of the chunk inventory so the cache is always under pressure.
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let codecs = [Codec::F64, Codec::F32, Codec::Q16];
    let mut names = Vec::new();
    let mut paths = Vec::new();
    let mut total_chunks = 0usize;
    for (i, codec) in codecs.iter().enumerate() {
        let x = wavy(&dims, 0.3 + 0.7 * i as f64);
        let r = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps));
        let path = tmp.join(format!("table6_{pid}_{}.tkr", codec.name()));
        write_slab_chunked(&path, &r.tucker, *codec, eps);
        // Slab-per-chunk: the chunk inventory is the truncated last-mode rank.
        total_chunks += *r.tucker.core.dims().last().expect("non-scalar core");
        names.push(format!("field-{}", codec.name()));
        paths.push(path);
    }
    let budget = (total_chunks / 3).max(2);

    let registry: Vec<(String, PathBuf)> =
        names.iter().cloned().zip(paths.iter().cloned()).collect();
    let handle = serve(
        "127.0.0.1:0",
        &registry,
        ServeConfig {
            cache_chunks: budget,
            cache_stripes: 4,
            ..ServeConfig::default()
        },
    )
    .expect("daemon must bind a loopback port");
    let addr = handle.addr();

    println!(
        "Tab. VI — tucker-serve under concurrent load\n\
         ({clients} clients x {ops_per_client} ops, artifacts {dims:?} per codec {{F64, F32, Q16}},\n\
         \u{20}{total_chunks} chunks total vs shared budget {budget}, daemon on {addr})\n"
    );

    // Watchdog: the whole run must finish well inside the deadline budget.
    let finished = Arc::new(AtomicBool::new(false));
    let limit = if smoke { 120 } else { 600 };
    {
        let finished = Arc::clone(&finished);
        std::thread::spawn(move || {
            let step = Duration::from_millis(200);
            let mut waited = Duration::ZERO;
            while waited.as_secs() < limit {
                if finished.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(step);
                waited += step;
            }
            eprintln!("table6_service: FAILED — run exceeded {limit}s; service wedged");
            exit(3);
        });
    }

    let wall = Instant::now();
    let failures = Arc::new(AtomicU64::new(0));
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for id in 0..clients {
            let (names, paths, dims) = (&names, &paths, &dims);
            let failures = Arc::clone(&failures);
            joins.push(scope.spawn(move || {
                match run_client(id, addr, names, paths, dims, ops_per_client) {
                    Ok(outcome) => Some(outcome),
                    Err(e) => {
                        eprintln!("client {id}: fatal error: {e}");
                        failures.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            }));
        }
        joins
            .into_iter()
            .filter_map(|j| j.join().ok().flatten())
            .collect()
    });
    let elapsed = wall.elapsed();
    finished.store(true, Ordering::Release);

    let total_ops: usize = outcomes.iter().map(|o| o.latencies.len()).sum();
    let busy_retries: u64 = outcomes.iter().map(|o| o.busy_retries).sum();
    let mismatches: u64 = outcomes.iter().map(|o| o.mismatches).sum();

    let widths = [12usize, 10, 12, 12];
    print_header(&["op", "count", "p50 (ms)", "p99 (ms)"], &widths);
    let mut per_op: Vec<(Op, Vec<Duration>)> = Vec::new();
    for op in [Op::Element, Op::Elements, Op::Range, Op::Slice, Op::Control] {
        let mut lat: Vec<Duration> = outcomes
            .iter()
            .flat_map(|o| o.latencies.iter())
            .filter(|&&(kind, _)| kind == op)
            .map(|&(_, d)| d)
            .collect();
        lat.sort_unstable();
        print_row(
            &[
                op.name().to_string(),
                lat.len().to_string(),
                ms(percentile(&lat, 0.50)),
                ms(percentile(&lat, 0.99)),
            ],
            &widths,
        );
        per_op.push((op, lat));
    }
    let mut all: Vec<Duration> = outcomes
        .iter()
        .flat_map(|o| o.latencies.iter().map(|&(_, d)| d))
        .collect();
    all.sort_unstable();
    println!(
        "\ntotal: {total_ops} ops in {:.2}s — {:.0} queries/sec, p50 {} ms, p99 {} ms, \
         {busy_retries} busy retries",
        elapsed.as_secs_f64(),
        total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        ms(percentile(&all, 0.50)),
        ms(percentile(&all, 0.99)),
    );

    // Server-side accounting, then a drained shutdown. The metrics scrape
    // comes first so the daemon's per-opcode histograms are compared
    // against exactly the load-generation traffic (the stats probe below
    // would otherwise land in `serve.op.stats.us` before the render).
    let mut probe = ServeClient::connect(addr).expect("metrics probe connects");
    let exposition = probe.metrics().expect("metrics probe answers");
    let stats = probe.stats().expect("stats probe answers");
    drop(probe);
    let stats_at_close = handle.shutdown();
    let resident: u64 = stats.artifacts.iter().map(|a| a.resident_chunks).sum();
    println!(
        "server: served {} responses, {} busy rejections, {} protocol errors",
        stats_at_close.served, stats_at_close.busy_rejections, stats_at_close.protocol_errors
    );
    for a in &stats.artifacts {
        println!(
            "  {:<12} decoded={:<5} hits={:<7} resident={}",
            a.name, a.decoded_chunks, a.cache_hits, a.resident_chunks
        );
    }
    for p in &paths {
        std::fs::remove_file(p).ok();
    }

    // Cross-check the harness's own latency accounting against the daemon's
    // per-opcode histograms: request counts must match *exactly* (both
    // sides count every decoded wire request, busy rejections included),
    // and p50/p99 must land within one power-of-two bucket once above the
    // loopback noise floor.
    let mut attempts = WireAttempts::default();
    for o in &outcomes {
        attempts.add(&o.attempts);
    }
    let mut xcheck_failures = 0u64;
    println!("\ncross-check: client accounting vs daemon per-opcode histograms");
    let count_checks = [
        ("serve.op.element.us", attempts.element),
        ("serve.op.elements.us", attempts.elements),
        ("serve.op.range.us", attempts.range),
        ("serve.op.slice.us", attempts.slice),
        ("serve.op.stats.us", attempts.stats),
        ("serve.op.list.us", attempts.list),
    ];
    for (name, want) in count_checks {
        match parse_hist(&exposition, name) {
            Some((count, _, _)) if count == want => {
                println!("  {name:<24} count={count} matches client attempts exactly");
            }
            Some((count, _, _)) => {
                eprintln!("  {name:<24} count={count} != client attempts {want}");
                xcheck_failures += 1;
            }
            // A histogram nobody observed is never registered — only an
            // error if the client actually sent such requests.
            None if want == 0 => {}
            None => {
                eprintln!("  {name:<24} missing from the exposition ({want} attempts)");
                xcheck_failures += 1;
            }
        }
    }
    let pct_checks = [
        (Op::Element, "serve.op.element.us", attempts.element),
        (Op::Elements, "serve.op.elements.us", attempts.elements),
        (Op::Range, "serve.op.range.us", attempts.range),
        (Op::Slice, "serve.op.slice.us", attempts.slice),
    ];
    for (op, name, att) in pct_checks {
        let Some(lat) = per_op.iter().find(|(o, _)| *o == op).map(|(_, l)| l) else {
            continue;
        };
        // Skip under-sampled ops, and ops where busy retries put fast
        // rejection observations into the server distribution that the
        // client's per-success timings cannot contain.
        if lat.len() < 10 || att != lat.len() as u64 {
            continue;
        }
        let Some((_, sp50, sp99)) = parse_hist(&exposition, name) else {
            continue;
        };
        let cp50 = percentile(lat, 0.50).as_micros() as u64;
        let cp90 = percentile(lat, 0.90).as_micros() as u64;
        let cp99 = percentile(lat, 0.99).as_micros() as u64;
        // The p99 comparison is only meaningful when the client's own tail
        // is stable at bucket granularity (p99 within one power-of-two
        // bucket of p90). Otherwise the p99 sample — with ~100 samples it
        // is the largest one or two — is an isolated client-thread
        // deschedule the server-side window never contains (this harness
        // runs clients, sessions, and workers time-sliced on the same
        // machine), and the daemon cannot be expected to reproduce it.
        let tail_trusted = cp99 <= cp90.saturating_mul(2).max(XCHECK_FLOOR_US);
        let mut checks = vec![("p50", cp50, sp50)];
        if tail_trusted {
            checks.push(("p99", cp99, sp99));
        } else {
            println!(
                "  {name:<24} p99 client {cp99}us is an isolated scheduling spike \
                 (client p90 {cp90}us); skipping the tail comparison"
            );
        }
        for (which, c, s) in checks {
            if percentile_agrees(c, s) {
                println!("  {name:<24} {which} client {c}us ~ daemon {s}us (within one bucket)");
            } else {
                eprintln!("  {name:<24} {which} client {c}us vs daemon {s}us: beyond one bucket");
                xcheck_failures += 1;
            }
        }
    }

    let client_failures = failures.load(Ordering::Relaxed);
    let mut failed = false;
    if client_failures > 0 {
        eprintln!("table6_service: FAILED — {client_failures} client(s) aborted");
        failed = true;
    }
    if mismatches > 0 {
        eprintln!(
            "table6_service: FAILED — {mismatches} response(s) were not byte-identical \
             to the direct reader"
        );
        failed = true;
    }
    if resident > budget as u64 {
        eprintln!(
            "table6_service: FAILED — {resident} resident chunks exceed the shared budget {budget}"
        );
        failed = true;
    }
    if xcheck_failures > 0 {
        eprintln!(
            "table6_service: FAILED — {xcheck_failures} metrics cross-check(s) disagreed \
             with the daemon's histograms"
        );
        failed = true;
    }
    let expected_ops = (clients * ops_per_client) as u64;
    if (total_ops as u64) < expected_ops && client_failures == 0 {
        eprintln!("table6_service: FAILED — only {total_ops} of {expected_ops} ops completed");
        failed = true;
    }
    if failed {
        exit(1);
    }
    println!(
        "\nbyte-identity gate passed: every data response matched the direct reader bit-for-bit"
    );
}
