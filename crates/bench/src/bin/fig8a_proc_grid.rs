//! Fig. 8a — effect of the processor-grid configuration on ST-HOSVD run time,
//! with a per-kernel (Gram / Evecs / TTM) breakdown.
//!
//! The paper runs a 384⁴ tensor reduced to 96⁴ on 384 processors and varies the
//! grid. The harness runs a scaled-down cube (same 4:1 per-mode reduction) over
//! every distinct 4-way factorization of P on the simulated runtime, reports
//! the measured breakdown, and additionally ranks the grids with the α-β-γ
//! model at the paper's scale (384⁴, P = 384).
//!
//! Run: `cargo run --release -p tucker-bench --bin fig8a_proc_grid`

use tucker_bench::{print_header, print_row, run_dist_sthosvd};
use tucker_core::prelude::*;
use tucker_distmem::{CostModel, MachineParams, ProcGrid};
use tucker_scidata::random_low_rank;

fn main() {
    // Scaled-down problem: 20^4 tensor reduced to 5^4 (the paper's 4x per-mode
    // reduction), P = 8 so all factorizations are runnable on one host.
    let dims = vec![20usize, 20, 20, 20];
    let ranks = vec![5usize, 5, 5, 5];
    let p = 8usize;
    let x = random_low_rank(77, &dims, &ranks);
    let opts = SthosvdOptions::with_ranks(ranks.clone());

    println!(
        "Fig. 8a — ST-HOSVD time vs processor grid (measured: {:?} -> {:?}, P = {p})\n",
        dims, ranks
    );
    println!("{}\n", tucker_bench::transport_banner());
    let grids: Vec<Vec<usize>> = ProcGrid::enumerate_grids(p, 4)
        .into_iter()
        .filter(|g| g.iter().zip(ranks.iter()).all(|(&pg, &r)| pg <= r))
        .collect();

    let widths = [16usize, 12, 12, 12, 12, 12];
    print_header(
        &[
            "grid",
            "total (s)",
            "gram (s)",
            "evecs (s)",
            "ttm (s)",
            "rel.",
        ],
        &widths,
    );
    let mut measured: Vec<(Vec<usize>, f64)> = Vec::new();
    let mut reports = Vec::new();
    for g in &grids {
        let report = run_dist_sthosvd(&x, g, &opts);
        measured.push((g.clone(), report.elapsed));
        reports.push(report);
    }
    let best = measured
        .iter()
        .map(|(_, t)| *t)
        .fold(f64::INFINITY, f64::min);
    for report in &reports {
        let (gr, ev, tt) = report.kernel_totals();
        print_row(
            &[
                format!("{:?}", report.grid),
                format!("{:.3}", report.elapsed),
                format!("{:.3}", gr),
                format!("{:.3}", ev),
                format!("{:.3}", tt),
                format!("{:.2}", report.elapsed / best),
            ],
            &widths,
        );
    }

    // Paper-scale ranking from the cost model (384^4 -> 96^4 on P = 384).
    println!("\nCost-model ranking at the paper's scale (384^4 -> 96^4, P = 384):");
    let paper_dims = vec![384usize; 4];
    let paper_ranks = vec![96usize; 4];
    let mut model_times: Vec<(Vec<usize>, f64, f64)> = ProcGrid::enumerate_grids(384, 4)
        .into_iter()
        .filter(|g| g.iter().all(|&pg| pg <= 96))
        .map(|g| {
            let model = CostModel::new(ProcGrid::new(&g), MachineParams::edison_like());
            let (gram, evecs, ttm) =
                model.st_hosvd_breakdown(&paper_dims, &paper_ranks, &[0, 1, 2, 3]);
            let params = MachineParams::edison_like();
            let total = gram.time(&params) + evecs.time(&params) + ttm.time(&params);
            (g, total, gram.time(&params))
        })
        .collect();
    model_times.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let widths = [20usize, 16, 16];
    print_header(&["grid", "predicted (s)", "gram share"], &widths);
    for (g, t, gram_t) in model_times.iter().take(5) {
        print_row(
            &[
                format!("{g:?}"),
                format!("{t:.3}"),
                format!("{:.0}%", 100.0 * gram_t / t),
            ],
            &widths,
        );
    }
    let best_grid = &model_times[0].0;
    assert_eq!(
        best_grid[0], 1,
        "the best grids put P_1 = 1 so the first (most expensive) Gram needs no ring exchange"
    );
    println!(
        "\nShape check passed: as in Sec. VIII-B, the best grids have P_1 = 1 (no\n\
         communication in the dominant first-mode Gram), and Gram dominates the\n\
         first iteration's cost."
    );
    // Under TUCKER_TRACE, close the sink so the chrome trace of the
    // distributed runs (dist.gram/dist.evecs/dist.ttm spans from every
    // simulated rank) is complete and strictly valid JSON.
    tucker_obs::trace::uninstall();
}
