//! Tab. I — communication costs of the collectives in the α-β-γ model, and a
//! validation of the model against the words actually moved by the simulated
//! runtime's collective implementations.
//!
//! Run: `cargo run --release -p tucker-bench --bin table1_costmodel`

use tucker_bench::{print_header, print_row};
use tucker_distmem::collectives::{all_gather, all_reduce, reduce};
use tucker_distmem::costmodel::collective_cost;
use tucker_distmem::{spmd, SubCommunicator};

fn measure(p: usize, w: usize, which: &str) -> (u64, u64) {
    let which = which.to_string();
    let results = spmd(p, move |comm| {
        let group = SubCommunicator::world_group(&comm);
        let data = vec![1.0f64; w];
        match which.as_str() {
            "all-gather" => {
                let _ = all_gather(&group, &data);
            }
            "reduce" => {
                let _ = reduce(&group, 0, &data);
            }
            "all-reduce" => {
                let _ = all_reduce(&group, &data);
            }
            _ => unreachable!(),
        }
        comm.stats().snapshot()
    });
    let total_words: u64 = results.iter().map(|s| s.words_sent).sum();
    let max_msgs: u64 = results.iter().map(|s| s.messages_sent).max().unwrap_or(0);
    (total_words / p as u64, max_msgs)
}

fn main() {
    println!("Tab. I — collective communication costs (alpha-beta-gamma model)\n");
    println!("Model formulas (per participating rank, W words, P ranks):");
    println!("  send/recv   : alpha + beta*W");
    println!("  all-gather  : alpha*log P + beta*(P-1)/P*W");
    println!("  reduce      : alpha*log P + (beta+gamma)*(P-1)/P*W");
    println!("  all-reduce  : 2*alpha*log P + (2*beta+gamma)*(P-1)/P*W\n");

    let p = 8usize;
    let w = 4096usize;
    println!("Validation against the simulated runtime (P = {p}, W = {w} words):\n");
    let widths = [12usize, 20, 20, 14, 14];
    print_header(
        &[
            "collective",
            "model words/rank",
            "measured words/rank",
            "ratio",
            "max msgs",
        ],
        &widths,
    );

    let cases: [(&str, f64); 3] = [
        (
            "all-gather",
            collective_cost::all_gather(p as f64, w as f64).words,
        ),
        ("reduce", collective_cost::reduce(p as f64, w as f64).words),
        (
            "all-reduce",
            collective_cost::all_reduce(p as f64, w as f64).words,
        ),
    ];
    for (name, predicted) in cases {
        // For all-gather the model's W is the *total* gathered volume; each rank
        // contributes W/P words, so measure with w/p per rank for that case.
        let per_rank_input = if name == "all-gather" { w / p } else { w };
        let (measured, msgs) = measure(p, per_rank_input, name);
        let ratio = measured as f64 / predicted.max(1.0);
        print_row(
            &[
                name.to_string(),
                format!("{predicted:.0}"),
                format!("{measured}"),
                format!("{ratio:.2}"),
                format!("{msgs}"),
            ],
            &widths,
        );
        assert!(
            ratio < 3.0 && ratio > 0.3,
            "{name}: measured volume deviates from the model by more than 3x"
        );
    }
    println!(
        "\nThe ring/binomial implementations used by the runtime move the volume the\n\
         model predicts to within small constant factors, so the Tab. I costs are a\n\
         faithful basis for the Sec. VI analysis and the Fig. 9 extrapolations."
    );
}
