//! Fig. 9b — weak scaling of ST-HOSVD and one HOOI iteration.
//!
//! The paper fixes the data per processor ((200k)⁴ tensors on 24·k⁴ cores for
//! k = 1…6, up to 15 TB on 1296 nodes) and reports GFLOP/s per core, which
//! falls from ~66% of peak on one node to ~17% on 1296 nodes. The harness
//! measures small simulated-runtime runs with constant per-rank data (checking
//! that per-rank computation stays constant while communication grows) and then
//! evaluates the α-β-γ model at the paper's scale to regenerate the efficiency
//! curve.
//!
//! Run: `cargo run --release -p tucker-bench --bin fig9b_weak_scaling`

use tucker_bench::{print_header, print_row, run_dist_sthosvd, st_hosvd_flops};
use tucker_core::prelude::*;
use tucker_distmem::{CostModel, MachineParams, ProcGrid};
use tucker_scidata::random_low_rank;

fn main() {
    // ------------------------------------------------------------------
    // Measured part: per-rank block held at 12^4 while the grid grows.
    // ------------------------------------------------------------------
    println!("Fig. 9b (measured, simulated runtime) — constant 12^4 data per rank\n");
    println!("{}\n", tucker_bench::transport_banner());
    let widths = [16usize, 8, 14, 18, 18];
    print_header(&["grid", "P", "dims", "words moved", "flops/rank"], &widths);
    let mut per_rank_flops = Vec::new();
    for k in 1..=2usize {
        let grid: Vec<usize> = vec![k, k, k, k];
        let p: usize = grid.iter().product();
        let dims: Vec<usize> = vec![12 * k; 4];
        let ranks: Vec<usize> = vec![3 * k; 4];
        let x = random_low_rank(123, &dims, &ranks);
        let opts = SthosvdOptions::with_ranks(ranks.clone());
        let report = run_dist_sthosvd(&x, &grid, &opts);
        let flops = st_hosvd_flops(&dims, &ranks, &[0, 1, 2, 3]) / p as f64;
        per_rank_flops.push(flops);
        print_row(
            &[
                format!("{grid:?}"),
                format!("{p}"),
                format!("{:?}", dims),
                format!("{}", report.comm.words_sent),
                format!("{flops:.2e}"),
            ],
            &widths,
        );
    }
    // Weak scaling: per-rank flops stay within a small factor as P grows
    // (they grow slightly because the reduced dimensions grow with k, exactly
    // as in the paper's setup).
    let ratio = per_rank_flops[1] / per_rank_flops[0];
    assert!(
        ratio < 4.0,
        "per-rank work should stay bounded in the weak-scaling regime (got {ratio:.2}x)"
    );

    // ------------------------------------------------------------------
    // Model part: the paper-scale efficiency curve ((200k)^4 on 24·k^4 cores).
    // ------------------------------------------------------------------
    println!("\nFig. 9b (alpha-beta-gamma model, paper scale (200k)^4 -> (20k)^4, P = 24·k^4):\n");
    let params = MachineParams::edison_like();
    let peak_per_core = 1.0 / params.gamma; // flop/s
    let widths = [6usize, 10, 14, 16, 18, 14];
    print_header(
        &[
            "k",
            "nodes",
            "cores",
            "data size",
            "GFLOPS/core",
            "% of peak",
        ],
        &widths,
    );
    let mut efficiencies = Vec::new();
    for k in 1..=6usize {
        let nodes = k * k * k * k;
        let cores = 24 * nodes;
        let dims = vec![200 * k; 4];
        let ranks = vec![20 * k; 4];
        // The paper tunes over a few candidate grids; use the same three shapes.
        let candidates = [
            vec![1, 1, 4 * k * k, 6 * k * k],
            vec![k, k, 4 * k, 6 * k],
            vec![k, 2 * k, 3 * k, 4 * k],
        ];
        let best = candidates
            .iter()
            .filter(|g| g.iter().product::<usize>() == cores)
            .map(|g| {
                let model = CostModel::new(ProcGrid::new(g), params);
                model.st_hosvd_time(&dims, &ranks, &[0, 1, 2, 3])
                    + model.hooi_iteration_time(&dims, &ranks)
            })
            .fold(f64::INFINITY, f64::min);
        let model1 = CostModel::new(ProcGrid::new(&vec![1; 4]), params);
        let total_flops = model1.st_hosvd(&dims, &ranks, &[0, 1, 2, 3]).flops
            + model1.hooi_iteration(&dims, &ranks).flops;
        let gflops_per_core = total_flops / best / cores as f64 / 1e9;
        let efficiency = gflops_per_core * 1e9 / peak_per_core;
        efficiencies.push(efficiency);
        let data_gb = dims.iter().map(|&d| d as f64).product::<f64>() * 8.0 / 1e9;
        print_row(
            &[
                format!("{k}"),
                format!("{nodes}"),
                format!("{cores}"),
                format!("{:.1} GB", data_gb),
                format!("{gflops_per_core:.2}"),
                format!("{:.0}%", 100.0 * efficiency),
            ],
            &widths,
        );
    }
    // Shape check: efficiency decreases with scale and stays within the band the
    // paper reports (tens of percent at one node, >10% at 1296 nodes).
    assert!(
        efficiencies.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        "per-core efficiency must not increase with scale"
    );
    assert!(
        efficiencies[0] > 0.3,
        "single-node efficiency should be tens of percent"
    );
    assert!(
        *efficiencies.last().unwrap() > 0.05,
        "largest-scale efficiency should stay above a few percent"
    );
    println!(
        "\nShape check passed: per-core performance decays gradually as the machine\n\
         grows — the Fig. 9b curve (the paper reports 66% of peak at one node and\n\
         17% at 1296 nodes; the model reproduces that qualitative falloff)."
    );
    // Under TUCKER_TRACE, close the sink so the chrome trace of the
    // distributed runs is complete and strictly valid JSON.
    tucker_obs::trace::uninstall();
}
