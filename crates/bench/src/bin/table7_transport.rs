//! Table 7 (extension) — transport gate: the TCP multi-process backend vs
//! the in-process reference, on the same grid.
//!
//! This is a CI gate, not just a report. It fails (non-zero exit) unless:
//!
//! 1. **Bit identity** — the gathered Tucker decomposition and the written
//!    `.tkr` artifact are byte-identical across `inproc` and `tcp` backends
//!    on the same processor grid (the ARCHITECTURE §10 contract).
//! 2. **Real bytes moved** — the TCP run reports non-zero on-wire bytes in
//!    its `CommStats` and in the process-global `net.bytes_*` counters, and
//!    its logical volume (words/messages) exactly matches the in-process
//!    run.
//! 3. **No wedge** — the whole gate finishes under a watchdog deadline
//!    (default 240 s, `TUCKER_GATE_TIMEOUT_S` to override); a hang exits 3.
//!
//! It also prints the per-collective latency histograms (`distmem.*.us`)
//! for both backends — the measured-α/β side of the paper's cost model on
//! real sockets.
//!
//! Run: `TUCKER_RANKS=4 cargo run --release -p tucker-bench --bin table7_transport`

use tucker_bench::{print_header, print_row};
use tucker_core::dist::{dist_st_hosvd, DistTensor};
use tucker_core::sthosvd::SthosvdOptions;
use tucker_distmem::{Communicator, ProcGrid, SpmdHandle};
use tucker_net::{env_ranks, spmd_transport, TransportKind};
use tucker_obs::metrics::Histogram;
use tucker_store::{write_tucker, Codec, StoreOptions};
use tucker_tensor::DenseTensor;

// Same-name statics resolve to the same registry slots the collectives
// record into, so we can read their latency distributions here.
static H_BROADCAST: Histogram = Histogram::new("distmem.broadcast.us");
static H_REDUCE: Histogram = Histogram::new("distmem.reduce.us");
static H_ALL_GATHER: Histogram = Histogram::new("distmem.all_gather.us");
static H_REDUCE_SCATTER: Histogram = Histogram::new("distmem.reduce_scatter.us");
static H_ALL_REDUCE: Histogram = Histogram::new("distmem.all_reduce.us");
static H_GATHER: Histogram = Histogram::new("distmem.gather.us");
static H_SCATTER: Histogram = Histogram::new("distmem.scatter.us");

fn collective_hists() -> [(&'static str, &'static Histogram); 7] {
    [
        ("broadcast", &H_BROADCAST),
        ("reduce", &H_REDUCE),
        ("all_gather", &H_ALL_GATHER),
        ("reduce_scatter", &H_REDUCE_SCATTER),
        ("all_reduce", &H_ALL_REDUCE),
        ("gather", &H_GATHER),
        ("scatter", &H_SCATTER),
    ]
}

fn grid_for(p: usize) -> Vec<usize> {
    match p {
        1 => vec![1, 1, 1],
        2 => vec![2, 1, 1],
        4 => vec![2, 2, 1],
        8 => vec![2, 2, 2],
        other => vec![other, 1, 1],
    }
}

fn structured_tensor(dims: &[usize]) -> DenseTensor {
    DenseTensor::from_fn(dims, |idx| {
        let mut v = 1.0;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 1) as f64 * 0.17 * i as f64).sin();
        }
        v
    })
}

/// Runs dist_st_hosvd on `kind`, returning rank 0's artifact bytes (shipped
/// through the region result table, so the comparison below happens in the
/// launcher *and* in every worker process identically).
fn run_backend(
    kind: TransportKind,
    grid: &[usize],
    x: &DenseTensor,
    opts: &SthosvdOptions,
    exec_args: &[String],
) -> SpmdHandle<Vec<u8>> {
    let x = x.clone();
    let opts = opts.clone();
    let tag = kind.label();
    spmd_transport(
        kind,
        "table7",
        ProcGrid::new(grid),
        exec_args,
        move |comm: Communicator| -> Vec<u8> {
            let dx = DistTensor::from_global(&comm, &x);
            let r = dist_st_hosvd(&comm, &dx, &opts);
            match r.tucker.gather_to_root(&comm) {
                Some(t) => {
                    let path = std::env::temp_dir()
                        .join(format!("table7_{}_{tag}.tkr", std::process::id()));
                    write_tucker(&path, &t, &StoreOptions::new(Codec::F64, 1e-6))
                        .expect("write .tkr");
                    let bytes = std::fs::read(&path).expect("read .tkr back");
                    let _ = std::fs::remove_file(&path);
                    bytes
                }
                None => vec![],
            }
        },
    )
}

fn main() {
    // Watchdog: a wedged transport must fail CI loudly, not hang it.
    let deadline = std::env::var("TUCKER_GATE_TIMEOUT_S")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(240);
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(deadline));
        eprintln!("table7_transport: watchdog expired after {deadline}s — transport wedged");
        std::process::exit(3);
    });

    let p = env_ranks();
    let grid = grid_for(p);
    let dims = [16usize, 14, 12];
    let x = structured_tensor(&dims);
    let opts = SthosvdOptions::with_ranks(vec![5, 4, 4]);
    let exec_args: Vec<String> = std::env::args().skip(1).collect();

    println!("Table 7 (extension) — transport equivalence gate, grid {grid:?} (P = {p})\n");

    let inproc = run_backend(TransportKind::InProc, &grid, &x, &opts, &exec_args);
    let inproc_hists: Vec<_> = collective_hists()
        .iter()
        .map(|(n, h)| (*n, h.snapshot()))
        .collect();
    let tcp = run_backend(TransportKind::Tcp, &grid, &x, &opts, &exec_args);
    let tcp_hists: Vec<_> = collective_hists()
        .iter()
        .map(|(n, h)| (*n, h.snapshot()))
        .collect();

    // --- per-collective latency (the measured α/β story on real sockets) --
    let widths = [16usize, 10, 12, 12, 10, 12, 12];
    print_header(
        &[
            "collective",
            "n(inproc)",
            "p50 (µs)",
            "p99 (µs)",
            "n(tcp)",
            "p50 (µs)",
            "p99 (µs)",
        ],
        &widths,
    );
    for ((name, before), (_, after)) in inproc_hists.iter().zip(tcp_hists.iter()) {
        let tcp_count = after.count - before.count;
        print_row(
            &[
                name.to_string(),
                before.count.to_string(),
                before.quantile_us(0.5).to_string(),
                before.quantile_us(0.99).to_string(),
                tcp_count.to_string(),
                after.quantile_us(0.5).to_string(),
                after.quantile_us(0.99).to_string(),
            ],
            &widths,
        );
    }

    // --- the gate conditions ---------------------------------------------
    let mut failures: Vec<String> = Vec::new();

    if inproc.results[0].is_empty() {
        failures.push("in-process run produced no artifact bytes".into());
    }
    if inproc.results[0] != tcp.results[0] {
        failures.push(format!(
            ".tkr artifact bytes diverge: {} bytes (inproc) vs {} bytes (tcp)",
            inproc.results[0].len(),
            tcp.results[0].len()
        ));
    }
    for r in 0..p {
        if inproc.stats[r].words_sent != tcp.stats[r].words_sent
            || inproc.stats[r].messages_sent != tcp.stats[r].messages_sent
        {
            failures.push(format!(
                "rank {r}: logical volume diverges (inproc {}w/{}m, tcp {}w/{}m)",
                inproc.stats[r].words_sent,
                inproc.stats[r].messages_sent,
                tcp.stats[r].words_sent,
                tcp.stats[r].messages_sent
            ));
        }
    }
    let tcp_wire: u64 = tcp.stats.iter().map(|s| s.wire_bytes_sent).sum();
    let inproc_wire: u64 = inproc.stats.iter().map(|s| s.wire_bytes_sent).sum();
    if p > 1 && tcp_wire == 0 {
        failures.push("tcp run reports zero on-wire bytes".into());
    }
    if inproc_wire != 0 {
        failures.push(format!("inproc run reports {inproc_wire} on-wire bytes"));
    }
    let net_sent = tucker_net::frame::NET_BYTES_SENT.value();
    if p > 1 && !tucker_net::in_worker() && net_sent == 0 {
        failures.push("global net.bytes_sent counter is zero".into());
    }

    println!();
    println!(
        "artifact: {} bytes   wire bytes (tcp, all ranks): {}   comm time visible: {}",
        inproc.results[0].len(),
        tcp_wire,
        if tcp.elapsed > 0.0 { "yes" } else { "no" }
    );
    println!(
        "elapsed: inproc {:.4}s, tcp {:.4}s (region only; spawn+rendezvous happen once, before)",
        inproc.elapsed, tcp.elapsed
    );

    if failures.is_empty() {
        println!("\ntable7_transport: OK — backends byte-identical, {tcp_wire} bytes on the wire");
    } else {
        for f in &failures {
            eprintln!("table7_transport FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
