//! Tab. II — compression and errors at a maximum normalized RMS error threshold
//! of 1e-3 for the three datasets, comparing ST-HOSVD against HOOI.
//!
//! Paper rows (for reference):
//!   HCCI: reduced (297,279,29,153), norm RMS 9.26e-4 (both), ratio 25
//!   TJLR: reduced (306,232,239,35,16), norm RMS 7.62e-4 (both), ratio 7
//!   SP:   reduced (81,129,127,7,32),  norm RMS 8.66e-4 (both), ratio 231
//! The headline finding is that HOOI barely improves on ST-HOSVD.
//!
//! Run: `cargo run --release -p tucker-bench --bin table2_compression`

use tucker_bench::{eng, print_header, print_row};
use tucker_core::hooi::{hooi, HooiOptions};
use tucker_core::prelude::*;
use tucker_scidata::DatasetPreset;
use tucker_tensor::{max_abs_diff, normalized_rms_error};

fn main() {
    let eps = 1e-3;
    println!("Tab. II — compression and errors at eps = {eps:.0e}\n");
    let widths = [8usize, 24, 12, 12, 12, 12, 12];
    print_header(
        &[
            "dataset",
            "reduced dims",
            "ST nrms",
            "ST maxerr",
            "HOOI nrms",
            "HOOI maxerr",
            "ratio",
        ],
        &widths,
    );

    for preset in DatasetPreset::all() {
        let ds = preset.generate(1, 2024);
        let dims = ds.data.dims().to_vec();

        let st = st_hosvd(&ds.data, &SthosvdOptions::with_tolerance(eps));
        let st_rec = st.tucker.reconstruct();
        let st_err = normalized_rms_error(&ds.data, &st_rec);
        let st_max = max_abs_diff(&ds.data, &st_rec);

        let ho = hooi(&ds.data, &HooiOptions::with_ranks(st.ranks.clone(), 2));
        let ho_rec = ho.tucker.reconstruct();
        let ho_err = normalized_rms_error(&ds.data, &ho_rec);
        let ho_max = max_abs_diff(&ds.data, &ho_rec);

        let ratio = st.tucker.compression_ratio(&dims);
        print_row(
            &[
                preset.name().to_string(),
                format!("{:?}", st.ranks),
                eng(st_err, 3),
                eng(st_max, 3),
                eng(ho_err, 3),
                eng(ho_max, 3),
                format!("{ratio:.0}"),
            ],
            &widths,
        );

        // Shape checks mirroring the paper's observations.
        assert!(st_err <= eps, "ST-HOSVD must satisfy the error threshold");
        assert!(
            ho_err <= st_err + 1e-12,
            "HOOI must not be worse than ST-HOSVD"
        );
        // HOOI gives only marginal improvement (Sec. VII-C). Skip the relative
        // check when the error sits at machine precision (untruncated modes),
        // where the ratio is pure rounding noise.
        if st_err > 1e-12 {
            assert!(
                (st_err - ho_err) / st_err < 0.2,
                "HOOI should give only marginal improvement (paper Sec. VII-C)"
            );
        }
    }
    println!(
        "\nShape check passed: both algorithms meet the 1e-3 threshold and HOOI's\n\
         improvement over ST-HOSVD is marginal, matching Tab. II. Absolute ratios\n\
         differ from the paper because the surrogates are laptop-sized."
    );
}
