//! Fig. 8b — effect of the mode-processing order on ST-HOSVD run time.
//!
//! The paper uses a synthetic 25×250×250×250 tensor with core 10×10×100×100 on
//! a 2×2×2×2 grid and sweeps all orders; the optimal order starts with the
//! second mode (largest compression ratio), not the first (cheapest Gram). The
//! harness measures a scaled-down version of the same problem on the simulated
//! runtime and also evaluates the α-β-γ model at the paper's scale.
//!
//! Run: `cargo run --release -p tucker-bench --bin fig8b_mode_order`

use tucker_bench::{print_header, print_row, run_dist_sthosvd};
use tucker_core::ordering::{all_orders, ModeOrder};
use tucker_core::prelude::*;
use tucker_distmem::{CostModel, MachineParams, ProcGrid};
use tucker_scidata::random_low_rank;

fn main() {
    // Scaled-down Fig. 8b problem: 5x50x50x50 -> 2x2x20x20 on a 2x2x2x2 grid
    // keeps the paper's anisotropy (one tiny mode, two high-compression modes).
    let dims = vec![5usize, 50, 50, 50];
    let ranks = vec![2usize, 2, 20, 20];
    let grid = vec![1usize, 2, 2, 2];
    let x = random_low_rank(88, &dims, &ranks);

    println!(
        "Fig. 8b — ST-HOSVD time vs mode order (measured: {:?} -> {:?}, grid {:?})\n",
        dims, ranks, grid
    );
    println!("{}\n", tucker_bench::transport_banner());

    let orders = all_orders(4);
    let widths = [16usize, 12, 12, 12, 12, 12];
    print_header(
        &[
            "order",
            "total (s)",
            "gram (s)",
            "evecs (s)",
            "ttm (s)",
            "rel.",
        ],
        &widths,
    );
    let mut rows: Vec<(Vec<usize>, f64, (f64, f64, f64))> = Vec::new();
    for order in &orders {
        let opts =
            SthosvdOptions::with_ranks(ranks.clone()).order(ModeOrder::Custom(order.clone()));
        let report = run_dist_sthosvd(&x, &grid, &opts);
        rows.push((order.clone(), report.elapsed, report.kernel_totals()));
    }
    let best = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (order, t, (g, e, m)) in &rows {
        print_row(
            &[
                format!("{order:?}"),
                format!("{t:.3}"),
                format!("{g:.3}"),
                format!("{e:.3}"),
                format!("{m:.3}"),
                format!("{:.2}", t / best),
            ],
            &widths,
        );
    }

    // Cost-model ranking at the paper's scale.
    println!("\nCost-model ranking at the paper's scale (25x250x250x250 -> 10x10x100x100, grid 2x2x2x2):");
    let paper_dims = vec![25usize, 250, 250, 250];
    let paper_ranks = vec![10usize, 10, 100, 100];
    let model = CostModel::new(ProcGrid::new(&[2, 2, 2, 2]), MachineParams::edison_like());
    let mut model_rows: Vec<(Vec<usize>, f64)> = all_orders(4)
        .into_iter()
        .map(|o| {
            (
                o.clone(),
                model.st_hosvd_time(&paper_dims, &paper_ranks, &o),
            )
        })
        .collect();
    model_rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let widths = [16usize, 16];
    print_header(&["order", "predicted (s)"], &widths);
    for (o, t) in model_rows.iter().take(4) {
        print_row(&[format!("{o:?}"), format!("{t:.3}")], &widths);
    }
    println!("  …");
    for (o, t) in model_rows
        .iter()
        .rev()
        .take(2)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        print_row(&[format!("{o:?}"), format!("{t:.3}")], &widths);
    }

    // Shape checks from Sec. VIII-C:
    //  * the mode order changes the cost substantially (both measured and modeled);
    //  * the greedy compression-ratio heuristic the paper suggests starts with
    //    mode 1, while the greedy flop heuristic starts with mode 0 — the
    //    tension the paper discusses (neither simple heuristic is always best);
    //  * the measured best order is never one that leaves the two large
    //    poorly-compressing modes (2 and 3) for last.
    let measured_spread = rows.last().unwrap().1 / rows[0].1;
    assert!(
        measured_spread > 1.3,
        "mode ordering should change the measured time substantially (got {measured_spread:.2}x)"
    );
    let model_spread = model_rows.last().unwrap().1 / model_rows[0].1;
    assert!(
        model_spread > 1.5,
        "mode ordering should change the predicted cost substantially (got {model_spread:.2}x)"
    );
    let ratio_first = ModeOrder::GreedyRatio.resolve(&paper_dims, &paper_ranks)[0];
    let flops_first = ModeOrder::GreedyFlops.resolve(&paper_dims, &paper_ranks)[0];
    assert_eq!(
        ratio_first, 1,
        "greedy-ratio heuristic starts with the second mode"
    );
    assert_eq!(
        flops_first, 0,
        "greedy-flops heuristic starts with the first mode"
    );
    let measured_best = &rows[0].0;
    assert!(
        measured_best[0] == 0 || measured_best[0] == 1,
        "the measured best order starts with one of the two small modes (cheap Gram or \
         highest compression), never a large spatial mode"
    );
    println!(
        "\nShape check passed: ordering matters (measured spread {measured_spread:.1}x, modeled\n\
         {model_spread:.1}x). As in Sec. VIII-C, the flop-greedy heuristic (start with the\n\
         cheap small mode) and the compression-greedy heuristic (start with the most\n\
         compressible mode) disagree, and the measured optimum favors eliminating a\n\
         high-compression mode early — the paper's Fig. 8b observation."
    );
    // Under TUCKER_TRACE, close the sink so the chrome trace of the
    // distributed runs is complete and strictly valid JSON.
    tucker_obs::trace::uninstall();
}
