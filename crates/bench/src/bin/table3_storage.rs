//! Tab. III (this repo's extension) — storage-layer performance of the
//! `tucker-store` subsystem on the three combustion surrogates.
//!
//! The paper stops at the in-memory decomposition (Tab. II); the system it
//! describes (TuckerMPI) writes the result to disk for later partial
//! reconstruction. This harness measures that storage layer end-to-end at
//! ε = 1e-3 for every codec:
//!
//! * **model ratio** — the paper's logical ratio `∏I / (∏R + Σ I·R)`,
//! * **file ratio**  — raw-f64 bytes of the field over actual `.tkr` bytes
//!   (the quantized codecs roughly double/quadruple the model ratio),
//! * **enc / dec**   — wall-clock encode (write) and open (decode) time,
//! * **query**       — partial-reconstruction throughput on a ~1% window,
//!   in reconstructed Melem/s,
//! * **budget**      — the artifact's declared error budget `ε + q`, which
//!   the measured round-trip error must not exceed.
//!
//! A second table compares point-query throughput: the per-point
//! `O(N·∏R)` [`TkrArtifact::element`] walk versus the batched
//! [`TkrArtifact::elements`] contraction (`O(∏R)` per point, shared
//! buffers), asserting the two agree to round-off.
//!
//! Every ratio is asserted finite and every round-trip error is asserted
//! within budget, so CI fails loudly if the storage layer regresses.
//!
//! Run: `cargo run --release -p tucker-bench --bin table3_storage`

use tucker_bench::{eng, print_header, print_row, timed};
use tucker_core::prelude::*;
use tucker_scidata::DatasetPreset;
use tucker_store::{write_tucker, Codec, StoreOptions, TkrArtifact, TkrMetadata};
use tucker_tensor::relative_error;

fn main() {
    let eps = 1e-3;
    println!("Tab. III — tucker-store storage layer at eps = {eps:.0e}\n");
    let widths = [8usize, 6, 12, 12, 10, 10, 14, 12];
    print_header(
        &[
            "dataset",
            "codec",
            "model ratio",
            "file ratio",
            "enc (s)",
            "dec (s)",
            "query Mel/s",
            "budget",
        ],
        &widths,
    );

    let tmp = std::env::temp_dir();
    for preset in DatasetPreset::all() {
        let ds = preset.generate(1, 2024);
        let dims = ds.data.dims().to_vec();
        let result = st_hosvd(&ds.data, &SthosvdOptions::with_tolerance(eps));
        let model_ratio = result.tucker.compression_ratio(&dims);

        // A ~1% window: one third of every spatial mode, half of the rest.
        let window: Vec<(usize, usize)> = dims
            .iter()
            .enumerate()
            .map(|(n, &d)| {
                if n < dims.len() - 2 {
                    (d / 3, (d / 3).max(1))
                } else {
                    (0, (d / 2).max(1))
                }
            })
            .collect();
        let window_elems: usize = window.iter().map(|&(_, l)| l).product();

        let mut file_ratios = Vec::new();
        for codec in Codec::all() {
            let path = tmp.join(format!(
                "table3_{}_{}_{}.tkr",
                std::process::id(),
                preset.name(),
                codec.name()
            ));
            let opts = StoreOptions::new(codec, eps).with_meta(TkrMetadata::for_dataset(&ds));
            let (report, enc_s) = timed(|| write_tucker(&path, &result.tucker, &opts).unwrap());
            let file_ratio = report.compression_ratio(&dims);

            let (artifact, dec_s) = timed(|| TkrArtifact::open(&path).unwrap());
            std::fs::remove_file(&path).ok();

            let (sub, query_s) = timed(|| artifact.reconstruct_range(&window).unwrap());
            assert_eq!(sub.len(), window_elems);
            let query_meps = window_elems as f64 / query_s.max(1e-12) / 1e6;

            let budget = artifact.error_budget();
            let err = relative_error(&ds.data, &artifact.reconstruct());

            // CI contract: finite, positive ratios and errors within budget.
            assert!(
                model_ratio.is_finite() && model_ratio > 0.0,
                "{}: non-finite model ratio",
                preset.name()
            );
            assert!(
                file_ratio.is_finite() && file_ratio > 0.0,
                "{} {}: non-finite file ratio",
                preset.name(),
                codec.name()
            );
            assert!(
                err <= budget + 1e-12,
                "{} {}: round-trip error {err} exceeds declared budget {budget}",
                preset.name(),
                codec.name()
            );

            print_row(
                &[
                    preset.name().to_string(),
                    codec.name().to_string(),
                    format!("{model_ratio:.1}"),
                    format!("{file_ratio:.1}"),
                    eng(enc_s, 3),
                    eng(dec_s, 3),
                    format!("{query_meps:.1}"),
                    eng(budget, 3),
                ],
                &widths,
            );
            file_ratios.push(file_ratio);
        }
        // The quantized codecs must actually beat the f64 file ratio
        // (Codec::all() is ordered f64, f32, q16).
        assert!(
            file_ratios[2] > file_ratios[1] && file_ratios[1] > file_ratios[0],
            "{}: quantized codecs do not improve the file ratio: {file_ratios:?}",
            preset.name()
        );
    }
    // Point-query throughput: per-element walk vs the batched contraction.
    println!("\nPoint queries — element() vs batched elements()");
    let widths = [8usize, 8, 14, 14, 9];
    print_header(
        &[
            "dataset",
            "points",
            "single kel/s",
            "batched kel/s",
            "speedup",
        ],
        &widths,
    );
    for preset in DatasetPreset::all() {
        let ds = preset.generate(1, 2024);
        let dims = ds.data.dims().to_vec();
        let result = st_hosvd(&ds.data, &SthosvdOptions::with_tolerance(eps));
        let path = tmp.join(format!(
            "table3_pts_{}_{}.tkr",
            std::process::id(),
            preset.name()
        ));
        write_tucker(&path, &result.tucker, &StoreOptions::new(Codec::F64, eps)).unwrap();
        let artifact = TkrArtifact::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let n_points = 512usize;
        let points: Vec<Vec<usize>> = (0..n_points)
            .map(|i| {
                dims.iter()
                    .enumerate()
                    .map(|(n, &d)| (i * (2 * n + 3) * 131) % d)
                    .collect()
            })
            .collect();
        let refs: Vec<&[usize]> = points.iter().map(|p| p.as_slice()).collect();

        let (singles, single_s) = timed(|| {
            refs.iter()
                .map(|p| artifact.element(p).unwrap())
                .collect::<Vec<f64>>()
        });
        let (batched, batch_s) = timed(|| artifact.elements(&refs).unwrap());
        for (a, b) in singles.iter().zip(batched.iter()) {
            assert!(
                (a - b).abs() <= 1e-10 * a.abs().max(1.0),
                "{}: batched point query diverged ({a} vs {b})",
                preset.name()
            );
        }
        print_row(
            &[
                preset.name().to_string(),
                format!("{n_points}"),
                format!("{:.1}", n_points as f64 / single_s.max(1e-12) / 1e3),
                format!("{:.1}", n_points as f64 / batch_s.max(1e-12) / 1e3),
                format!("{:.1}x", single_s / batch_s.max(1e-12)),
            ],
            &widths,
        );
    }

    println!(
        "\nShape check passed: every ratio is finite, quantized codecs beat the\n\
         f64 file ratio, every round-trip error is within the declared\n\
         eps + quantization budget, and batched point queries agree with the\n\
         per-element walk."
    );
}
