//! Tab. IV (this repo's extension) — shared-pool thread scaling of the hot
//! kernels (ISSUE 3).
//!
//! The paper runs on multi-threaded BLAS within each node (Sec. IX); this
//! harness measures the equivalent in our pure-Rust execution layer: the
//! large TTM and Gram kernels plus the end-to-end ST-HOSVD at 1/2/4/8
//! threads on the persistent `tucker-exec` pool.
//!
//! Two contracts are enforced:
//!
//! * **Determinism (hard):** every multi-threaded result must be
//!   bit-identical to the single-threaded run. Any mismatch exits non-zero —
//!   this is the CI smoke gate.
//! * **Scaling (reported):** per-kernel speedups are printed; when the host
//!   has at least 4 cores, a speedup below 2× at 4 threads on the large TTM
//!   and Gram kernels is flagged loudly (and exits non-zero under
//!   `TUCKER_TABLE4_STRICT=1`). On smaller hosts the table is informational —
//!   oversubscribed pools cannot speed anything up, only stay correct.
//!
//! Run: `cargo run --release -p tucker-bench --bin table4_threads`
//! (set `TUCKER_TABLE4_SMOKE=1` for the quick CI shape).

use tucker_bench::{print_header, print_row, timed};
use tucker_core::st_hosvd_ctx;
use tucker_core::sthosvd::SthosvdOptions;
use tucker_exec::ExecContext;
use tucker_linalg::Matrix;
use tucker_tensor::{gram_ctx, ttm_ctx, DenseTensor, TtmTranspose};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn wavy(dims: &[usize]) -> DenseTensor {
    DenseTensor::from_fn(dims, |idx| {
        let mut v = 0.4;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 2) as f64 * 0.13 * i as f64).sin();
        }
        v
    })
}

/// Best-of-`reps` wall time plus the (first) result for identity checks.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let (result, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (_, t) = timed(&mut f);
        best = best.min(t);
    }
    (result, best)
}

struct KernelRow {
    name: &'static str,
    /// Whether this row participates in the ≥2× @ 4 threads check.
    scaling_gated: bool,
    /// Seconds per thread count, indexed like `THREADS`.
    secs: Vec<f64>,
}

fn main() {
    let smoke = std::env::var("TUCKER_TABLE4_SMOKE").is_ok_and(|v| v == "1");
    let strict = std::env::var("TUCKER_TABLE4_STRICT").is_ok_and(|v| v == "1");
    let (dims, rank, reps) = if smoke {
        (vec![36usize, 36, 36], 9usize, 2usize)
    } else {
        (vec![96usize, 96, 96], 24usize, 3usize)
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Tab. IV — kernel scaling on the shared pool ({dims:?}, rank {rank}, {cores} core(s))\n"
    );

    let x = wavy(&dims);
    let v0 = Matrix::from_fn(dims[0], rank, |i, j| ((i * 3 + j * 11) as f64 * 0.21).cos());
    let v1 = Matrix::from_fn(dims[1], rank, |i, j| ((i * 7 + j * 5) as f64 * 0.19).sin());
    let opts = SthosvdOptions::with_ranks(vec![rank; dims.len()]);

    let mut rows: Vec<KernelRow> = vec![
        KernelRow {
            name: "ttm mode-0",
            scaling_gated: true,
            secs: Vec::new(),
        },
        KernelRow {
            name: "ttm mode-1",
            scaling_gated: true,
            secs: Vec::new(),
        },
        KernelRow {
            name: "gram mode-0",
            scaling_gated: true,
            secs: Vec::new(),
        },
        KernelRow {
            name: "gram mode-1",
            scaling_gated: true,
            secs: Vec::new(),
        },
        KernelRow {
            name: "st_hosvd",
            scaling_gated: false,
            secs: Vec::new(),
        },
    ];
    let mut baselines: Vec<Vec<f64>> = Vec::new();
    let mut mismatches = 0usize;

    for (ti, &threads) in THREADS.iter().enumerate() {
        let ctx = ExecContext::new(threads);
        let outputs: Vec<(Vec<f64>, f64)> = vec![
            {
                let (y, s) = best_of(reps, || ttm_ctx(&ctx, &x, &v0, 0, TtmTranspose::Transpose));
                (y.into_vec(), s)
            },
            {
                let (y, s) = best_of(reps, || ttm_ctx(&ctx, &x, &v1, 1, TtmTranspose::Transpose));
                (y.into_vec(), s)
            },
            {
                let (s_mat, s) = best_of(reps, || gram_ctx(&ctx, &x, 0));
                (s_mat.into_vec(), s)
            },
            {
                let (s_mat, s) = best_of(reps, || gram_ctx(&ctx, &x, 1));
                (s_mat.into_vec(), s)
            },
            {
                let (r, s) = best_of(reps.min(2), || st_hosvd_ctx(&x, &opts, &ctx));
                (r.tucker.core.into_vec(), s)
            },
        ];
        for (ki, (data, secs)) in outputs.into_iter().enumerate() {
            rows[ki].secs.push(secs);
            if ti == 0 {
                baselines.push(data);
            } else if data != baselines[ki] {
                eprintln!(
                    "DETERMINISM VIOLATION: {} differs at {threads} threads vs 1 thread",
                    rows[ki].name
                );
                mismatches += 1;
            }
        }
    }

    let widths = [12usize, 11, 11, 11, 11, 12];
    print_header(
        &[
            "kernel",
            "t=1 (s)",
            "t=2 (s)",
            "t=4 (s)",
            "t=8 (s)",
            "speedup@4",
        ],
        &widths,
    );
    let four = THREADS.iter().position(|&t| t == 4).expect("4 in THREADS");
    let mut weak_scaling = Vec::new();
    for row in &rows {
        let speedup4 = row.secs[0] / row.secs[four].max(1e-12);
        let mut cells: Vec<String> = vec![row.name.to_string()];
        cells.extend(row.secs.iter().map(|s| format!("{s:.4}")));
        cells.push(format!("{speedup4:.2}x"));
        print_row(&cells, &widths);
        if row.scaling_gated && speedup4 < 2.0 {
            weak_scaling.push((row.name, speedup4));
        }
    }

    println!();
    if mismatches > 0 {
        eprintln!("table4_threads: FAILED — {mismatches} kernel(s) are not bit-identical across thread counts");
        std::process::exit(1);
    }
    println!("determinism: OK — all kernels bit-identical at 1/2/4/8 threads");
    if weak_scaling.is_empty() {
        println!("scaling: OK — every gated kernel reached >=2x at 4 threads");
    } else if cores >= 4 {
        for (name, s) in &weak_scaling {
            eprintln!("scaling: {name} reached only {s:.2}x at 4 threads (target >=2x)");
        }
        if strict {
            std::process::exit(1);
        }
    } else {
        println!(
            "scaling: skipped — host has {cores} core(s); oversubscribed pools are checked for correctness only"
        );
    }
}
