//! Tab. IV (this repo's extension) — shared-pool thread scaling of the hot
//! kernels (ISSUE 3).
//!
//! The paper runs on multi-threaded BLAS within each node (Sec. IX); this
//! harness measures the equivalent in our pure-Rust execution layer: the
//! large TTM and Gram kernels plus the end-to-end ST-HOSVD at 1/2/4/8
//! threads on the persistent `tucker-exec` pool.
//!
//! Three contracts are enforced:
//!
//! * **Determinism (hard):** every multi-threaded result must be
//!   bit-identical to the single-threaded run, and every forced-SIMD-tier
//!   result bit-identical to the scalar tier. Any mismatch exits non-zero —
//!   this is the CI smoke gate.
//! * **Thread scaling (reported):** per-kernel speedups are printed; when
//!   the host has at least 4 cores, a speedup below 2× at 4 threads on the
//!   large TTM and Gram kernels is flagged loudly (and exits non-zero under
//!   `TUCKER_TABLE4_STRICT=1`). On smaller hosts the table is informational —
//!   oversubscribed pools cannot speed anything up, only stay correct.
//! * **SIMD speedup (hard on AVX2 hosts, ISSUE 8):** the packed microkernel
//!   on the detected tier must beat the **pinned scalar baseline** — the
//!   executable contract references `gemm_slices_reference` /
//!   `syrk_slices_reference`, which state the pre-microkernel naive loops —
//!   by ≥2× on single-threaded GEMM and SYRK. (The forced-scalar *tier* is
//!   reported too, but only informationally: LLVM auto-vectorizes the
//!   scalar microkernel to baseline SSE2, so tier-vs-tier hovers near the
//!   2-lane/4-lane ceiling and is not a stable gate.) Skipped with a
//!   message when the detected tier is below AVX2.
//! * **Blocked factorization speedup (hard, ISSUE 9):** the blocked
//!   `householder_qr` and `sym_eig` must beat their **pinned pre-blocking
//!   recurrences** (`householder_qr_unblocked` / `sym_eig_unblocked`) by
//!   ≥2× at n = 512 on a single thread. This gate compares two algorithms
//!   on the *same* tier, so it holds on any host, scalar included, and
//!   runs even under `TUCKER_TABLE4_SMOKE=1`. The blocked SVD row is
//!   informational. Factorization bits are also re-checked across every
//!   supported SIMD tier (AVX-512 only where the host reports it), a
//!   shrunken `TUCKER_BLOCK` override, and thread counts.
//!
//! The GFLOP/s column is derived from the `tucker-obs` flop counters
//! (`linalg.gemm.flops` + `linalg.syrk.flops`) that the kernels maintain,
//! not from re-derived analytic formulas — so it doubles as a check that the
//! counters fire (it reads `-` if metrics are disabled).
//!
//! Run: `cargo run --release -p tucker-bench --bin table4_threads`
//! (set `TUCKER_TABLE4_SMOKE=1` for the quick CI shape).

use tucker_bench::{print_header, print_row, timed};
use tucker_core::st_hosvd_ctx;
use tucker_core::sthosvd::SthosvdOptions;
use tucker_exec::ExecContext;
use tucker_linalg::blocking::{force_blocking, Blocking};
use tucker_linalg::gemm::{gemm, gemm_slices_reference, Transpose};
use tucker_linalg::simd::{detected_tier, force_tier, supported_tiers, SimdTier};
use tucker_linalg::syrk::{syrk, syrk_slices_reference};
use tucker_linalg::{
    householder_qr, householder_qr_ctx, householder_qr_unblocked, jacobi_svd, jacobi_svd_ctx,
    jacobi_svd_unblocked, sym_eig, sym_eig_ctx, sym_eig_unblocked, Matrix, QrFactors, Svd, SymEig,
};
use tucker_obs::metrics::Counter;
use tucker_tensor::{gram_ctx, ttm_ctx, DenseTensor, TtmTranspose};

/// Same-name handles share storage with the kernels' own counters, so these
/// read the process-wide flop totals maintained inside `tucker-linalg`.
static GEMM_FLOPS: Counter = Counter::new("linalg.gemm.flops");
static SYRK_FLOPS: Counter = Counter::new("linalg.syrk.flops");
static QR_FLOPS: Counter = Counter::new("linalg.qr.flops");
static EIG_FLOPS: Counter = Counter::new("linalg.eig.flops");
static SVD_FLOPS: Counter = Counter::new("linalg.svd.flops");

fn kernel_flops() -> u64 {
    GEMM_FLOPS.value() + SYRK_FLOPS.value()
}

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn wavy(dims: &[usize]) -> DenseTensor {
    DenseTensor::from_fn(dims, |idx| {
        let mut v = 0.4;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 2) as f64 * 0.13 * i as f64).sin();
        }
        v
    })
}

/// Best-of-`reps` wall time plus the (first) result for identity checks.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let (result, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (_, t) = timed(&mut f);
        best = best.min(t);
    }
    (result, best)
}

struct KernelRow {
    name: &'static str,
    /// Whether this row participates in the ≥2× @ 4 threads check.
    scaling_gated: bool,
    /// Seconds per thread count, indexed like `THREADS`.
    secs: Vec<f64>,
    /// GEMM+SYRK flops of one invocation, from the obs counters (0 when
    /// metrics are disabled).
    flops: u64,
}

fn main() {
    let smoke = std::env::var("TUCKER_TABLE4_SMOKE").is_ok_and(|v| v == "1");
    let strict = std::env::var("TUCKER_TABLE4_STRICT").is_ok_and(|v| v == "1");
    let (dims, rank, reps) = if smoke {
        (vec![36usize, 36, 36], 9usize, 2usize)
    } else {
        (vec![96usize, 96, 96], 24usize, 3usize)
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Tab. IV — kernel scaling on the shared pool ({dims:?}, rank {rank}, {cores} core(s))\n"
    );

    let x = wavy(&dims);
    let v0 = Matrix::from_fn(dims[0], rank, |i, j| ((i * 3 + j * 11) as f64 * 0.21).cos());
    let v1 = Matrix::from_fn(dims[1], rank, |i, j| ((i * 7 + j * 5) as f64 * 0.19).sin());
    let opts = SthosvdOptions::with_ranks(vec![rank; dims.len()]);

    let mut rows: Vec<KernelRow> = ["ttm mode-0", "ttm mode-1", "gram mode-0", "gram mode-1"]
        .into_iter()
        .map(|name| KernelRow {
            name,
            scaling_gated: true,
            secs: Vec::new(),
            flops: 0,
        })
        .collect();
    rows.push(KernelRow {
        name: "st_hosvd",
        scaling_gated: false,
        secs: Vec::new(),
        flops: 0,
    });
    let mut baselines: Vec<Vec<f64>> = Vec::new();
    let mut mismatches = 0usize;

    for (ti, &threads) in THREADS.iter().enumerate() {
        let ctx = ExecContext::new(threads);
        // (result, best seconds, counter-derived flops of one invocation)
        let outputs: Vec<(Vec<f64>, f64, u64)> = vec![
            {
                let f0 = kernel_flops();
                let (y, s) = best_of(reps, || ttm_ctx(&ctx, &x, &v0, 0, TtmTranspose::Transpose));
                (y.into_vec(), s, (kernel_flops() - f0) / reps as u64)
            },
            {
                let f0 = kernel_flops();
                let (y, s) = best_of(reps, || ttm_ctx(&ctx, &x, &v1, 1, TtmTranspose::Transpose));
                (y.into_vec(), s, (kernel_flops() - f0) / reps as u64)
            },
            {
                let f0 = kernel_flops();
                let (s_mat, s) = best_of(reps, || gram_ctx(&ctx, &x, 0));
                (s_mat.into_vec(), s, (kernel_flops() - f0) / reps as u64)
            },
            {
                let f0 = kernel_flops();
                let (s_mat, s) = best_of(reps, || gram_ctx(&ctx, &x, 1));
                (s_mat.into_vec(), s, (kernel_flops() - f0) / reps as u64)
            },
            {
                let f0 = kernel_flops();
                let n = reps.min(2);
                let (r, s) = best_of(n, || st_hosvd_ctx(&x, &opts, &ctx));
                (
                    r.tucker.core.into_vec(),
                    s,
                    (kernel_flops() - f0) / n as u64,
                )
            },
        ];
        for (ki, (data, secs, flops)) in outputs.into_iter().enumerate() {
            rows[ki].secs.push(secs);
            if ti == 0 {
                rows[ki].flops = flops;
                baselines.push(data);
            } else if data != baselines[ki] {
                eprintln!(
                    "DETERMINISM VIOLATION: {} differs at {threads} threads vs 1 thread",
                    rows[ki].name
                );
                mismatches += 1;
            }
        }
    }

    let widths = [12usize, 11, 11, 11, 11, 12, 10];
    print_header(
        &[
            "kernel",
            "t=1 (s)",
            "t=2 (s)",
            "t=4 (s)",
            "t=8 (s)",
            "speedup@4",
            "GF/s@4",
        ],
        &widths,
    );
    let four = THREADS.iter().position(|&t| t == 4).expect("4 in THREADS");
    let mut weak_scaling = Vec::new();
    for row in &rows {
        let speedup4 = row.secs[0] / row.secs[four].max(1e-12);
        let mut cells: Vec<String> = vec![row.name.to_string()];
        cells.extend(row.secs.iter().map(|s| format!("{s:.4}")));
        cells.push(format!("{speedup4:.2}x"));
        cells.push(if row.flops == 0 {
            "-".to_string()
        } else {
            format!("{:.2}", row.flops as f64 / row.secs[four].max(1e-12) / 1e9)
        });
        print_row(&cells, &widths);
        if row.scaling_gated && speedup4 < 2.0 {
            weak_scaling.push((row.name, speedup4));
        }
    }

    println!();
    if mismatches > 0 {
        eprintln!("table4_threads: FAILED — {mismatches} kernel(s) are not bit-identical across thread counts");
        std::process::exit(1);
    }
    println!("determinism: OK — all kernels bit-identical at 1/2/4/8 threads");
    if weak_scaling.is_empty() {
        println!("scaling: OK — every gated kernel reached >=2x at 4 threads");
    } else if cores >= 4 {
        for (name, s) in &weak_scaling {
            eprintln!("scaling: {name} reached only {s:.2}x at 4 threads (target >=2x)");
        }
        if strict {
            std::process::exit(1);
        }
    } else {
        println!(
            "scaling: skipped — host has {cores} core(s); oversubscribed pools are checked for correctness only"
        );
    }

    simd_speedup_section(smoke, reps);
    factorization_speedup_section(smoke);
}

/// Single-threaded microkernel speedup vs the pinned scalar baseline
/// (ISSUE 8): the contract references `gemm_slices_reference` /
/// `syrk_slices_reference` *are* the pre-microkernel naive loops, so they
/// double as the measurement baseline. Hard ≥2× gate on AVX2 hosts; also
/// re-checks bit-identity across baseline, forced-scalar tier, and the
/// detected tier, then restores the detected tier.
fn simd_speedup_section(smoke: bool, reps: usize) {
    let detected = detected_tier();
    let (m, k, n) = if smoke {
        (256usize, 256usize, 256usize)
    } else {
        (512usize, 384usize, 512usize)
    };
    // The kernel runs are millisecond-scale, so extra best-of reps are cheap
    // insurance against noise on shared CI boxes (noise only ever inflates a
    // wall-clock sample; best-of converges on the true time from above).
    let reps = reps.max(4);
    println!(
        "\nSIMD microkernel speedup — single thread, GEMM {m}x{k}x{n} / SYRK {m}x{k} \
         (detected tier: {})",
        detected.name()
    );

    let a = Matrix::from_fn(m, k, |i, j| ((i * 5 + j * 3) as f64 * 0.23).sin());
    let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 11) as f64 * 0.17).cos());
    let gemm_flop = 2.0 * (m * k * n) as f64;
    let syrk_flop = (m * (m + 1) * k) as f64;

    // Pinned scalar baseline: the executable contract references (the
    // pre-microkernel loops, one ascending-order accumulator per element).
    let (gemm_base_out, gemm_base_s) = best_of(reps, || {
        let mut c = vec![0.0f64; m * n];
        gemm_slices_reference(
            Transpose::No,
            Transpose::No,
            1.0,
            a.as_slice(),
            m,
            k,
            k,
            b.as_slice(),
            k,
            n,
            n,
            0.0,
            &mut c,
            n,
        );
        c
    });
    let (syrk_base_out, syrk_base_s) = best_of(reps, || {
        let mut c = vec![0.0f64; m * m];
        syrk_slices_reference(1.0, a.as_slice(), m, k, k, 0.0, &mut c, m);
        c
    });

    assert!(
        force_tier(SimdTier::Scalar),
        "scalar tier must always force"
    );
    let (gemm_scalar_out, gemm_scalar_s) =
        best_of(reps, || gemm(Transpose::No, Transpose::No, 1.0, &a, &b));
    let (syrk_scalar_out, syrk_scalar_s) = best_of(reps, || syrk(&a));

    assert!(force_tier(detected), "detected tier must force");
    let (gemm_tier_out, gemm_tier_s) =
        best_of(reps, || gemm(Transpose::No, Transpose::No, 1.0, &a, &b));
    let (syrk_tier_out, syrk_tier_s) = best_of(reps, || syrk(&a));

    if gemm_tier_out.as_slice() != gemm_scalar_out.as_slice()
        || syrk_tier_out.as_slice() != syrk_scalar_out.as_slice()
        || gemm_tier_out.as_slice() != gemm_base_out.as_slice()
        || syrk_tier_out.as_slice() != syrk_base_out.as_slice()
    {
        eprintln!(
            "table4_threads: FAILED — {} tier is not bit-identical to the scalar \
             tier / contract reference",
            detected.name()
        );
        std::process::exit(1);
    }

    let widths = [12usize, 13, 13, 12, 10, 10];
    print_header(
        &[
            "kernel",
            "baseline (s)",
            "scalar-t (s)",
            "tier (s)",
            "speedup",
            "GF/s",
        ],
        &widths,
    );
    let mut weak: Vec<(&str, f64)> = Vec::new();
    for (name, base_s, scalar_s, tier_s, flop) in [
        ("gemm", gemm_base_s, gemm_scalar_s, gemm_tier_s, gemm_flop),
        ("syrk", syrk_base_s, syrk_scalar_s, syrk_tier_s, syrk_flop),
    ] {
        let speedup = base_s / tier_s.max(1e-12);
        print_row(
            &[
                name.to_string(),
                format!("{base_s:.4}"),
                format!("{scalar_s:.4}"),
                format!("{tier_s:.4}"),
                format!("{speedup:.2}x"),
                format!("{:.2}", flop / tier_s.max(1e-12) / 1e9),
            ],
            &widths,
        );
        if speedup < 2.0 {
            weak.push((name, speedup));
        }
    }
    println!(
        "\nsimd determinism: OK — {} tier bit-identical to the scalar tier and the \
         contract reference",
        detected.name()
    );
    if detected < SimdTier::Avx2 {
        println!(
            "simd speedup: informational — detected tier {} cannot guarantee 2x over \
             the scalar baseline",
            detected.name()
        );
    } else if weak.is_empty() {
        println!("simd speedup: OK — GEMM and SYRK reached >=2x over the pinned scalar baseline");
    } else {
        for (name, s) in &weak {
            eprintln!(
                "simd speedup: {name} reached only {s:.2}x over the pinned scalar \
                 baseline (target >=2x on AVX2)"
            );
        }
        eprintln!("table4_threads: FAILED — microkernel speedup gate");
        std::process::exit(1);
    }
}

fn bits_eq(x: &[f64], y: &[f64]) -> bool {
    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
}

fn qr_bits_eq(x: &QrFactors, y: &QrFactors) -> bool {
    bits_eq(x.q.as_slice(), y.q.as_slice()) && bits_eq(x.r.as_slice(), y.r.as_slice())
}

fn eig_bits_eq(x: &SymEig, y: &SymEig) -> bool {
    bits_eq(&x.values, &y.values) && bits_eq(x.vectors.as_slice(), y.vectors.as_slice())
}

fn svd_bits_eq(x: &Svd, y: &Svd) -> bool {
    bits_eq(&x.s, &y.s)
        && bits_eq(x.u.as_slice(), y.u.as_slice())
        && bits_eq(x.v.as_slice(), y.v.as_slice())
}

/// Blocked Level-3 factorization speedup vs the pinned pre-blocking
/// recurrences (ISSUE 9). Hard ≥2× gate on `householder_qr` and `sym_eig`
/// at n = 512; the blocked SVD is reported but not gated. Also re-checks
/// that the factorization bits are invariant to the SIMD tier (every tier
/// the host supports), to a shrunken `TUCKER_BLOCK` override, and to the
/// pool thread count.
fn factorization_speedup_section(smoke: bool) {
    let n = 512usize;
    let (svd_m, svd_n) = if smoke {
        (256usize, 224usize)
    } else {
        (384usize, 352usize)
    };
    println!(
        "\nBlocked factorization speedup — single thread, QR/sym-eig n={n} (gated >=2x), \
         SVD {svd_m}x{svd_n} (informational)"
    );

    // Full-rank pseudo-random inputs: smooth trig fills are numerically
    // low-rank, which skews Jacobi sweep counts both ways (the eigensolver
    // converges in one sweep, the one-sided SVD crawls on tiny columns).
    let hash = |i: usize, j: usize, salt: usize| {
        let h = (i
            .wrapping_mul(2654435761)
            .wrapping_add(j.wrapping_mul(40503))
            .wrapping_add(salt.wrapping_mul(97)))
            % 10007;
        h as f64 / 10007.0 - 0.5
    };
    let a = Matrix::from_fn(n, n, |i, j| hash(i, j, 1));
    let g = {
        let b = Matrix::from_fn(n, n / 2, |i, j| hash(i, j, 2));
        syrk(&b)
    };
    let asvd = Matrix::from_fn(svd_m, svd_n, |i, j| hash(i, j, 3));

    // Pinned pre-blocking baselines: one rep each — they are the slow side
    // of a gate with a wide margin, and noise only inflates them.
    let (_, qr_base_s) = timed(|| householder_qr_unblocked(&a));
    let (_, eig_base_s) = timed(|| sym_eig_unblocked(&g));
    let (_, svd_base_s) = timed(|| jacobi_svd_unblocked(&asvd));

    let blocked_reps = 2usize;
    let f0 = QR_FLOPS.value();
    let (qr_blk, qr_s) = best_of(blocked_reps, || householder_qr(&a));
    let qr_flops = (QR_FLOPS.value() - f0) / blocked_reps as u64;
    let f0 = EIG_FLOPS.value();
    let (eig_blk, eig_s) = best_of(blocked_reps, || sym_eig(&g));
    let eig_flops = (EIG_FLOPS.value() - f0) / blocked_reps as u64;
    let f0 = SVD_FLOPS.value();
    let (svd_blk, svd_s) = best_of(blocked_reps, || jacobi_svd(&asvd));
    let svd_flops = (SVD_FLOPS.value() - f0) / blocked_reps as u64;

    // Cross-configuration bit-identity: every supported tier, a shrunken
    // TUCKER_BLOCK override, and a 4-thread pool must reproduce the
    // detected-tier single-thread bits exactly.
    let mut mismatches: Vec<String> = Vec::new();
    let mut check = |label: String, qr: &QrFactors, eig: &SymEig, svd: &Svd| {
        if !qr_bits_eq(qr, &qr_blk) {
            mismatches.push(format!("householder_qr @ {label}"));
        }
        if !eig_bits_eq(eig, &eig_blk) {
            mismatches.push(format!("sym_eig @ {label}"));
        }
        if !svd_bits_eq(svd, &svd_blk) {
            mismatches.push(format!("jacobi_svd @ {label}"));
        }
    };
    for tier in supported_tiers() {
        assert!(force_tier(tier), "cannot force supported tier");
        check(
            format!("tier {}", tier.name()),
            &householder_qr(&a),
            &sym_eig(&g),
            &jacobi_svd(&asvd),
        );
    }
    force_tier(detected_tier());
    let prev = force_blocking(Blocking {
        mc: 16,
        kc: 16,
        nc: 16,
    });
    check(
        "TUCKER_BLOCK=16,16,16".to_string(),
        &householder_qr(&a),
        &sym_eig(&g),
        &jacobi_svd(&asvd),
    );
    force_blocking(prev);
    let ctx4 = ExecContext::new(4);
    check(
        "4 threads".to_string(),
        &householder_qr_ctx(&ctx4, &a),
        &sym_eig_ctx(&ctx4, &g),
        &jacobi_svd_ctx(&ctx4, &asvd),
    );
    if !mismatches.is_empty() {
        for m in &mismatches {
            eprintln!("DETERMINISM VIOLATION: {m} differs from the detected-tier 1-thread bits");
        }
        eprintln!("table4_threads: FAILED — factorization bit-identity");
        std::process::exit(1);
    }

    let widths = [16usize, 13, 12, 10, 10];
    print_header(
        &[
            "factorization",
            "baseline (s)",
            "blocked (s)",
            "speedup",
            "GF/s",
        ],
        &widths,
    );
    let mut weak: Vec<(&str, f64)> = Vec::new();
    for (name, gated, base_s, blk_s, flops) in [
        ("householder_qr", true, qr_base_s, qr_s, qr_flops),
        ("sym_eig", true, eig_base_s, eig_s, eig_flops),
        ("jacobi_svd", false, svd_base_s, svd_s, svd_flops),
    ] {
        let speedup = base_s / blk_s.max(1e-12);
        print_row(
            &[
                name.to_string(),
                format!("{base_s:.4}"),
                format!("{blk_s:.4}"),
                format!("{speedup:.2}x"),
                if flops == 0 {
                    "-".to_string()
                } else {
                    format!("{:.2}", flops as f64 / blk_s.max(1e-12) / 1e9)
                },
            ],
            &widths,
        );
        if gated && speedup < 2.0 {
            weak.push((name, speedup));
        }
    }
    println!(
        "\nfactorization determinism: OK — bits invariant across SIMD tiers, \
         TUCKER_BLOCK=16,16,16, and thread counts"
    );
    if weak.is_empty() {
        println!(
            "factorization speedup: OK — blocked QR and sym_eig reached >=2x over \
             the pinned pre-blocking recurrences at n={n}"
        );
    } else {
        for (name, s) in &weak {
            eprintln!(
                "factorization speedup: {name} reached only {s:.2}x over its pinned \
                 pre-blocking recurrence (target >=2x at n={n})"
            );
        }
        eprintln!("table4_threads: FAILED — blocked factorization speedup gate");
        std::process::exit(1);
    }
}
