//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the experiment index). They share the helpers here:
//! simple fixed-width table printing, a flop counter for reporting effective
//! GFLOP/s, and wrappers that run the distributed ST-HOSVD on a given grid and
//! return its kernel-timing breakdown.

use std::time::Instant;
use tucker_core::dist::{dist_st_hosvd, DistTensor, KernelTimings};
use tucker_core::sthosvd::SthosvdOptions;
use tucker_distmem::{CostModel, MachineParams, ProcGrid, StatsSnapshot};
use tucker_net::{spmd_transport, transport_from_env, TransportKind};
use tucker_tensor::DenseTensor;

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths.iter()) {
        line.push_str(&format!("{:>width$}  ", cell, width = w));
    }
    println!("{}", line.trim_end());
}

/// Prints a header row followed by a separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

/// Total flops of a sequential ST-HOSVD (Gram + TTM + eigensolver) — used to
/// report effective GFLOP/s in the scaling harnesses. Matches the Sec. VI-A
/// accounting with `P = 1`.
pub fn st_hosvd_flops(dims: &[usize], ranks: &[usize], order: &[usize]) -> f64 {
    let model = CostModel::new(
        ProcGrid::new(&vec![1; dims.len()]),
        MachineParams::edison_like(),
    );
    model.st_hosvd(dims, ranks, order).flops
}

/// The outcome of one distributed ST-HOSVD run (in-process threads or, with
/// `TUCKER_TRANSPORT=tcp`, real spawned processes over the TCP mesh).
#[derive(Debug, Clone)]
pub struct DistRunReport {
    /// The processor grid used.
    pub grid: Vec<usize>,
    /// Wall-clock seconds of the SPMD region.
    pub elapsed: f64,
    /// Maximum (over ranks) per-kernel timing breakdown.
    pub timings: KernelTimings,
    /// Aggregate communication statistics across all ranks.
    pub comm: StatsSnapshot,
    /// The ranks the run selected.
    pub ranks: Vec<usize>,
    /// Which backend carried the messages (`"inproc"` / `"tcp"`).
    pub transport: &'static str,
}

impl DistRunReport {
    /// Per-kernel totals `(gram, evecs, ttm)` in seconds.
    pub fn kernel_totals(&self) -> (f64, f64, f64) {
        self.timings.totals()
    }
}

/// The transport the harness binaries run their SPMD regions on, from
/// `TUCKER_TRANSPORT` (default in-process threads).
pub fn bench_transport() -> TransportKind {
    transport_from_env()
}

/// One banner line for the harness binaries: which backend, how selected.
pub fn transport_banner() -> String {
    match bench_transport() {
        TransportKind::InProc => {
            "transport: inproc (threads; TUCKER_TRANSPORT=tcp for real processes)".to_string()
        }
        TransportKind::Tcp => format!(
            "transport: tcp (spawned processes, TUCKER_RANKS={})",
            tucker_net::env_ranks()
        ),
    }
}

/// Runs the distributed ST-HOSVD of `data` on the given grid and reports
/// timings and communication volume. The tensor is replicated per rank for
/// block extraction (fine at harness scales).
///
/// With `TUCKER_TRANSPORT=tcp` the ranks are spawned worker processes of the
/// current binary, wired into a loopback TCP mesh: the report's `comm` then
/// carries non-zero `wire_bytes_*`, and `elapsed` includes real socket time.
/// Results are bit-identical across backends (ARCHITECTURE §10).
pub fn run_dist_sthosvd(
    data: &DenseTensor,
    grid_shape: &[usize],
    opts: &SthosvdOptions,
) -> DistRunReport {
    let kind = bench_transport();
    let grid = ProcGrid::new(grid_shape);
    let exec_args: Vec<String> = std::env::args().skip(1).collect();
    let data = data.clone();
    let opts = opts.clone();
    let handle = spmd_transport(kind, "dist_sthosvd", grid, &exec_args, move |comm| {
        let dx = DistTensor::from_global(&comm, &data);
        let result = dist_st_hosvd(&comm, &dx, &opts);
        (result.ranks.clone(), result.timings.clone())
    });
    // Use the slowest rank's per-kernel breakdown (critical path).
    let timings = handle
        .results
        .iter()
        .map(|(_, t)| t.clone())
        .max_by(|a, b| a.total().partial_cmp(&b.total()).unwrap())
        .unwrap_or_default();
    DistRunReport {
        grid: grid_shape.to_vec(),
        elapsed: handle.elapsed,
        timings,
        comm: handle.total_stats(),
        ranks: handle.results[0].0.clone(),
        transport: kind.label(),
    }
}

/// Times a closure and returns `(result, seconds)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Formats a float in engineering style with the given precision.
pub fn eng(v: f64, digits: usize) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if v.abs() >= 1e4 || v.abs() < 1e-2 {
        format!("{:.*e}", digits, v)
    } else {
        format!("{:.*}", digits, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tucker_core::rank::RankSelection;

    #[test]
    fn flop_count_scales_with_problem_size() {
        let small = st_hosvd_flops(&[20, 20, 20], &[5, 5, 5], &[0, 1, 2]);
        let large = st_hosvd_flops(&[40, 40, 40], &[5, 5, 5], &[0, 1, 2]);
        assert!(large > 6.0 * small);
    }

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(0.0, 2), "0");
        assert!(eng(12345.0, 2).contains('e'));
        assert_eq!(eng(3.14159, 2), "3.14");
    }

    #[test]
    fn dist_run_report_smoke() {
        let x = DenseTensor::from_fn(&[8, 8, 8], |idx| (idx[0] + idx[1] + idx[2]) as f64);
        let opts = SthosvdOptions {
            rank: RankSelection::Fixed(vec![2, 2, 2]),
            order: tucker_core::ordering::ModeOrder::Natural,
        };
        let report = run_dist_sthosvd(&x, &[2, 1, 2], &opts);
        assert_eq!(report.ranks, vec![2, 2, 2]);
        assert_eq!(report.timings.gram.len(), 3);
        assert!(report.elapsed > 0.0);
        let (g, e, t) = report.kernel_totals();
        assert!(g >= 0.0 && e >= 0.0 && t >= 0.0);
    }

    #[test]
    fn timed_returns_result() {
        let (v, s) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }
}
