//! Criterion micro-benchmarks for the local computational kernels:
//! GEMM, local TTM, local Gram, and the symmetric eigensolver.
//!
//! These are the per-node building blocks whose efficiency the paper relies on
//! ("the algorithm is efficient because it casts local computations in terms of
//! BLAS3 routines", Sec. I).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tucker_linalg::eig::sym_eig_desc;
use tucker_linalg::gemm::{gemm, Transpose};
use tucker_linalg::syrk::syrk;
use tucker_linalg::Matrix;
use tucker_scidata::random_low_rank;
use tucker_tensor::{gram, ttm, DenseTensor, TtmTranspose};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[64usize, 128] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j) as f64 * 0.01).sin());
        let b = Matrix::from_fn(n, n, |i, j| ((i + 3 * j) as f64 * 0.02).cos());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| {
                gemm(
                    Transpose::No,
                    Transpose::No,
                    1.0,
                    black_box(&a),
                    black_box(&b),
                )
            });
        });
    }
    group.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut group = c.benchmark_group("syrk");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(m, k) in &[(64usize, 512usize), (128, 1024)] {
        let a = Matrix::from_fn(m, k, |i, j| ((i + j) as f64 * 0.01).sin());
        group.bench_with_input(
            BenchmarkId::new("m_k", format!("{m}x{k}")),
            &m,
            |bencher, _| {
                bencher.iter(|| syrk(black_box(&a)));
            },
        );
    }
    group.finish();
}

fn bench_local_ttm(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_ttm");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let x = random_low_rank(1, &[32, 32, 32], &[8, 8, 8]);
    for mode in 0..3usize {
        let v = Matrix::from_fn(8, 32, |i, j| ((i * 5 + j) as f64 * 0.03).sin());
        group.bench_with_input(BenchmarkId::new("mode", mode), &mode, |bencher, &m| {
            bencher.iter(|| ttm(black_box(&x), black_box(&v), m, TtmTranspose::NoTranspose));
        });
    }
    group.finish();
}

fn bench_local_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_gram");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let x = random_low_rank(2, &[32, 32, 32], &[8, 8, 8]);
    for mode in 0..3usize {
        group.bench_with_input(BenchmarkId::new("mode", mode), &mode, |bencher, &m| {
            bencher.iter(|| gram(black_box(&x), m));
        });
    }
    group.finish();
}

fn bench_eigensolver(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eig");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[32usize, 96] {
        let x = DenseTensor::from_fn(&[n, 64], |idx| ((idx[0] * 3 + idx[1]) as f64 * 0.01).sin());
        let s = gram(&x, 0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| sym_eig_desc(black_box(&s)));
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_gemm,
    bench_syrk,
    bench_local_ttm,
    bench_local_gram,
    bench_eigensolver
);
criterion_main!(kernels);
