//! Criterion benchmarks for the simulated runtime's collective operations —
//! the communication primitives whose costs appear in Tab. I of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tucker_distmem::collectives::{all_gather, all_reduce, reduce};
use tucker_distmem::{spmd, SubCommunicator};

fn bench_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(p, w) in &[(4usize, 4096usize), (8, 4096)] {
        group.bench_with_input(
            BenchmarkId::new("p_w", format!("{p}x{w}")),
            &(p, w),
            |bencher, &(p, w)| {
                bencher.iter(|| {
                    spmd(p, move |comm| {
                        let g = SubCommunicator::world_group(&comm);
                        let data = vec![1.0f64; w];
                        all_reduce(&g, &data).len()
                    })
                });
            },
        );
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &p in &[4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bencher, &p| {
            bencher.iter(|| {
                spmd(p, move |comm| {
                    let g = SubCommunicator::world_group(&comm);
                    let data = vec![1.0f64; 4096];
                    reduce(&g, 0, &data).map(|v| v.len()).unwrap_or(0)
                })
            });
        });
    }
    group.finish();
}

fn bench_all_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_gather");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &p in &[4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bencher, &p| {
            bencher.iter(|| {
                spmd(p, move |comm| {
                    let g = SubCommunicator::world_group(&comm);
                    let data = vec![comm.rank() as f64; 1024];
                    all_gather(&g, &data).len()
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    collectives,
    bench_all_reduce,
    bench_reduce,
    bench_all_gather
);
criterion_main!(collectives);
