//! Criterion benchmarks for the end-to-end decompositions: sequential
//! ST-HOSVD, HOOI, and the distributed ST-HOSVD on small simulated grids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tucker_core::dist::{dist_st_hosvd, DistTensor};
use tucker_core::hooi::{hooi, HooiOptions};
use tucker_core::prelude::*;
use tucker_distmem::{spmd_with_grid, ProcGrid};
use tucker_scidata::NoisyLowRank;

fn test_tensor(scale: usize) -> tucker_tensor::DenseTensor {
    NoisyLowRank {
        dims: vec![16 * scale, 16 * scale, 8 * scale, 8],
        ranks: vec![4, 4, 3, 3],
        noise_level: 1e-3,
        seed: 7,
    }
    .generate()
}

fn bench_sthosvd(c: &mut Criterion) {
    let mut group = c.benchmark_group("st_hosvd");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scale in [1usize, 2] {
        let x = test_tensor(scale);
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |bencher, _| {
            bencher.iter(|| st_hosvd(black_box(&x), &SthosvdOptions::with_tolerance(1e-3)));
        });
    }
    group.finish();
}

fn bench_hooi(c: &mut Criterion) {
    let mut group = c.benchmark_group("hooi_one_iteration");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let x = test_tensor(1);
    group.bench_function("scale_1", |bencher| {
        bencher.iter(|| hooi(black_box(&x), &HooiOptions::with_ranks(vec![4, 4, 3, 3], 1)));
    });
    group.finish();
}

fn bench_dist_sthosvd(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_st_hosvd");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let x = test_tensor(1);
    for grid in [vec![1usize, 1, 1, 1], vec![2, 2, 1, 1]] {
        let label = format!("{grid:?}");
        let x = x.clone();
        group.bench_with_input(BenchmarkId::from_parameter(label), &grid, |bencher, g| {
            bencher.iter(|| {
                let x = x.clone();
                spmd_with_grid(ProcGrid::new(g), move |comm| {
                    let dx = DistTensor::from_global(&comm, &x);
                    let r =
                        dist_st_hosvd(&comm, &dx, &SthosvdOptions::with_ranks(vec![4, 4, 3, 3]));
                    r.ranks
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    decompositions,
    bench_sthosvd,
    bench_hooi,
    bench_dist_sthosvd
);
criterion_main!(decompositions);
