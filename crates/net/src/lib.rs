//! # tucker-net — the real multi-process distributed backend
//!
//! Everything below `tucker-distmem`'s [`Transport`] trait, made real: rank
//! threads become rank *processes*, crossbeam channels become a full mesh of
//! loopback TCP sockets, and the paper's communication volumes become bytes
//! you can watch cross a socket. The SPMD surface is unchanged — the same
//! closure that runs under `spmd_with_grid_handle` runs under
//! [`spmd_transport`], and the determinism contract extends across the
//! boundary: **the same grid produces bit-identical answers on both
//! backends**, because messages carry exact `f64` bit patterns
//! (`to_bits`/`from_bits`, no text round-trip) and per-pair delivery order
//! is socket FIFO order, exactly the per-pair channel order the in-process
//! backend guarantees.
//!
//! ## Module map
//!
//! | module | provides |
//! |--------|----------|
//! | [`frame`] | length-prefix framing (serve-style), opcodes, on-wire byte counters |
//! | [`error`] | [`NetError`] — every failure typed, nothing panics, nothing hangs |
//! | [`tcp`] | [`TcpTransport`]: the `Transport` impl; eager writer threads, region-stamped barriers |
//! | [`launch`] | worker spawning, rendezvous, the region protocol, [`spmd_transport`] |
//!
//! ## Choosing a backend
//!
//! Call sites select with [`TransportKind`], usually via
//! [`transport_from_env`]:
//!
//! - `TUCKER_TRANSPORT=inproc` (default): ranks as threads, zero processes.
//! - `TUCKER_TRANSPORT=tcp`: ranks as spawned processes of the current
//!   binary, `TUCKER_RANKS` of them by convention ([`env_ranks`]).
//!
//! The fault battery (`tests/transport_faults.rs`) pins the failure surface:
//! truncated, oversized and garbage frames fail decode with typed errors;
//! a peer that dies mid-collective fails the survivors' blocking calls
//! within the deadline ([`net_timeout`]) — never a hang, never a panic.

#![deny(missing_docs)]

pub mod error;
pub mod frame;
pub mod launch;
pub mod tcp;

pub use error::NetError;
pub use launch::{
    env_ranks, in_worker, net_timeout, spmd_transport, test_exec_args, transport_from_env,
    try_spmd_transport, NetSession, TransportKind,
};
pub use tcp::{local_mesh, PeerLink, TcpTransport};

// Re-export the pieces of the distmem surface that appear in our signatures,
// so tests and benches can depend on one crate for the distributed story.
pub use tucker_distmem::transport::{Transport, TransportError};
pub use tucker_distmem::{SpmdHandle, StatsSnapshot, Wire};
