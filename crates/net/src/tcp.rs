//! The TCP mesh transport: `tucker-distmem`'s [`Transport`] over real sockets.
//!
//! One [`PeerLink`] per peer carries all traffic between a fixed pair of
//! ranks, so per-pair program order is exactly socket FIFO order — the same
//! ordering guarantee the in-process channels give, which is what makes the
//! backends bit-identical (see `distmem::transport`).
//!
//! # Eager sends
//!
//! The in-process backend's sends are buffered and never block; the
//! collectives' shifted `sendrecv` exchanges rely on that for deadlock
//! freedom. A naive `write_all` would break it: two ranks pushing large ring
//! chunks at each other can both fill their kernel socket buffers and wedge.
//! Each link therefore owns a *writer thread* fed by an unbounded queue —
//! `send` enqueues the encoded frame and returns, restoring the eager
//! contract; wire bytes are counted at enqueue time against the rank's
//! [`CommStats`].
//!
//! # Barriers
//!
//! A barrier is a centralized token exchange stamped with `(region, seq)`:
//! every worker sends `BARRIER` to rank 0, rank 0 collects all tokens and
//! sends `RELEASE` to every worker. Because barrier frames share the sockets
//! with messages, the reader buffers out-of-order traffic: a `MSG` that
//! arrives while waiting for a token is queued for the next `recv`, and a
//! token that arrives while waiting for a `MSG` is queued for the next
//! barrier. Every blocking read honours the link's deadline, so a lost peer
//! is a typed error, never a hang.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::Duration;

use tucker_distmem::transport::{Transport, TransportError};
use tucker_distmem::{CommStats, Wire};

use crate::error::NetError;
use crate::frame::{
    encode_frame, note_sent, read_frame, OP_ABORT, OP_BARRIER, OP_MSG, OP_PANIC, OP_RELEASE,
};

/// Locks a mutex, riding through poisoning (a panicked peer thread must not
/// turn into a second panic here — errors stay typed).
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Reader-side state of one peer socket: the stream plus queues for frames
/// that arrived while a different kind was being waited for.
struct ReadState {
    stream: TcpStream,
    /// Buffered `MSG` payloads: `(region, words)`.
    inbox: VecDeque<(u64, Vec<f64>)>,
    /// Buffered `BARRIER` tokens: `(region, seq)`.
    barriers: VecDeque<(u64, u64)>,
    /// Buffered `RELEASE` tokens: `(region, seq)`.
    releases: VecDeque<(u64, u64)>,
}

/// What flows to the writer thread: a frame to put on the wire, or a flush
/// marker whose ack proves every earlier frame reached `write_all`.
enum WriterMsg {
    Frame(Vec<u8>),
    Flush(mpsc::Sender<()>),
}

/// A bidirectional, order-preserving connection to one peer rank.
pub struct PeerLink {
    write_tx: Mutex<Option<mpsc::Sender<WriterMsg>>>,
    writer_err: Arc<Mutex<Option<String>>>,
    read: Mutex<ReadState>,
}

impl PeerLink {
    /// Wraps a connected stream: disables Nagle, arms the read deadline, and
    /// starts the buffered writer thread.
    pub fn new(stream: TcpStream, timeout: Duration) -> Result<PeerLink, NetError> {
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::from_io(&e, "set_nodelay"))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| NetError::from_io(&e, "set_read_timeout"))?;
        let mut write_half = stream
            .try_clone()
            .map_err(|e| NetError::from_io(&e, "clone stream for writer"))?;
        let (tx, rx) = mpsc::channel::<WriterMsg>();
        let writer_err = Arc::new(Mutex::new(None::<String>));
        let err_slot = Arc::clone(&writer_err);
        std::thread::Builder::new()
            .name("tucker-net-writer".into())
            .spawn(move || {
                use std::io::Write as _;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        WriterMsg::Frame(frame) => {
                            if let Err(e) = write_half.write_all(&frame) {
                                *lock_clean(&err_slot) = Some(e.to_string());
                                // Keep draining so senders never see a full
                                // queue; frames are dropped, the error is
                                // reported on the next enqueue, and flush
                                // acks still fire so nobody blocks.
                                while let Ok(m) = rx.recv() {
                                    if let WriterMsg::Flush(ack) = m {
                                        let _ = ack.send(());
                                    }
                                }
                                return;
                            }
                        }
                        WriterMsg::Flush(ack) => {
                            let _ = write_half.flush();
                            let _ = ack.send(());
                        }
                    }
                }
                let _ = write_half.flush();
            })
            .map_err(|e| NetError::Io {
                detail: format!("spawn writer thread: {e}"),
            })?;
        Ok(PeerLink {
            write_tx: Mutex::new(Some(tx)),
            writer_err,
            read: Mutex::new(ReadState {
                stream,
                inbox: VecDeque::new(),
                barriers: VecDeque::new(),
                releases: VecDeque::new(),
            }),
        })
    }

    /// Enqueues an encoded frame for the writer thread (eager send). Counts
    /// the frame's full on-wire size against `stats` at enqueue time.
    pub fn enqueue(&self, frame: Vec<u8>, stats: Option<&CommStats>) -> Result<(), NetError> {
        if let Some(e) = lock_clean(&self.writer_err).clone() {
            return Err(NetError::Closed {
                detail: format!("writer failed earlier: {e}"),
            });
        }
        let len = frame.len() as u64;
        let guard = lock_clean(&self.write_tx);
        match guard.as_ref() {
            Some(tx) => match tx.send(WriterMsg::Frame(frame)) {
                Ok(()) => {
                    note_sent(len, stats);
                    Ok(())
                }
                Err(_) => Err(NetError::Closed {
                    detail: "writer thread gone".into(),
                }),
            },
            None => Err(NetError::Closed {
                detail: "link shut down".into(),
            }),
        }
    }

    /// Blocks until every frame enqueued before this call has been handed to
    /// the kernel (`write_all` returned). Needed before process exit: the
    /// writer thread is detached, so `std::process::exit` right after an
    /// `enqueue` can otherwise drop a final frame (e.g. the result `TABLE`)
    /// on the floor and peers see a spurious EOF.
    pub fn flush(&self, timeout: Duration) -> Result<(), NetError> {
        let (ack_tx, ack_rx) = mpsc::channel::<()>();
        {
            let guard = lock_clean(&self.write_tx);
            match guard.as_ref() {
                Some(tx) => {
                    if tx.send(WriterMsg::Flush(ack_tx)).is_err() {
                        return Err(NetError::Closed {
                            detail: "writer thread gone".into(),
                        });
                    }
                }
                None => {
                    return Err(NetError::Closed {
                        detail: "link shut down".into(),
                    })
                }
            }
        }
        ack_rx
            .recv_timeout(timeout)
            .map_err(|_| NetError::Timeout {
                detail: "flush ack".into(),
            })?;
        if let Some(e) = lock_clean(&self.writer_err).clone() {
            return Err(NetError::Closed {
                detail: format!("writer failed earlier: {e}"),
            });
        }
        Ok(())
    }

    /// Reads one raw frame off the socket (deadline armed).
    fn read_raw(
        &self,
        state: &mut ReadState,
        stats: Option<&CommStats>,
    ) -> Result<(u8, Vec<u8>), NetError> {
        read_frame(&mut state.stream, stats)
    }

    /// Decodes a region-stamped `(region, seq)` token body.
    fn decode_token(body: &[u8]) -> Result<(u64, u64), NetError> {
        Ok(<(u64, u64)>::from_wire_bytes(body)?)
    }

    /// Decodes an `ABORT` body into the typed error it announces.
    fn abort_error(body: &[u8]) -> NetError {
        match <(u64, u64, String)>::from_wire_bytes(body) {
            Ok((_region, rank, message)) => NetError::RankPanicked {
                rank: rank as usize,
                message,
            },
            Err(e) => e.into(),
        }
    }

    /// Receives the next `MSG` payload for `region`, buffering any barrier
    /// traffic that arrives first.
    pub fn recv_msg(&self, region: u64, stats: Option<&CommStats>) -> Result<Vec<f64>, NetError> {
        let mut st = lock_clean(&self.read);
        if let Some((r, data)) = st.inbox.pop_front() {
            if r == region {
                return Ok(data);
            }
            return Err(NetError::Malformed {
                detail: format!("buffered message stamped region {r}, expected {region}"),
            });
        }
        loop {
            let (op, body) = self.read_raw(&mut st, stats)?;
            match op {
                OP_MSG => {
                    let (r, data) = <(u64, Vec<f64>)>::from_wire_bytes(&body)?;
                    if r != region {
                        return Err(NetError::Malformed {
                            detail: format!("message stamped region {r}, expected {region}"),
                        });
                    }
                    return Ok(data);
                }
                OP_BARRIER => st.barriers.push_back(Self::decode_token(&body)?),
                OP_RELEASE => st.releases.push_back(Self::decode_token(&body)?),
                // A peer announcing its death unblocks us with the rank
                // attribution, whether it addressed us as a peer (ABORT) or
                // we are rank 0 hearing the launcher-bound report (PANIC).
                OP_ABORT | OP_PANIC => return Err(Self::abort_error(&body)),
                other => {
                    return Err(NetError::Malformed {
                        detail: format!("unexpected opcode {other:#04x} while receiving"),
                    })
                }
            }
        }
    }

    /// Waits for the peer's `BARRIER` token for `(region, seq)`, buffering
    /// messages that arrive first.
    pub fn wait_barrier(
        &self,
        region: u64,
        seq: u64,
        stats: Option<&CommStats>,
    ) -> Result<(), NetError> {
        self.wait_token(region, seq, stats, /*release=*/ false)
    }

    /// Waits for rank 0's `RELEASE` token for `(region, seq)`.
    pub fn wait_release(
        &self,
        region: u64,
        seq: u64,
        stats: Option<&CommStats>,
    ) -> Result<(), NetError> {
        self.wait_token(region, seq, stats, /*release=*/ true)
    }

    fn wait_token(
        &self,
        region: u64,
        seq: u64,
        stats: Option<&CommStats>,
        release: bool,
    ) -> Result<(), NetError> {
        let mut st = lock_clean(&self.read);
        let queue = if release {
            &mut st.releases
        } else {
            &mut st.barriers
        };
        if let Some(&(r, s)) = queue.front() {
            queue.pop_front();
            if (r, s) == (region, seq) {
                return Ok(());
            }
            return Err(NetError::Malformed {
                detail: format!("barrier token ({r},{s}) out of order, expected ({region},{seq})"),
            });
        }
        loop {
            let (op, body) = self.read_raw(&mut st, stats)?;
            match op {
                OP_MSG => {
                    let (r, data) = <(u64, Vec<f64>)>::from_wire_bytes(&body)?;
                    st.inbox.push_back((r, data));
                }
                OP_BARRIER | OP_RELEASE => {
                    let tok = Self::decode_token(&body)?;
                    if (op == OP_RELEASE) == release {
                        if tok == (region, seq) {
                            return Ok(());
                        }
                        return Err(NetError::Malformed {
                            detail: format!(
                                "barrier token ({},{}) out of order, expected ({region},{seq})",
                                tok.0, tok.1
                            ),
                        });
                    }
                    if op == OP_RELEASE {
                        st.releases.push_back(tok);
                    } else {
                        st.barriers.push_back(tok);
                    }
                }
                OP_ABORT | OP_PANIC => return Err(Self::abort_error(&body)),
                other => {
                    return Err(NetError::Malformed {
                        detail: format!("unexpected opcode {other:#04x} at barrier"),
                    })
                }
            }
        }
    }

    /// Reads one control frame (region/result/table handshakes). Used only
    /// at region boundaries, where no message or barrier traffic is in
    /// flight on a correct SPMD program — anything unexpected is a typed
    /// protocol error.
    pub fn read_control(&self, stats: Option<&CommStats>) -> Result<(u8, Vec<u8>), NetError> {
        let mut st = lock_clean(&self.read);
        self.read_raw(&mut st, stats)
    }
}

/// A [`Transport`] endpoint over a mesh of [`PeerLink`]s for one SPMD region.
///
/// Cheap to construct per region: links are shared `Arc`s owned by the
/// session (or the caller, for hand-built meshes in tests), while the stats
/// handle and region stamp are per-region.
pub struct TcpTransport {
    rank: usize,
    world: usize,
    region: u64,
    links: Vec<Option<Arc<PeerLink>>>,
    stats: Arc<CommStats>,
    barrier_seq: AtomicU64,
}

impl TcpTransport {
    /// Assembles a transport from pre-wired links (`None` at `rank`'s index).
    pub fn new(
        rank: usize,
        world: usize,
        region: u64,
        links: Vec<Option<Arc<PeerLink>>>,
        stats: Arc<CommStats>,
    ) -> TcpTransport {
        TcpTransport {
            rank,
            world,
            region,
            links,
            stats,
            barrier_seq: AtomicU64::new(0),
        }
    }

    /// Wraps raw connected streams (index = peer rank, `None` at `rank`) —
    /// the hook the fault-injection battery uses to speak garbage at a
    /// transport from a hand-held socket.
    pub fn over_streams(
        rank: usize,
        world: usize,
        streams: Vec<Option<TcpStream>>,
        stats: Arc<CommStats>,
        timeout: Duration,
    ) -> Result<TcpTransport, NetError> {
        let mut links = Vec::with_capacity(world);
        for s in streams {
            links.push(match s {
                Some(s) => Some(Arc::new(PeerLink::new(s, timeout)?)),
                None => None,
            });
        }
        Ok(TcpTransport::new(rank, world, 0, links, stats))
    }

    /// The stats handle wire bytes are recorded into.
    pub fn stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }

    fn link(&self, peer: usize) -> Result<&Arc<PeerLink>, TransportError> {
        match self.links.get(peer) {
            Some(Some(l)) => Ok(l),
            _ => Err(TransportError::Protocol {
                detail: format!("rank {} has no link to peer {peer}", self.rank),
            }),
        }
    }

    /// Encodes a `MSG` frame for this region.
    fn msg_frame(&self, data: &[f64]) -> Result<Vec<u8>, NetError> {
        let mut body = Vec::with_capacity(16 + data.len() * 8);
        self.region.encode(&mut body);
        (data.len() as u64).encode(&mut body);
        for x in data {
            body.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        encode_frame(OP_MSG, &body)
    }
}

impl Transport for TcpTransport {
    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn send(&self, dst: usize, data: &[f64]) -> Result<(), TransportError> {
        let link = self.link(dst)?;
        let frame = self.msg_frame(data).map_err(|e| e.into_transport(dst))?;
        link.enqueue(frame, Some(&self.stats))
            .map_err(|e| e.into_transport(dst))
    }

    fn recv(&self, src: usize) -> Result<Vec<f64>, TransportError> {
        let link = self.link(src)?;
        link.recv_msg(self.region, Some(&self.stats))
            .map_err(|e| e.into_transport(src))
    }

    fn barrier(&self) -> Result<(), TransportError> {
        let seq = self.barrier_seq.fetch_add(1, Ordering::SeqCst);
        if self.world == 1 {
            return Ok(());
        }
        let mut token = Vec::with_capacity(16);
        (self.region, seq).encode(&mut token);
        if self.rank == 0 {
            for w in 1..self.world {
                self.link(w)?
                    .wait_barrier(self.region, seq, Some(&self.stats))
                    .map_err(|e| e.into_transport(w))?;
            }
            let frame = encode_frame(OP_RELEASE, &token).map_err(|e| e.into_transport(0))?;
            for w in 1..self.world {
                self.link(w)?
                    .enqueue(frame.clone(), Some(&self.stats))
                    .map_err(|e| e.into_transport(w))?;
            }
        } else {
            let frame = encode_frame(OP_BARRIER, &token).map_err(|e| e.into_transport(0))?;
            self.link(0)?
                .enqueue(frame, Some(&self.stats))
                .map_err(|e| e.into_transport(0))?;
            self.link(0)?
                .wait_release(self.region, seq, Some(&self.stats))
                .map_err(|e| e.into_transport(0))?;
        }
        Ok(())
    }

    fn wire_bytes_sent(&self) -> u64 {
        self.stats.snapshot().wire_bytes_sent
    }
}

/// Sends an `ABORT` for `region` on a link, attributing it to `rank` with
/// `message`. Best effort — a dead link is ignored, the peer is gone anyway.
pub fn send_abort(link: &PeerLink, region: u64, rank: usize, message: &str) {
    let mut body = Vec::new();
    (region, rank as u64, message.to_string()).encode(&mut body);
    if let Ok(frame) = encode_frame(OP_ABORT, &body) {
        let _ = link.enqueue(frame, None);
    }
}

/// Builds a fully-wired loopback mesh of `p` transports *within one process*
/// (each rank on its own real socket pair). This is the TCP backend minus
/// the process launcher: tests use it to exercise real-socket framing,
/// barriers and fault injection without spawning.
pub fn local_mesh(p: usize, timeout: Duration) -> Result<Vec<TcpTransport>, NetError> {
    let mut listeners = Vec::with_capacity(p);
    let mut addrs = Vec::with_capacity(p);
    for _ in 0..p {
        let l = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| NetError::from_io(&e, "bind local mesh listener"))?;
        addrs.push(
            l.local_addr()
                .map_err(|e| NetError::from_io(&e, "local_addr"))?,
        );
        listeners.push(l);
    }
    let mut streams: Vec<Vec<Option<TcpStream>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    // Dial lower ranks from higher ranks; identify each connection with a
    // one-frame rank header so the acceptor knows who called.
    for j in 0..p {
        for i in 0..j {
            let mut s = TcpStream::connect(addrs[i])
                .map_err(|e| NetError::from_io(&e, "local mesh connect"))?;
            crate::frame::write_frame(
                &mut s,
                crate::frame::OP_PEER,
                &(j as u64).to_wire_bytes(),
                None,
            )?;
            crate::frame::NET_CONNECT.inc();
            streams[j][i] = Some(s);
        }
    }
    for (i, l) in listeners.iter().enumerate() {
        for _ in 0..p - 1 - i {
            let (mut s, _) = l
                .accept()
                .map_err(|e| NetError::from_io(&e, "local mesh accept"))?;
            s.set_read_timeout(Some(timeout))
                .map_err(|e| NetError::from_io(&e, "set_read_timeout"))?;
            let (op, body) = read_frame(&mut s, None)?;
            if op != crate::frame::OP_PEER {
                return Err(NetError::Malformed {
                    detail: format!("expected PEER header, got opcode {op:#04x}"),
                });
            }
            let j = u64::from_wire_bytes(&body)? as usize;
            if j >= p || j <= i {
                return Err(NetError::Malformed {
                    detail: format!("peer header names invalid rank {j}"),
                });
            }
            streams[i][j] = Some(s);
        }
    }
    let mut out = Vec::with_capacity(p);
    for (r, row) in streams.into_iter().enumerate() {
        out.push(TcpTransport::over_streams(
            r,
            p,
            row,
            CommStats::new_shared(),
            timeout,
        )?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(p: usize) -> Vec<TcpTransport> {
        local_mesh(p, Duration::from_secs(10)).expect("local mesh")
    }

    #[test]
    fn mesh_ring_exchange_matches_inproc_semantics() {
        let world = mesh(3);
        let results: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = world
                .into_iter()
                .enumerate()
                .map(|(r, t)| {
                    s.spawn(move || {
                        let next = (r + 1) % 3;
                        let prev = (r + 2) % 3;
                        t.send(next, &[r as f64 * 1.5]).unwrap();
                        t.recv(prev).unwrap()[0]
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results, vec![3.0, 0.0, 1.5]);
    }

    #[test]
    fn per_pair_order_is_preserved() {
        let mut world = mesh(2);
        let t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                for k in 0..50 {
                    t0.send(1, &[k as f64]).unwrap();
                }
            });
            let h = s.spawn(move || {
                for k in 0..50 {
                    assert_eq!(t1.recv(0).unwrap(), vec![k as f64]);
                }
            });
            h.join().unwrap();
        });
    }

    #[test]
    fn barrier_synchronizes_mesh() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let world = mesh(4);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = world
                .into_iter()
                .map(|t| {
                    let counter = &counter;
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                        t.barrier().unwrap();
                        assert_eq!(counter.load(Ordering::SeqCst), 4);
                        t.barrier().unwrap();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn eager_sends_do_not_deadlock_on_large_exchanges() {
        // Both sides push ~8 MB at each other before either reads — far past
        // any kernel socket buffer. The writer threads make this eager.
        let mut world = mesh(2);
        let t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();
        let big = vec![1.25f64; 1 << 20];
        std::thread::scope(|s| {
            let h0 = s.spawn({
                let big = big.clone();
                move || {
                    t0.send(1, &big).unwrap();
                    t0.recv(1).unwrap()
                }
            });
            let h1 = s.spawn({
                let big = big.clone();
                move || {
                    t1.send(0, &big).unwrap();
                    t1.recv(0).unwrap()
                }
            });
            assert_eq!(h0.join().unwrap().len(), 1 << 20);
            assert_eq!(h1.join().unwrap().len(), 1 << 20);
        });
    }

    #[test]
    fn payload_bits_survive_the_wire() {
        let mut world = mesh(2);
        let t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();
        let payload = vec![
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::from_bits(0x7ff8_0000_0000_0001), // a NaN with payload bits
            f64::MIN_POSITIVE / 2.0,               // subnormal
            1.000000000000000222e0,
        ];
        std::thread::scope(|s| {
            let p2 = payload.clone();
            s.spawn(move || t0.send(1, &p2).unwrap());
            let got = s.spawn(move || t1.recv(0).unwrap()).join().unwrap();
            for (a, b) in payload.iter().zip(got.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        });
    }

    #[test]
    fn wire_bytes_are_exact() {
        // One message of W words costs 21 + 8W on the wire (4 len + 1 op +
        // 8 region + 8 count + 8W payload); nothing else moves.
        let mut world = mesh(2);
        let t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();
        let w = 37usize;
        std::thread::scope(|s| {
            let h1 = s.spawn(move || {
                let got = t1.recv(0).unwrap();
                assert_eq!(got.len(), w);
                t1.stats().snapshot()
            });
            let h0 = s.spawn(move || {
                t0.send(1, &vec![0.5; w]).unwrap();
                t0.stats().snapshot()
            });
            let s0 = h0.join().unwrap();
            let s1 = h1.join().unwrap();
            assert_eq!(s0.wire_bytes_sent, (21 + 8 * w) as u64);
            assert_eq!(s1.wire_bytes_received, (21 + 8 * w) as u64);
        });
    }

    #[test]
    fn dead_peer_recv_is_typed_not_hung() {
        let mut world = mesh(2);
        let t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();
        drop(t1); // rank 1 vanishes; its sockets close
        let err = t0.recv(1).unwrap_err();
        assert_eq!(err, TransportError::PeerGone { peer: 1 });
    }

    #[test]
    fn dead_peer_mid_barrier_is_typed_not_hung() {
        let world = local_mesh(2, Duration::from_millis(300)).unwrap();
        let mut it = world.into_iter();
        let t0 = it.next().unwrap();
        let t1 = it.next().unwrap();
        drop(t1);
        // Rank 0 waits for rank 1's token; the closed socket surfaces as a
        // typed error well before the deadline.
        let err = t0.barrier().unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::PeerGone { peer: 1 } | TransportError::Timeout { peer: 1, .. }
            ),
            "unexpected error: {err:?}"
        );
    }
}
