//! Multi-process SPMD: spawn `P` worker processes of the current binary and
//! run the same closure as rank 0 here and rank `r` there.
//!
//! # Model
//!
//! The classic MPI trick, adapted to a test/bench binary: the launcher
//! re-execs `current_exe()` with caller-chosen arguments (for a test binary:
//! `[test_name, "--exact"]`, so the worker runs *exactly one* test) and a
//! small set of `TUCKER_NET_*` environment variables carrying the worker's
//! rank, world size, the launcher's rendezvous address and a job id. Because
//! every process deterministically executes the same program, the worker
//! reaches the same [`spmd_transport`] call sites in the same order as the
//! launcher — SPMD at process granularity.
//!
//! # Rendezvous
//!
//! Rank 0 binds a loopback listener before spawning. Each worker binds its
//! own listener, dials rank 0 and sends `HELLO(job, rank, world, addr)`;
//! once all `P-1` hellos are in, rank 0 replies with `ADDRS` (the full
//! address table) and every worker dials every lower-ranked worker
//! (identifying itself with a `PEER` frame), yielding a full mesh. The
//! accept loop polls worker liveness (`try_wait`) so a worker that dies
//! before connecting is a typed [`NetError::WorkerExited`], not a hang, and
//! the whole phase is bounded by `TUCKER_NET_TIMEOUT_MS`.
//!
//! # Regions
//!
//! Each [`spmd_transport`] call is a *region*, numbered in call order. Rank 0
//! opens it with a `REGION(idx, name, grid)` header (workers verify all
//! three — a divergent program is a typed [`NetError::RegionMismatch`]),
//! both sides run the closure over a region-stamped [`TcpTransport`], then
//! workers send `RESULT(stats, bytes)` and rank 0 broadcasts the full
//! `TABLE` back, so every process returns an identical [`SpmdHandle`] —
//! including the per-rank [`StatsSnapshot`]s, whose wire-byte counters cover
//! every frame header. Closure results cross the wire as exact
//! [`Wire`] bytes (`f64` via `to_bits`), so the table is bit-identical in
//! every process.
//!
//! A panicking rank sends `ABORT` to its peers (their blocking calls fail
//! with the rank attribution) and `PANIC` to rank 0, which picks the root
//! cause exactly like `distmem::try_spmd_with_grid_handle` and aborts the
//! region everywhere. The socket mesh is unknowable after that, so the
//! session is *poisoned*: further regions fail immediately with
//! [`NetError::SessionPoisoned`].
//!
//! Sessions are cached per `(exec_args, world)` — a program with many
//! same-sized regions (fig8's sweep, the equivalence tests) spawns its
//! workers once. A worker participates only in regions whose grid size
//! matches its world; differently-sized regions run in-process locally, so
//! multi-`P` programs work unchanged.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use tucker_distmem::{
    try_spmd_with_grid_handle, CommStats, Communicator, ProcGrid, SpmdHandle, StatsSnapshot, Wire,
};

use crate::error::NetError;
use crate::frame::{
    encode_frame, read_frame, write_frame, NET_CONNECT, OP_ABORT, OP_ADDRS, OP_BARRIER, OP_HELLO,
    OP_MSG, OP_PANIC, OP_PEER, OP_REGION, OP_RELEASE, OP_RESULT, OP_TABLE,
};
use crate::tcp::{send_abort, PeerLink, TcpTransport};

/// Which backend an SPMD region runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Ranks as threads over crossbeam channels (the default; the
    /// bit-identity reference backend).
    InProc,
    /// Ranks as spawned processes over a loopback TCP mesh.
    Tcp,
}

impl TransportKind {
    /// Short label (`"inproc"` / `"tcp"`), matching `Communicator::transport_kind`.
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::InProc => "inproc",
            TransportKind::Tcp => "tcp",
        }
    }
}

/// Reads `TUCKER_TRANSPORT` (`inproc` default, `tcp` for real processes).
pub fn transport_from_env() -> TransportKind {
    match std::env::var("TUCKER_TRANSPORT") {
        Ok(v) if v.eq_ignore_ascii_case("tcp") => TransportKind::Tcp,
        _ => TransportKind::InProc,
    }
}

/// Reads `TUCKER_RANKS` — the process count the distributed gates should use
/// (default 2). Grid shapes stay the caller's business; this is just `P`.
pub fn env_ranks() -> usize {
    std::env::var("TUCKER_RANKS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&p| p > 0)
        .unwrap_or(2)
}

/// True in a spawned worker process (`TUCKER_NET_RANK` is set).
pub fn in_worker() -> bool {
    std::env::var_os("TUCKER_NET_RANK").is_some()
}

/// Rendezvous/read deadline: `TUCKER_NET_TIMEOUT_MS`, default 60 s.
pub fn net_timeout() -> Duration {
    let ms = std::env::var("TUCKER_NET_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(60_000);
    Duration::from_millis(ms)
}

/// The exec arguments that make a re-exec'ed *test binary* run exactly the
/// test it was spawned from: `[test_path, "--exact"]`.
pub fn test_exec_args(test_path: &str) -> Vec<String> {
    vec![test_path.to_string(), "--exact".to_string()]
}

/// The identity a worker process is born with.
#[derive(Debug, Clone)]
struct WorkerEnv {
    rank: usize,
    world: usize,
    addr: String,
    job: String,
}

fn worker_env() -> Result<WorkerEnv, NetError> {
    fn var(name: &str) -> Result<String, NetError> {
        std::env::var(name).map_err(|_| NetError::Handshake {
            detail: format!("worker is missing {name}"),
        })
    }
    let rank = var("TUCKER_NET_RANK")?
        .parse::<usize>()
        .map_err(|e| NetError::Handshake {
            detail: format!("bad TUCKER_NET_RANK: {e}"),
        })?;
    let world = var("TUCKER_NET_WORLD")?
        .parse::<usize>()
        .map_err(|e| NetError::Handshake {
            detail: format!("bad TUCKER_NET_WORLD: {e}"),
        })?;
    if rank == 0 || rank >= world {
        return Err(NetError::Handshake {
            detail: format!("worker rank {rank} out of range for world {world}"),
        });
    }
    Ok(WorkerEnv {
        rank,
        world,
        addr: var("TUCKER_NET_ADDR")?,
        job: var("TUCKER_NET_JOB")?,
    })
}

/// One wired-up process mesh, alive for the rest of the process (or until an
/// abort poisons it).
pub struct NetSession {
    rank: usize,
    world: usize,
    links: Vec<Option<Arc<PeerLink>>>,
    region_counter: AtomicU64,
    poisoned: Mutex<Option<String>>,
}

impl NetSession {
    /// World size (process count, launcher included).
    pub fn world(&self) -> usize {
        self.world
    }

    fn link(&self, peer: usize) -> Result<&Arc<PeerLink>, NetError> {
        match self.links.get(peer) {
            Some(Some(l)) => Ok(l),
            _ => Err(NetError::Malformed {
                detail: format!("rank {} has no link to peer {peer}", self.rank),
            }),
        }
    }

    fn check_poisoned(&self) -> Result<(), NetError> {
        match &*lock(&self.poisoned) {
            Some(why) => Err(NetError::SessionPoisoned {
                detail: why.clone(),
            }),
            None => Ok(()),
        }
    }

    fn poison(&self, why: &str) {
        let mut slot = lock(&self.poisoned);
        if slot.is_none() {
            *slot = Some(why.to_string());
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Mirrors `distmem`'s cascade heuristic, extended with the wire-level
/// symptoms of a dead peer: failures *caused by* another rank's death should
/// not be blamed as root causes.
fn is_cascade(msg: &str) -> bool {
    msg.contains("has terminated")
        || msg.contains("aborted by rank")
        || msg.contains("timed out")
        || msg.contains("connection closed")
}

fn pick_root(fails: &[(usize, String)]) -> (usize, String) {
    fails
        .iter()
        .find(|(_, m)| !is_cascade(m))
        .unwrap_or(&fails[0])
        .clone()
}

// ---------------------------------------------------------------------------
// Rendezvous
// ---------------------------------------------------------------------------

static JOB_SEQ: AtomicU64 = AtomicU64::new(0);

fn parent_sessions() -> &'static Mutex<HashMap<(String, usize), Arc<NetSession>>> {
    static MAP: OnceLock<Mutex<HashMap<(String, usize), Arc<NetSession>>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
}

fn parent_session(exec_args: &[String], world: usize) -> Result<Arc<NetSession>, NetError> {
    let key = (exec_args.join("\u{1f}"), world);
    let mut map = lock(parent_sessions());
    if let Some(s) = map.get(&key) {
        return Ok(Arc::clone(s));
    }
    let session = Arc::new(create_parent_session(exec_args, world)?);
    map.insert(key, Arc::clone(&session));
    Ok(session)
}

fn kill_all(children: &mut [(usize, Child)]) {
    for (_, c) in children.iter_mut() {
        let _ = c.kill();
        let _ = c.wait();
    }
}

fn create_parent_session(exec_args: &[String], world: usize) -> Result<NetSession, NetError> {
    let timeout = net_timeout();
    let _span = tucker_obs::span!("net.rendezvous", world = world);
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| NetError::from_io(&e, "bind rendezvous listener"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| NetError::from_io(&e, "rendezvous local_addr"))?;
    let job = format!(
        "{}-{}",
        std::process::id(),
        JOB_SEQ.fetch_add(1, Ordering::SeqCst)
    );
    let exe = std::env::current_exe().map_err(|e| NetError::Spawn {
        detail: format!("current_exe: {e}"),
    })?;
    let mut children: Vec<(usize, Child)> = Vec::with_capacity(world - 1);
    for rank in 1..world {
        let spawned = Command::new(&exe)
            .args(exec_args)
            .env("TUCKER_NET_RANK", rank.to_string())
            .env("TUCKER_NET_WORLD", world.to_string())
            .env("TUCKER_NET_ADDR", addr.to_string())
            .env("TUCKER_NET_JOB", &job)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn();
        match spawned {
            Ok(c) => children.push((rank, c)),
            Err(e) => {
                kill_all(&mut children);
                return Err(NetError::Spawn {
                    detail: format!("spawn worker rank {rank}: {e}"),
                });
            }
        }
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| NetError::from_io(&e, "listener nonblocking"))?;
    let deadline = Instant::now() + timeout;
    let mut streams: Vec<Option<(TcpStream, String)>> = (0..world).map(|_| None).collect();
    let mut connected = 0usize;
    while connected < world - 1 {
        match listener.accept() {
            Ok((mut s, _)) => {
                let hello = (|| -> Result<(usize, String), NetError> {
                    s.set_nonblocking(false)
                        .map_err(|e| NetError::from_io(&e, "accepted socket blocking"))?;
                    s.set_read_timeout(Some(timeout))
                        .map_err(|e| NetError::from_io(&e, "accepted socket timeout"))?;
                    let (op, body) = read_frame(&mut s, None)?;
                    if op != OP_HELLO {
                        return Err(NetError::Handshake {
                            detail: format!("expected HELLO, got opcode {op:#04x}"),
                        });
                    }
                    let (hjob, hrank, hworld, haddr) =
                        <(String, u64, u64, String)>::from_wire_bytes(&body)?;
                    let hrank = hrank as usize;
                    if hjob != job || hworld as usize != world {
                        return Err(NetError::Handshake {
                            detail: format!(
                                "HELLO for job '{hjob}' world {hworld}, \
                                 expected '{job}' world {world}"
                            ),
                        });
                    }
                    if hrank == 0 || hrank >= world || streams[hrank].is_some() {
                        return Err(NetError::Handshake {
                            detail: format!("HELLO from unexpected rank {hrank}"),
                        });
                    }
                    Ok((hrank, haddr))
                })();
                match hello {
                    Ok((hrank, haddr)) => {
                        NET_CONNECT.inc();
                        streams[hrank] = Some((s, haddr));
                        connected += 1;
                    }
                    Err(e) => {
                        kill_all(&mut children);
                        return Err(e);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                for (rank, c) in children.iter_mut() {
                    if let Ok(Some(status)) = c.try_wait() {
                        let rank = *rank;
                        kill_all(&mut children);
                        return Err(NetError::WorkerExited {
                            rank,
                            detail: format!("during rendezvous, status {status}"),
                        });
                    }
                }
                if Instant::now() > deadline {
                    kill_all(&mut children);
                    return Err(NetError::Timeout {
                        detail: format!(
                            "rendezvous: {connected}/{} workers connected within {timeout:?}",
                            world - 1
                        ),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                kill_all(&mut children);
                return Err(NetError::from_io(&e, "rendezvous accept"));
            }
        }
    }
    // All hellos in: publish the address table, then arm each socket as a
    // buffered PeerLink. Index 0 is the launcher itself (never dialed).
    let mut addr_table: Vec<String> = vec![String::new(); world];
    for (rank, slot) in streams.iter().enumerate().skip(1) {
        if let Some((_, a)) = slot {
            addr_table[rank] = a.clone();
        }
    }
    let mut body = Vec::new();
    (job.clone(), addr_table).encode(&mut body);
    let mut links: Vec<Option<Arc<PeerLink>>> = (0..world).map(|_| None).collect();
    for (rank, slot) in streams.into_iter().enumerate() {
        if let Some((mut s, _)) = slot {
            if let Err(e) = write_frame(&mut s, OP_ADDRS, &body, None) {
                kill_all(&mut children);
                return Err(e);
            }
            match PeerLink::new(s, timeout) {
                Ok(l) => links[rank] = Some(Arc::new(l)),
                Err(e) => {
                    kill_all(&mut children);
                    return Err(e);
                }
            }
        }
    }
    // Reap workers in the background so finished children never linger as
    // zombies; the session itself outlives them on purpose.
    for (_, mut c) in children {
        let _ = std::thread::Builder::new()
            .name("tucker-net-reaper".into())
            .spawn(move || {
                let _ = c.wait();
            });
    }
    Ok(NetSession {
        rank: 0,
        world,
        links,
        region_counter: AtomicU64::new(0),
        poisoned: Mutex::new(None),
    })
}

/// Dials `addr` until it answers or `deadline` passes.
fn connect_with_retry(addr: &str, deadline: Instant) -> Result<TcpStream, NetError> {
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() > deadline {
                    return Err(NetError::Timeout {
                        detail: format!("connect {addr}: {e}"),
                    });
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn worker_session(env: &WorkerEnv) -> Result<Arc<NetSession>, NetError> {
    static SESSION: OnceLock<Result<Arc<NetSession>, NetError>> = OnceLock::new();
    SESSION
        .get_or_init(|| create_worker_session(env).map(Arc::new))
        .clone()
}

fn create_worker_session(env: &WorkerEnv) -> Result<NetSession, NetError> {
    let timeout = net_timeout();
    let _span = tucker_obs::span!("net.rendezvous", world = env.world);
    let deadline = Instant::now() + timeout;
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| NetError::from_io(&e, "bind worker listener"))?;
    let my_addr = listener
        .local_addr()
        .map_err(|e| NetError::from_io(&e, "worker local_addr"))?
        .to_string();
    // Dial the launcher and introduce ourselves.
    let mut to_parent = connect_with_retry(&env.addr, deadline)?;
    to_parent
        .set_read_timeout(Some(timeout))
        .map_err(|e| NetError::from_io(&e, "parent socket timeout"))?;
    let mut hello = Vec::new();
    (env.job.clone(), env.rank as u64, env.world as u64, my_addr).encode(&mut hello);
    write_frame(&mut to_parent, OP_HELLO, &hello, None)?;
    NET_CONNECT.inc();
    // The launcher answers with everyone's addresses once all hellos are in.
    let (op, body) = read_frame(&mut to_parent, None)?;
    if op != OP_ADDRS {
        return Err(NetError::Handshake {
            detail: format!("expected ADDRS, got opcode {op:#04x}"),
        });
    }
    let (ajob, addrs) = <(String, Vec<String>)>::from_wire_bytes(&body)?;
    if ajob != env.job || addrs.len() != env.world {
        return Err(NetError::Handshake {
            detail: format!(
                "ADDRS for job '{ajob}' with {} entries, expected '{}' with {}",
                addrs.len(),
                env.job,
                env.world
            ),
        });
    }
    let mut links: Vec<Option<Arc<PeerLink>>> = (0..env.world).map(|_| None).collect();
    links[0] = Some(Arc::new(PeerLink::new(to_parent, timeout)?));
    // Dial every lower-ranked worker; accept from every higher-ranked one.
    let mut peer_id = Vec::new();
    (env.job.clone(), env.rank as u64).encode(&mut peer_id);
    for peer in 1..env.rank {
        let mut s = connect_with_retry(&addrs[peer], deadline)?;
        s.set_read_timeout(Some(timeout))
            .map_err(|e| NetError::from_io(&e, "peer socket timeout"))?;
        write_frame(&mut s, OP_PEER, &peer_id, None)?;
        NET_CONNECT.inc();
        links[peer] = Some(Arc::new(PeerLink::new(s, timeout)?));
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| NetError::from_io(&e, "worker listener nonblocking"))?;
    let expected = env.world - 1 - env.rank;
    let mut accepted = 0usize;
    while accepted < expected {
        match listener.accept() {
            Ok((mut s, _)) => {
                s.set_nonblocking(false)
                    .map_err(|e| NetError::from_io(&e, "peer socket blocking"))?;
                s.set_read_timeout(Some(timeout))
                    .map_err(|e| NetError::from_io(&e, "peer socket timeout"))?;
                let (op, body) = read_frame(&mut s, None)?;
                if op != OP_PEER {
                    return Err(NetError::Handshake {
                        detail: format!("expected PEER, got opcode {op:#04x}"),
                    });
                }
                let (pjob, prank) = <(String, u64)>::from_wire_bytes(&body)?;
                let prank = prank as usize;
                if pjob != env.job || prank <= env.rank || prank >= env.world {
                    return Err(NetError::Handshake {
                        detail: format!("PEER from unexpected rank {prank}"),
                    });
                }
                if links[prank].is_some() {
                    return Err(NetError::Handshake {
                        detail: format!("duplicate PEER from rank {prank}"),
                    });
                }
                NET_CONNECT.inc();
                links[prank] = Some(Arc::new(PeerLink::new(s, timeout)?));
                accepted += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(NetError::Timeout {
                        detail: format!(
                            "worker {} mesh wiring: {accepted}/{expected} peers within {timeout:?}",
                            env.rank
                        ),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(NetError::from_io(&e, "worker accept")),
        }
    }
    Ok(NetSession {
        rank: env.rank,
        world: env.world,
        links,
        region_counter: AtomicU64::new(0),
        poisoned: Mutex::new(None),
    })
}

// ---------------------------------------------------------------------------
// Regions
// ---------------------------------------------------------------------------

/// Reads control frames, skipping any data-plane traffic still in flight
/// from an aborted region. Bounded so a babbling peer cannot spin us.
fn read_control_skipping(link: &PeerLink) -> Result<(u8, Vec<u8>), NetError> {
    for _ in 0..65_536 {
        let (op, body) = link.read_control(None)?;
        match op {
            OP_MSG | OP_BARRIER | OP_RELEASE => continue,
            _ => return Ok((op, body)),
        }
    }
    Err(NetError::Malformed {
        detail: "too many stray data frames before a control frame".into(),
    })
}

fn decode_abort(body: &[u8]) -> NetError {
    match <(u64, u64, String)>::from_wire_bytes(body) {
        Ok((_region, rank, message)) => NetError::RankPanicked {
            rank: rank as usize,
            message,
        },
        Err(e) => e.into(),
    }
}

fn parent_region<R, F>(
    session: &NetSession,
    name: &str,
    grid: &ProcGrid,
    f: &F,
) -> Result<SpmdHandle<R>, NetError>
where
    R: Wire + Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    session.check_poisoned()?;
    let region = session.region_counter.fetch_add(1, Ordering::SeqCst);
    let p = session.world;
    let _span = tucker_obs::span!("net.region", region = region, ranks = p);
    let start = Instant::now();
    // Open the region on every worker.
    let mut body = Vec::new();
    (region, name.to_string(), grid.shape().to_vec()).encode(&mut body);
    let frame = encode_frame(OP_REGION, &body)?;
    for w in 1..p {
        if let Err(e) = session.link(w)?.enqueue(frame.clone(), None) {
            session.poison(&format!(
                "region {region} ({name}): worker {w} unreachable: {e}"
            ));
            return Err(e);
        }
    }
    // Run rank 0 right here.
    let stats = CommStats::new_shared();
    let transport = TcpTransport::new(0, p, region, session.links.clone(), Arc::clone(&stats));
    let comm =
        Communicator::from_transport(grid.clone(), 0, Box::new(transport), Arc::clone(&stats));
    let own = catch_unwind(AssertUnwindSafe(|| f(comm)));
    // Collect every worker's outcome (result, panic, or wire failure).
    let mut enc: Vec<Option<Vec<u8>>> = (0..p).map(|_| None).collect();
    let mut stats_tab: Vec<Option<StatsSnapshot>> = (0..p).map(|_| None).collect();
    let mut fails: Vec<(usize, String)> = Vec::new();
    if let Err(payload) = &own {
        let msg = panic_message_ref(payload);
        // Unblock workers that are waiting on rank 0's data *before*
        // collecting, or the collection below would stall until their read
        // deadlines instead of cascading promptly.
        for w in 1..p {
            if let Ok(l) = session.link(w) {
                send_abort(l, region, 0, &msg);
            }
        }
        fails.push((0, msg));
    }
    enum Outcome {
        Done(StatsSnapshot, Vec<u8>),
        Failed(usize, String),
    }
    for w in 1..p {
        let outcome = session
            .link(w)
            .and_then(|l| read_control_skipping(l))
            .and_then(|(op, body)| match op {
                OP_RESULT => {
                    let (r, rank, snap, bytes) =
                        <(u64, u64, StatsSnapshot, Vec<u8>)>::from_wire_bytes(&body)?;
                    if r != region || rank as usize != w {
                        return Err(NetError::Malformed {
                            detail: format!(
                                "RESULT for region {r} rank {rank}, \
                                 expected region {region} rank {w}"
                            ),
                        });
                    }
                    Ok(Outcome::Done(snap, bytes))
                }
                OP_PANIC | OP_ABORT => {
                    let (_r, rank, message) = <(u64, u64, String)>::from_wire_bytes(&body)?;
                    Ok(Outcome::Failed(rank as usize, message))
                }
                other => Err(NetError::Malformed {
                    detail: format!("unexpected opcode {other:#04x} while collecting results"),
                }),
            });
        match outcome {
            Ok(Outcome::Done(snap, bytes)) => {
                stats_tab[w] = Some(snap);
                enc[w] = Some(bytes);
            }
            Ok(Outcome::Failed(rank, message)) => fails.push((rank, message)),
            Err(e) => fails.push((w, e.to_string())),
        }
    }
    if !fails.is_empty() {
        fails.sort_by_key(|(r, _)| *r);
        fails.dedup_by(|a, b| a.0 == b.0);
        let (rank, message) = pick_root(&fails);
        session.poison(&format!(
            "region {region} ({name}) aborted: rank {rank}: {message}"
        ));
        for w in 1..p {
            if let Ok(l) = session.link(w) {
                send_abort(l, region, rank, &message);
            }
        }
        return Err(NetError::RankPanicked { rank, message });
    }
    let own_val = match own {
        Ok(v) => v,
        Err(_) => unreachable!("rank 0 panic is in `fails`"),
    };
    stats_tab[0] = Some(stats.snapshot());
    enc[0] = Some(own_val.to_wire_bytes());
    let stats_vec: Vec<StatsSnapshot> = stats_tab
        .into_iter()
        .map(|s| s.expect("stats for every rank"))
        .collect();
    let res_vec: Vec<Vec<u8>> = enc
        .into_iter()
        .map(|b| b.expect("result bytes for every rank"))
        .collect();
    // Broadcast the full table so every process returns identical bits.
    let mut tbody = Vec::new();
    (region, stats_vec.clone(), res_vec.clone()).encode(&mut tbody);
    let tframe = encode_frame(OP_TABLE, &tbody)?;
    for w in 1..p {
        if let Err(e) = session.link(w)?.enqueue(tframe.clone(), None) {
            session.poison(&format!(
                "region {region} ({name}): table broadcast to {w}: {e}"
            ));
            return Err(e);
        }
    }
    // The table may be the launcher's last word before `main` returns and the
    // process exits; flush so the detached writer threads cannot drop it and
    // leave workers seeing a spurious EOF instead of their result table.
    for w in 1..p {
        if let Err(e) = session.link(w)?.flush(net_timeout()) {
            session.poison(&format!(
                "region {region} ({name}): table flush to {w}: {e}"
            ));
            return Err(e);
        }
    }
    let results = decode_results::<R>(&res_vec)?;
    Ok(SpmdHandle {
        results,
        stats: stats_vec,
        elapsed: start.elapsed().as_secs_f64(),
    })
}

fn panic_message_ref(e: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn decode_results<R: Wire>(res_vec: &[Vec<u8>]) -> Result<Vec<R>, NetError> {
    res_vec
        .iter()
        .map(|b| R::from_wire_bytes(b).map_err(NetError::from))
        .collect()
}

fn worker_region<R, F>(
    session: &NetSession,
    name: &str,
    grid: &ProcGrid,
    f: &F,
) -> Result<SpmdHandle<R>, NetError>
where
    R: Wire + Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    session.check_poisoned()?;
    let region = session.region_counter.fetch_add(1, Ordering::SeqCst);
    let rank = session.rank;
    let p = session.world;
    let _span = tucker_obs::span!("net.region", region = region, ranks = p);
    let start = Instant::now();
    // Wait for the launcher to open the region, and verify we agree on what
    // it is — a divergent SPMD program must fail loudly, not exchange bytes.
    let (op, body) = match session.link(0)?.read_control(None) {
        Ok(x) => x,
        Err(e) => {
            session.poison(&format!("region {region}: no REGION header: {e}"));
            return Err(e);
        }
    };
    match op {
        OP_REGION => {
            let (r, rname, rshape) = <(u64, String, Vec<usize>)>::from_wire_bytes(&body)?;
            if r != region || rname != name || rshape != grid.shape() {
                let detail = format!(
                    "launcher opened region {r} '{rname}' grid {rshape:?}; \
                     worker {rank} is at region {region} '{name}' grid {:?}",
                    grid.shape()
                );
                let mut pbody = Vec::new();
                (region, rank as u64, detail.clone()).encode(&mut pbody);
                if let Ok(frame) = encode_frame(OP_PANIC, &pbody) {
                    let _ = session.link(0)?.enqueue(frame, None);
                }
                session.poison(&detail);
                return Err(NetError::RegionMismatch { detail });
            }
        }
        OP_ABORT => {
            let e = decode_abort(&body);
            session.poison(&e.to_string());
            return Err(e);
        }
        other => {
            let e = NetError::Malformed {
                detail: format!("expected REGION header, got opcode {other:#04x}"),
            };
            session.poison(&e.to_string());
            return Err(e);
        }
    }
    let stats = CommStats::new_shared();
    let transport = TcpTransport::new(rank, p, region, session.links.clone(), Arc::clone(&stats));
    let comm =
        Communicator::from_transport(grid.clone(), rank, Box::new(transport), Arc::clone(&stats));
    match catch_unwind(AssertUnwindSafe(|| f(comm))) {
        Ok(val) => {
            let mut body = Vec::new();
            (region, rank as u64, stats.snapshot(), val.to_wire_bytes()).encode(&mut body);
            let frame = encode_frame(OP_RESULT, &body)?;
            if let Err(e) = session.link(0)?.enqueue(frame, None) {
                session.poison(&format!("region {region}: RESULT send: {e}"));
                return Err(e);
            }
            match session.link(0).and_then(|l| read_control_skipping(l)) {
                Ok((OP_TABLE, tbody)) => {
                    let (r, stats_vec, res_vec) =
                        <(u64, Vec<StatsSnapshot>, Vec<Vec<u8>>)>::from_wire_bytes(&tbody)?;
                    if r != region || res_vec.len() != p {
                        let e = NetError::Malformed {
                            detail: format!("TABLE for region {r}, expected {region}"),
                        };
                        session.poison(&e.to_string());
                        return Err(e);
                    }
                    let results = decode_results::<R>(&res_vec)?;
                    Ok(SpmdHandle {
                        results,
                        stats: stats_vec,
                        elapsed: start.elapsed().as_secs_f64(),
                    })
                }
                Ok((OP_ABORT, abody)) => {
                    let e = decode_abort(&abody);
                    session.poison(&e.to_string());
                    Err(e)
                }
                Ok((other, _)) => {
                    let e = NetError::Malformed {
                        detail: format!("expected TABLE, got opcode {other:#04x}"),
                    };
                    session.poison(&e.to_string());
                    Err(e)
                }
                Err(e) => {
                    session.poison(&e.to_string());
                    Err(e)
                }
            }
        }
        Err(payload) => {
            let msg = panic_message(payload);
            // Fail every peer's blocking data-plane calls with the rank
            // attribution — rank 0 included, since it may be inside its own
            // closure right now — then report to the launcher (the PANIC
            // frame feeds its result-collection loop) and wait for the
            // coordinated abort.
            for peer in 0..p {
                if peer != rank {
                    if let Ok(l) = session.link(peer) {
                        send_abort(l, region, rank, &msg);
                    }
                }
            }
            let mut pbody = Vec::new();
            (region, rank as u64, msg.clone()).encode(&mut pbody);
            if let Ok(frame) = encode_frame(OP_PANIC, &pbody) {
                let _ = session.link(0)?.enqueue(frame, None);
            }
            let err = match session.link(0).and_then(|l| read_control_skipping(l)) {
                Ok((OP_ABORT, abody)) => decode_abort(&abody),
                _ => NetError::RankPanicked { rank, message: msg },
            };
            session.poison(&err.to_string());
            Err(err)
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Runs `f` as one SPMD region on the selected backend, returning the same
/// [`SpmdHandle`] in every participating process, or a typed [`NetError`].
///
/// On [`TransportKind::InProc`] this is exactly
/// [`tucker_distmem::try_spmd_with_grid_handle`] (panics become
/// [`NetError::RankPanicked`]). On [`TransportKind::Tcp`], the first region
/// spawns `grid.size() - 1` worker processes re-exec'ed with `exec_args`
/// (see [`test_exec_args`]); inside a worker whose world size matches, the
/// call joins the mesh instead. A region whose grid size differs from the
/// worker's world runs in-process — multi-`P` sweeps work unchanged.
pub fn try_spmd_transport<R, F>(
    kind: TransportKind,
    name: &str,
    grid: ProcGrid,
    exec_args: &[String],
    f: F,
) -> Result<SpmdHandle<R>, NetError>
where
    R: Wire + Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    let inproc = |f: &F| {
        try_spmd_with_grid_handle(grid.clone(), f).map_err(|e| NetError::RankPanicked {
            rank: e.rank,
            message: e.message,
        })
    };
    match kind {
        TransportKind::InProc => inproc(&f),
        TransportKind::Tcp => {
            if in_worker() {
                let env = worker_env()?;
                if grid.size() != env.world {
                    return inproc(&f);
                }
                let session = worker_session(&env)?;
                worker_region(&session, name, &grid, &f)
            } else if grid.size() == 1 {
                // Nothing to distribute; a one-rank world needs no processes.
                inproc(&f)
            } else {
                let session = parent_session(exec_args, grid.size())?;
                parent_region(&session, name, &grid, &f)
            }
        }
    }
}

/// [`try_spmd_transport`], panicking with the typed error's message — the
/// drop-in analogue of [`tucker_distmem::spmd_with_grid_handle`] for call
/// sites that treat rank failure as fatal.
///
/// # Panics
/// Panics if the region fails (worker panic, spawn/rendezvous failure,
/// poisoned session).
pub fn spmd_transport<R, F>(
    kind: TransportKind,
    name: &str,
    grid: ProcGrid,
    exec_args: &[String],
    f: F,
) -> SpmdHandle<R>
where
    R: Wire + Send,
    F: Fn(Communicator) -> R + Send + Sync,
{
    match try_spmd_transport(kind, name, grid, exec_args, f) {
        Ok(h) => h,
        Err(e) => panic!("SPMD region '{name}' failed: {e}"),
    }
}
