//! Length-prefix framing for the TCP mesh.
//!
//! Identical discipline to `tucker-serve`'s wire protocol (`serve/src/proto.rs`):
//! every frame is a little-endian `u32` payload length followed by that many
//! bytes, the first of which is the opcode. The length is validated against
//! [`MAX_FRAME`] *before* any allocation, and bodies are decoded with the
//! bounds-checked [`tucker_distmem::WireReader`] — arbitrary bytes can fail
//! a read but can never panic it or make it allocate unboundedly.
//!
//! Every byte that crosses a socket is counted here, in both the process-wide
//! `tucker-obs` counters (`net.bytes_sent` / `net.bytes_recv`) and, when the
//! caller passes the rank's [`CommStats`], in the per-rank wire-byte counters
//! — *including* the 4-byte length prefix, the opcode and any frame header
//! fields, so the `CommStats` volume assertions stay exact (ISSUE 10
//! satellite: framing/header overhead is part of the measured volume).

use crate::error::NetError;
use std::io::{Read, Write};
use tucker_distmem::CommStats;
use tucker_obs::metrics::Counter;

/// Process-wide on-wire byte counters (both directions), frame overhead
/// included.
pub static NET_BYTES_SENT: Counter = Counter::new("net.bytes_sent");
/// See [`NET_BYTES_SENT`].
pub static NET_BYTES_RECV: Counter = Counter::new("net.bytes_recv");
/// Frames written to / read from sockets, process-wide.
pub static NET_FRAMES_SENT: Counter = Counter::new("net.frames_sent");
/// See [`NET_FRAMES_SENT`].
pub static NET_FRAMES_RECV: Counter = Counter::new("net.frames_recv");
/// Sockets successfully established (rendezvous + mesh wiring).
pub static NET_CONNECT: Counter = Counter::new("net.connect");

/// Maximum frame payload (opcode + body): 256 MiB. Large enough for any
/// per-rank tensor block the benches exchange, small enough that a hostile
/// length can't OOM the process.
pub const MAX_FRAME: u32 = 1 << 28;

/// Overhead bytes per frame beyond the body: 4-byte length prefix + opcode.
pub const FRAME_OVERHEAD: u64 = 5;

// Opcodes. Rendezvous first, then region traffic.
/// Worker → launcher: `(job, rank, world, listen_addr)`.
pub const OP_HELLO: u8 = 0x01;
/// Launcher → worker: `(job, addrs)` — the full address table, index = rank.
pub const OP_ADDRS: u8 = 0x02;
/// Dialing worker → accepting worker: `(job, rank)`.
pub const OP_PEER: u8 = 0x03;
/// Launcher → worker: `(region, name, grid_shape)` — region start handshake.
pub const OP_REGION: u8 = 0x10;
/// Rank → rank: `(region, words…)` — one point-to-point `Vec<f64>` message.
pub const OP_MSG: u8 = 0x11;
/// Worker → rank 0: `(region, seq)` — barrier arrival token.
pub const OP_BARRIER: u8 = 0x12;
/// Rank 0 → worker: `(region, seq)` — barrier release.
pub const OP_RELEASE: u8 = 0x13;
/// Worker → rank 0: `(region, rank, stats, result_bytes)` — region result.
pub const OP_RESULT: u8 = 0x14;
/// Worker → rank 0: `(region, rank, message)` — the closure panicked.
pub const OP_PANIC: u8 = 0x15;
/// Rank 0 → worker: `(region, stats_table, result_table)` — all ranks' results.
pub const OP_TABLE: u8 = 0x16;
/// Any → any: `(region, rank, message)` — abandon the region (and session).
pub const OP_ABORT: u8 = 0x17;

/// Encodes one frame (`length ‖ opcode ‖ body`) into a fresh buffer.
pub fn encode_frame(op: u8, body: &[u8]) -> Result<Vec<u8>, NetError> {
    let payload = body.len() as u64 + 1;
    if payload > MAX_FRAME as u64 {
        return Err(NetError::FrameTooLarge {
            len: payload,
            max: MAX_FRAME as u64,
        });
    }
    let mut out = Vec::with_capacity(4 + 1 + body.len());
    out.extend_from_slice(&(payload as u32).to_le_bytes());
    out.push(op);
    out.extend_from_slice(body);
    Ok(out)
}

/// Writes an already-encoded frame, bumping the global and (optionally) the
/// per-rank wire counters by the full frame length.
pub fn write_encoded(
    w: &mut impl Write,
    frame: &[u8],
    stats: Option<&CommStats>,
) -> Result<(), NetError> {
    w.write_all(frame)
        .map_err(|e| NetError::from_io(&e, "write frame"))?;
    note_sent(frame.len() as u64, stats);
    Ok(())
}

/// Records `bytes` of outbound wire traffic (used by the buffered writer
/// path, where counting happens at enqueue time).
pub fn note_sent(bytes: u64, stats: Option<&CommStats>) {
    NET_BYTES_SENT.add(bytes);
    NET_FRAMES_SENT.inc();
    if let Some(s) = stats {
        s.record_wire_sent(bytes);
    }
}

/// Encodes and writes one frame in a single call (rendezvous path).
pub fn write_frame(
    w: &mut impl Write,
    op: u8,
    body: &[u8],
    stats: Option<&CommStats>,
) -> Result<(), NetError> {
    let frame = encode_frame(op, body)?;
    write_encoded(w, &frame, stats)
}

/// Reads one frame; returns `(opcode, body)`.
///
/// The declared length is validated before allocating; a clean EOF at the
/// length prefix is [`NetError::Closed`], EOF mid-frame is
/// [`NetError::Truncated`], and a read past the socket's deadline is
/// [`NetError::Timeout`]. Counters are bumped by the full on-wire size
/// (prefix + opcode + body).
pub fn read_frame(r: &mut impl Read, stats: Option<&CommStats>) -> Result<(u8, Vec<u8>), NetError> {
    let mut len_bytes = [0u8; 4];
    read_exact_or(r, &mut len_bytes, "frame length prefix")?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME {
        return Err(NetError::FrameTooLarge {
            len: len as u64,
            max: MAX_FRAME as u64,
        });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_body(r, &mut payload)?;
    let op = payload[0];
    let body = payload.split_off(1);
    let on_wire = 4 + len as u64;
    NET_BYTES_RECV.add(on_wire);
    NET_FRAMES_RECV.inc();
    if let Some(s) = stats {
        s.record_wire_recv(on_wire);
    }
    Ok((op, body))
}

/// `read_exact` for the frame prefix: a clean close before any byte is
/// `Closed`, a close after some bytes is `Truncated`.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), NetError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    NetError::Closed {
                        detail: format!("EOF before {what}"),
                    }
                } else {
                    NetError::Truncated {
                        detail: format!("EOF inside {what} ({filled}/{} bytes)", buf.len()),
                    }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::from_io(&e, what)),
        }
    }
    Ok(())
}

/// `read_exact` for the frame body: any EOF is mid-frame, hence `Truncated`.
fn read_exact_body(r: &mut impl Read, buf: &mut [u8]) -> Result<(), NetError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(NetError::Truncated {
                    detail: format!("EOF inside frame body ({filled}/{} bytes)", buf.len()),
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::from_io(&e, "frame body")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let frame = encode_frame(OP_MSG, &[1, 2, 3]).unwrap();
        assert_eq!(frame.len(), 4 + 1 + 3);
        let (op, body) = read_frame(&mut Cursor::new(&frame), None).unwrap();
        assert_eq!(op, OP_MSG);
        assert_eq!(body, vec![1, 2, 3]);
    }

    #[test]
    fn empty_body_is_valid() {
        let frame = encode_frame(OP_BARRIER, &[]).unwrap();
        let (op, body) = read_frame(&mut Cursor::new(&frame), None).unwrap();
        assert_eq!(op, OP_BARRIER);
        assert!(body.is_empty());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 16]);
        match read_frame(&mut Cursor::new(&bytes), None) {
            Err(NetError::FrameTooLarge { len, .. }) => assert_eq!(len, u32::MAX as u64),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_is_rejected() {
        let bytes = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), None),
            Err(NetError::FrameTooLarge { len: 0, .. })
        ));
    }

    #[test]
    fn clean_eof_is_closed_partial_is_truncated() {
        assert!(matches!(
            read_frame(&mut Cursor::new(&[] as &[u8]), None),
            Err(NetError::Closed { .. })
        ));
        assert!(matches!(
            read_frame(&mut Cursor::new(&[5u8, 0]), None),
            Err(NetError::Truncated { .. })
        ));
        // Full prefix, truncated body.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.push(OP_MSG);
        bytes.extend_from_slice(&[0; 10]);
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), None),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn stats_count_full_on_wire_size() {
        let stats = CommStats::new_shared();
        let frame = encode_frame(OP_MSG, &[0u8; 11]).unwrap();
        let mut sink = Vec::new();
        write_encoded(&mut sink, &frame, Some(&stats)).unwrap();
        let (_, _) = read_frame(&mut Cursor::new(&sink), Some(&stats)).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.wire_bytes_sent, 4 + 1 + 11);
        assert_eq!(snap.wire_bytes_received, 4 + 1 + 11);
    }

    #[test]
    fn encode_rejects_oversized_body() {
        let body = vec![0u8; MAX_FRAME as usize];
        assert!(matches!(
            encode_frame(OP_MSG, &body),
            Err(NetError::FrameTooLarge { .. })
        ));
    }
}
