//! Typed errors for the TCP transport and the multi-process launcher.
//!
//! Same philosophy as the rest of the fallible surface (ARCHITECTURE §7):
//! anything the network, a peer process, or a hostile byte stream can do to
//! us is a *returned value*, never a panic and never a hang — blocking calls
//! carry deadlines, malformed traffic fails decode, dead peers fail the next
//! operation. The fault-injection battery in `tests/transport_faults.rs`
//! pins this for truncated/oversized/garbage frames and mid-collective
//! disconnects.

use tucker_distmem::transport::TransportError;
use tucker_distmem::WireError;

/// Everything that can go wrong in `tucker-net`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A frame declared a length outside `[1, MAX_FRAME]`.
    FrameTooLarge {
        /// The declared payload length.
        len: u64,
        /// The enforced cap ([`crate::frame::MAX_FRAME`]).
        max: u64,
    },
    /// The stream ended mid-frame.
    Truncated {
        /// What was being read.
        detail: String,
    },
    /// The peer closed the connection at a frame boundary.
    Closed {
        /// What was being read when the stream ended.
        detail: String,
    },
    /// A frame decoded to garbage: unknown opcode, bad body, wrong job id.
    Malformed {
        /// Human-readable description.
        detail: String,
    },
    /// An OS-level I/O failure.
    Io {
        /// Human-readable description from the OS.
        detail: String,
    },
    /// A blocking operation exceeded its deadline (the anti-wedge guarantee:
    /// a lost peer or a mismatched SPMD program surfaces here, never as a hang).
    Timeout {
        /// What was being waited for.
        detail: String,
    },
    /// The rendezvous/wire-up phase failed.
    Handshake {
        /// Human-readable description.
        detail: String,
    },
    /// Re-exec'ing the current binary for a worker rank failed.
    Spawn {
        /// Human-readable description.
        detail: String,
    },
    /// A worker process exited before (or during) rendezvous.
    WorkerExited {
        /// The worker's rank.
        rank: usize,
        /// Exit detail (status code if known).
        detail: String,
    },
    /// A rank's SPMD closure panicked; the region was aborted everywhere.
    RankPanicked {
        /// The rank identified as the root cause.
        rank: usize,
        /// Its panic message.
        message: String,
    },
    /// The worker and the launcher disagree about what region comes next —
    /// the SPMD program diverged between processes.
    RegionMismatch {
        /// What was expected vs. received.
        detail: String,
    },
    /// A previous region on this session aborted; the socket mesh is in an
    /// unknowable state, so further regions are refused (typed, immediate).
    SessionPoisoned {
        /// Why the session was poisoned.
        detail: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            NetError::Truncated { detail } => write!(f, "truncated frame: {detail}"),
            NetError::Closed { detail } => write!(f, "connection closed: {detail}"),
            NetError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            NetError::Io { detail } => write!(f, "i/o error: {detail}"),
            NetError::Timeout { detail } => write!(f, "timed out: {detail}"),
            NetError::Handshake { detail } => write!(f, "rendezvous failed: {detail}"),
            NetError::Spawn { detail } => write!(f, "worker spawn failed: {detail}"),
            NetError::WorkerExited { rank, detail } => {
                write!(f, "worker rank {rank} exited prematurely: {detail}")
            }
            NetError::RankPanicked { rank, message } => {
                write!(f, "SPMD rank {rank} panicked: {message}")
            }
            NetError::RegionMismatch { detail } => {
                write!(f, "SPMD region mismatch between processes: {detail}")
            }
            NetError::SessionPoisoned { detail } => {
                write!(f, "session poisoned by an earlier abort: {detail}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Malformed { detail: e.detail }
    }
}

impl NetError {
    /// Maps an `std::io::Error` into the matching typed variant.
    pub fn from_io(e: &std::io::Error, what: &str) -> NetError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout {
                detail: format!("{what}: {e}"),
            },
            std::io::ErrorKind::UnexpectedEof => NetError::Truncated {
                detail: format!("{what}: {e}"),
            },
            std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => NetError::Closed {
                detail: format!("{what}: {e}"),
            },
            _ => NetError::Io {
                detail: format!("{what}: {e}"),
            },
        }
    }

    /// Converts into the [`TransportError`] the communicator layer reports,
    /// attributing the failure to `peer`.
    pub fn into_transport(self, peer: usize) -> TransportError {
        match self {
            NetError::Closed { detail } | NetError::Truncated { detail } => {
                // A vanished endpoint mid-region means the peer process died:
                // the same condition the in-process backend reports when a
                // rank's channel endpoints drop.
                let _ = detail;
                TransportError::PeerGone { peer }
            }
            NetError::Timeout { detail } => TransportError::Timeout { peer, detail },
            NetError::RankPanicked { rank, message } => TransportError::Aborted {
                rank,
                detail: message,
            },
            NetError::FrameTooLarge { .. } | NetError::Malformed { .. } => {
                TransportError::Protocol {
                    detail: self.to_string(),
                }
            }
            other => TransportError::Io {
                peer,
                detail: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_kind_mapping() {
        let t = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow");
        match NetError::from_io(&t, "recv") {
            NetError::Timeout { detail } => assert!(detail.contains("recv")),
            e => panic!("wrong variant: {e:?}"),
        }
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        match NetError::from_io(&eof, "frame body") {
            NetError::Truncated { .. } => {}
            e => panic!("wrong variant: {e:?}"),
        }
    }

    #[test]
    fn transport_mapping_keeps_cascade_semantics() {
        // Closed sockets map to PeerGone so the SPMD cascade heuristic in
        // distmem ("has terminated") classifies them as symptoms.
        let e = NetError::Closed { detail: "x".into() }.into_transport(3);
        assert_eq!(e, TransportError::PeerGone { peer: 3 });
        assert!(e.to_string().contains("has terminated"));
    }
}
