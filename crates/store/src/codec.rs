//! Value codecs for `.tkr` payload blocks.
//!
//! The Tucker model is already the big compression win (the paper's Tab. II
//! ratios); the codec layer stacks a further 2–4× on top by storing the
//! factor matrices and core in less than full double precision:
//!
//! * [`Codec::F64`] — lossless: raw little-endian `f64` (8 bytes/value).
//! * [`Codec::F32`] — round to single precision (4 bytes/value, relative
//!   error ~1e-7 per value).
//! * [`Codec::Q16`] — scaled 16-bit integers (2 bytes/value + one `f64`
//!   scale per block, relative error ~3e-5 of the block's max magnitude).
//!
//! A **block** is one factor-matrix column or one core chunk; quantized
//!   blocks carry their own scale factor, so a column with small entries is
//!   not crushed by a large one elsewhere. Every encode reports the exact
//!   squared error it introduced, which the writer accumulates into the
//!   artifact's quantization-error bound (checked against the ε budget).

use std::io::{self, Read, Write};
use tucker_obs::metrics::Counter;

/// Codec throughput accounting (see `tucker-obs`): blocks and on-disk
/// payload bytes, counted once per successful encode/decode.
static ENCODE_BLOCKS: Counter = Counter::new("store.encode.blocks");
static ENCODE_BYTES: Counter = Counter::new("store.encode.bytes");
static DECODE_BLOCKS: Counter = Counter::new("store.decode.blocks");
static DECODE_BYTES: Counter = Counter::new("store.decode.bytes");

/// Scale such that the largest magnitude maps to the largest `i16`.
const Q16_MAX: f64 = i16::MAX as f64;

/// How the `f64` values of a payload block are encoded on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Raw little-endian `f64` — bit-exact round trip.
    F64,
    /// Little-endian `f32` — halves storage at ~1e-7 relative error.
    F32,
    /// Scaled `i16` with one `f64` scale per block — quarters storage at
    /// ~3e-5 relative error of the block's max magnitude.
    Q16,
}

impl Codec {
    /// All codecs, for sweeps and tests.
    pub fn all() -> [Codec; 3] {
        [Codec::F64, Codec::F32, Codec::Q16]
    }

    /// Stable on-disk identifier.
    pub fn id(&self) -> u8 {
        match self {
            Codec::F64 => 0,
            Codec::F32 => 1,
            Codec::Q16 => 2,
        }
    }

    /// Inverse of [`Codec::id`].
    pub fn from_id(id: u8) -> io::Result<Codec> {
        Codec::try_from_id(id)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Inverse of [`Codec::id`], with a typed error.
    pub fn try_from_id(id: u8) -> Result<Codec, crate::error::CodecError> {
        match id {
            0 => Ok(Codec::F64),
            1 => Ok(Codec::F32),
            2 => Ok(Codec::Q16),
            _ => Err(crate::error::CodecError::UnknownId(id)),
        }
    }

    /// Display name (for tables).
    pub fn name(&self) -> &'static str {
        match self {
            Codec::F64 => "f64",
            Codec::F32 => "f32",
            Codec::Q16 => "q16",
        }
    }

    /// Payload bytes per value (excluding the per-block scale of `Q16`).
    pub fn bytes_per_value(&self) -> usize {
        match self {
            Codec::F64 => 8,
            Codec::F32 => 4,
            Codec::Q16 => 2,
        }
    }

    /// Encodes one block of values, returning the squared error introduced.
    ///
    /// The on-disk layout is `[scale: f64]` (Q16 only) followed by the packed
    /// values; the caller is responsible for recording the block length.
    pub fn encode_block(&self, w: &mut impl Write, values: &[f64]) -> io::Result<f64> {
        let mut sq_err = 0.0;
        match self {
            Codec::F64 => {
                for &v in values {
                    w.write_all(&v.to_le_bytes())?;
                }
            }
            Codec::F32 => {
                for &v in values {
                    let q = v as f32;
                    sq_err += (v - q as f64) * (v - q as f64);
                    w.write_all(&q.to_le_bytes())?;
                }
            }
            Codec::Q16 => {
                let max_abs = values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                let scale = if max_abs > 0.0 {
                    max_abs / Q16_MAX
                } else {
                    0.0
                };
                w.write_all(&scale.to_le_bytes())?;
                for &v in values {
                    let q = if scale > 0.0 {
                        (v / scale).round().clamp(-Q16_MAX, Q16_MAX) as i16
                    } else {
                        0
                    };
                    let back = q as f64 * scale;
                    sq_err += (v - back) * (v - back);
                    w.write_all(&q.to_le_bytes())?;
                }
            }
        }
        ENCODE_BLOCKS.inc();
        ENCODE_BYTES.add(self.block_bytes(values.len()) as u64);
        Ok(sq_err)
    }

    /// Decodes a block of `len` values previously written by
    /// [`Codec::encode_block`].
    pub fn decode_block(&self, r: &mut impl Read, len: usize) -> io::Result<Vec<f64>> {
        let mut out = Vec::with_capacity(len);
        match self {
            Codec::F64 => {
                let mut buf = [0u8; 8];
                for _ in 0..len {
                    r.read_exact(&mut buf)?;
                    out.push(f64::from_le_bytes(buf));
                }
            }
            Codec::F32 => {
                let mut buf = [0u8; 4];
                for _ in 0..len {
                    r.read_exact(&mut buf)?;
                    out.push(f32::from_le_bytes(buf) as f64);
                }
            }
            Codec::Q16 => {
                let mut sbuf = [0u8; 8];
                r.read_exact(&mut sbuf)?;
                let scale = f64::from_le_bytes(sbuf);
                let mut buf = [0u8; 2];
                for _ in 0..len {
                    r.read_exact(&mut buf)?;
                    out.push(i16::from_le_bytes(buf) as f64 * scale);
                }
            }
        }
        DECODE_BLOCKS.inc();
        DECODE_BYTES.add(self.block_bytes(len) as u64);
        Ok(out)
    }

    /// On-disk payload size of a block of `len` values.
    pub fn block_bytes(&self, len: usize) -> usize {
        let scale = if *self == Codec::Q16 { 8 } else { 0 };
        scale + len * self.bytes_per_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(codec: Codec, values: &[f64]) -> (Vec<f64>, f64) {
        let mut buf = Vec::new();
        let sq_err = codec.encode_block(&mut buf, values).unwrap();
        assert_eq!(buf.len(), codec.block_bytes(values.len()));
        let decoded = codec
            .decode_block(&mut io::Cursor::new(buf), values.len())
            .unwrap();
        (decoded, sq_err)
    }

    #[test]
    fn f64_is_bit_exact() {
        let values = [1.0, -2.5, 1e-300, f64::MIN_POSITIVE, 0.0, 3.14159];
        let (decoded, sq_err) = round_trip(Codec::F64, &values);
        assert_eq!(decoded, values);
        assert_eq!(sq_err, 0.0);
    }

    #[test]
    fn f32_error_is_single_precision() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let (decoded, sq_err) = round_trip(Codec::F32, &values);
        let actual: f64 = values
            .iter()
            .zip(&decoded)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!((sq_err - actual).abs() < 1e-30);
        for (a, b) in values.iter().zip(&decoded) {
            assert!((a - b).abs() <= 1e-7 * a.abs().max(1e-30));
        }
    }

    #[test]
    fn q16_error_is_bounded_by_half_step() {
        let values: Vec<f64> = (0..257).map(|i| (i as f64 * 0.11).cos() * 5.0).collect();
        let (decoded, sq_err) = round_trip(Codec::Q16, &values);
        let max_abs = values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let step = max_abs / i16::MAX as f64;
        let actual: f64 = values
            .iter()
            .zip(&decoded)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!((sq_err - actual).abs() < 1e-20);
        for (a, b) in values.iter().zip(&decoded) {
            assert!((a - b).abs() <= 0.5 * step + 1e-12);
        }
    }

    #[test]
    fn q16_zero_block() {
        let values = [0.0; 10];
        let (decoded, sq_err) = round_trip(Codec::Q16, &values);
        assert_eq!(decoded, values);
        assert_eq!(sq_err, 0.0);
    }

    #[test]
    fn codec_ids_round_trip() {
        for c in Codec::all() {
            assert_eq!(Codec::from_id(c.id()).unwrap(), c);
        }
        assert!(Codec::from_id(42).is_err());
    }
}
