//! Streaming `.tkr` writer and the distributed gather-and-write path.
//!
//! [`TkrWriter`] is deliberately incremental: the header goes out first, then
//! factor blocks, then the core **chunk by chunk** (whole last-mode slabs, e.g.
//! one timestep at a time), then an end marker. Nothing requires the whole
//! core in memory at once, so a decomposition whose core is produced
//! timestep-by-timestep — or gathered piecewise from a distributed run — can
//! be serialized as it arrives. [`write_tucker`] is the convenience wrapper
//! for an in-memory [`TuckerTensor`]; [`gather_and_write`] funnels a
//! [`DistTucker`] from any processor grid into the same byte-identical
//! format.
//!
//! The writer tracks the exact squared error every quantized block
//! introduces and patches a first-order **relative reconstruction error
//! bound** into the header at [`TkrWriter::finish`]:
//!
//! ```text
//! ‖ΔX̃‖/‖X̃‖ ≲ ‖ΔG‖_F/‖G‖_F + Σ_n ‖ΔU⁽ⁿ⁾‖_F
//! ```
//!
//! (factors have orthonormal columns, so ‖X̃‖ = ‖G‖ and a factor
//! perturbation passes through the core at full strength). Callers check
//! `eps + quant_error_bound` against their error budget before shipping the
//! artifact.

use crate::codec::Codec;
use crate::error::{FormatError, StoreError};
use crate::format::{
    write_u32, write_u64, TkrHeader, TkrMetadata, QUANT_BOUND_OFFSET, TAG_CORE_CHUNK, TAG_END,
    TAG_FACTOR,
};
use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use tucker_core::dist::DistTucker;
use tucker_core::sthosvd::{SthosvdOptions, SthosvdResult};
use tucker_core::streaming::{st_hosvd_streaming_ctx, StreamingOptions};
use tucker_core::TuckerTensor;
use tucker_distmem::Communicator;
use tucker_exec::ExecContext;
use tucker_linalg::Matrix;
use tucker_tensor::{DenseTensor, SlabSource};

/// Target elements per core chunk used by [`write_tucker`] (whole slabs are
/// never split, so actual chunks may be larger when one slab exceeds this).
const CHUNK_TARGET_ELEMS: usize = 1 << 16;

/// Chunks per pool thread that a parallel encode/decode wave holds in memory
/// at once (bounds peak memory while keeping every thread busy).
const WAVE_CHUNKS_PER_THREAD: usize = 4;

/// How many core chunks one parallel codec wave processes on `ctx` — the
/// single sizing policy shared by the writer's encode waves and the
/// reader's decode waves, so their memory profiles stay in lockstep.
pub(crate) fn codec_wave_chunks(ctx: &ExecContext) -> usize {
    ctx.threads() * WAVE_CHUNKS_PER_THREAD
}

/// Encoding options for writing an artifact.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Value codec for factor and core blocks.
    pub codec: Codec,
    /// The ε the decomposition was computed with (recorded in the header so
    /// readers can report the total error budget).
    pub eps: f64,
    /// Provenance metadata.
    pub meta: TkrMetadata,
}

impl StoreOptions {
    /// Options with the given codec and ε and empty metadata.
    pub fn new(codec: Codec, eps: f64) -> Self {
        StoreOptions {
            codec,
            eps,
            meta: TkrMetadata::default(),
        }
    }

    /// Attaches metadata.
    pub fn with_meta(mut self, meta: TkrMetadata) -> Self {
        self.meta = meta;
        self
    }
}

/// What an encode produced: sizes and the error the codec introduced.
#[derive(Debug, Clone)]
pub struct EncodeReport {
    /// Total bytes written (header + blocks + end marker).
    pub bytes: u64,
    /// Number of stored values (core + factors), the paper's compression-ratio
    /// denominator.
    pub stored_values: usize,
    /// First-order relative reconstruction error added by the codec.
    pub quant_error_bound: f64,
    /// `‖ΔU⁽ⁿ⁾‖_F` per mode.
    pub factor_errors: Vec<f64>,
    /// `‖ΔG‖_F`.
    pub core_error: f64,
}

impl EncodeReport {
    /// Physical compression ratio versus the original field stored as raw
    /// `f64`: `8·∏I_n / bytes`.
    pub fn compression_ratio(&self, original_dims: &[usize]) -> f64 {
        let original_bytes = 8.0 * original_dims.iter().map(|&d| d as f64).product::<f64>();
        original_bytes / self.bytes as f64
    }
}

/// Incremental writer for one `.tkr` artifact.
pub struct TkrWriter<W: Write + Seek> {
    w: W,
    /// Stream position of the header's first byte (0 for a fresh file).
    base: u64,
    header: TkrHeader,
    factor_written: Vec<bool>,
    factor_errors: Vec<f64>,
    core_sq_err: f64,
    core_norm_sq: f64,
    core_elems_written: usize,
    core_total: usize,
    slab_stride: usize,
    bytes: u64,
}

/// Validates a header against the writer's structural contract: a sane
/// tensor order, matching dims/ranks arity, no zero extents, no zero
/// ranks, no rank exceeding its mode's extent, and metadata consistent
/// with the shape. This is a superset of what header serialization
/// enforces, so a header that passes here cannot fail later — which is
/// what lets [`TkrWriter::try_create`] promise that rejected requests
/// never touch the destination file.
fn validate_header(header: &TkrHeader) -> Result<(), FormatError> {
    if header.dims.is_empty() || header.dims.len() > crate::format::MAX_NDIMS {
        return Err(FormatError::Invalid(format!(
            "tensor order {} outside 1..={}",
            header.dims.len(),
            crate::format::MAX_NDIMS
        )));
    }
    if header.dims.len() != header.ranks.len() {
        return Err(FormatError::DimsRanksArity {
            dims: header.dims.len(),
            ranks: header.ranks.len(),
        });
    }
    header.meta.validate(header.dims.len())?;
    for (mode, (&d, &r)) in header.dims.iter().zip(header.ranks.iter()).enumerate() {
        if d == 0 {
            return Err(FormatError::ZeroDim { mode });
        }
        if r == 0 {
            return Err(FormatError::ZeroRank { mode });
        }
        if r > d {
            return Err(FormatError::RankExceedsDim {
                mode,
                rank: r,
                dim: d,
            });
        }
    }
    Ok(())
}

impl TkrWriter<BufWriter<File>> {
    /// Creates the file and writes the header (with a zero quantization bound,
    /// patched at [`TkrWriter::finish`]).
    pub fn create(path: impl AsRef<Path>, header: TkrHeader) -> io::Result<Self> {
        TkrWriter::try_create(path, header).map_err(StoreError::into_io)
    }

    /// Fallible [`TkrWriter::create`]: a structurally invalid header (zero
    /// extents or ranks, rank exceeding a mode) is a typed
    /// [`FormatError`](crate::FormatError) instead of an opaque
    /// `InvalidData`. The header is validated **before** the file is
    /// created, so a rejected request never truncates an existing artifact
    /// at `path`.
    pub fn try_create(path: impl AsRef<Path>, header: TkrHeader) -> Result<Self, StoreError> {
        validate_header(&header)?;
        let file = File::create(path)?;
        TkrWriter::try_new(BufWriter::new(file), header)
    }
}

impl<W: Write + Seek> TkrWriter<W> {
    /// Wraps an arbitrary seekable sink and writes the header at the sink's
    /// **current** position (so a `.tkr` section can be embedded into a
    /// larger container; the finish-time patch is relative to that base).
    pub fn new(w: W, header: TkrHeader) -> io::Result<Self> {
        TkrWriter::try_new(w, header).map_err(StoreError::into_io)
    }

    /// Fallible [`TkrWriter::new`]; see [`TkrWriter::try_create`].
    pub fn try_new(mut w: W, mut header: TkrHeader) -> Result<Self, StoreError> {
        validate_header(&header)?;
        let base = w.stream_position()?;
        header.quant_error_bound = 0.0;
        let mut head = Vec::new();
        header.write_to(&mut head)?;
        w.write_all(&head)?;
        let ndims = header.ndims();
        let core_total: usize = header.ranks.iter().product();
        let slab_stride: usize = header.ranks[..ndims - 1].iter().product::<usize>().max(1);
        Ok(TkrWriter {
            w,
            base,
            header,
            factor_written: vec![false; ndims],
            factor_errors: vec![0.0; ndims],
            core_sq_err: 0.0,
            core_norm_sq: 0.0,
            core_elems_written: 0,
            core_total,
            slab_stride,
            bytes: head.len() as u64,
        })
    }

    /// Writes the factor matrix of `mode` (`I_n × R_n`), one codec block per
    /// column so quantization scales adapt per column.
    ///
    /// # Panics
    /// Panics if the mode was already written or the shape disagrees with the
    /// header; use [`TkrWriter::try_write_factor`] for a typed error.
    pub fn write_factor(&mut self, mode: usize, u: &Matrix) -> io::Result<()> {
        match self.try_write_factor(mode, u) {
            Ok(()) => Ok(()),
            Err(StoreError::Io(e)) => Err(e),
            Err(e) => panic!("write_factor: {e}"),
        }
    }

    /// Fallible [`TkrWriter::write_factor`]: a factor for an out-of-range
    /// mode, a mode written twice, or a shape disagreeing with the header is
    /// a typed [`FormatError`](crate::FormatError) instead of a panic.
    pub fn try_write_factor(&mut self, mode: usize, u: &Matrix) -> Result<(), StoreError> {
        if mode >= self.header.ndims() {
            return Err(FormatError::ModeOutOfRange {
                mode,
                ndims: self.header.ndims(),
            }
            .into());
        }
        if self.factor_written[mode] {
            return Err(FormatError::FactorRewritten { mode }.into());
        }
        if (u.rows(), u.cols()) != (self.header.dims[mode], self.header.ranks[mode]) {
            return Err(FormatError::FactorShape {
                mode,
                rows: u.rows(),
                cols: u.cols(),
                dim: self.header.dims[mode],
                rank: self.header.ranks[mode],
            }
            .into());
        }
        let mut block = Vec::new();
        block.push(TAG_FACTOR);
        write_u32(&mut block, mode as u32)?;
        write_u64(&mut block, u.rows() as u64)?;
        write_u64(&mut block, u.cols() as u64)?;
        let mut sq_err = 0.0;
        for j in 0..u.cols() {
            sq_err += self.header.codec.encode_block(&mut block, &u.col(j))?;
        }
        self.w.write_all(&block)?;
        self.bytes += block.len() as u64;
        self.factor_errors[mode] = sq_err.sqrt();
        self.factor_written[mode] = true;
        Ok(())
    }

    /// Appends the next run of whole last-mode core slabs (natural order).
    /// Chunks must arrive in order and cover the core exactly by
    /// [`TkrWriter::finish`] time.
    ///
    /// # Panics
    /// Panics if the chunk is not a positive multiple of the slab stride or
    /// overruns the core; use [`TkrWriter::try_write_core_chunk`] for a
    /// typed error.
    pub fn write_core_chunk(&mut self, slab: &[f64]) -> io::Result<()> {
        match self.try_write_core_chunk(slab) {
            Ok(()) => Ok(()),
            Err(StoreError::Io(e)) => Err(e),
            Err(e) => panic!("write_core_chunk: {e}"),
        }
    }

    /// Fallible [`TkrWriter::write_core_chunk`]: a zero-size chunk, a chunk
    /// that is not a whole number of last-mode slabs, or a chunk overrunning
    /// the declared core is a typed [`FormatError`](crate::FormatError)
    /// instead of a panic. Nothing is written when the chunk is rejected.
    pub fn try_write_core_chunk(&mut self, slab: &[f64]) -> Result<(), StoreError> {
        self.validate_chunk(self.core_elems_written, slab)?;
        let mut block = Vec::new();
        block.push(TAG_CORE_CHUNK);
        write_u64(&mut block, self.core_elems_written as u64)?;
        write_u64(&mut block, slab.len() as u64)?;
        self.core_sq_err += self.header.codec.encode_block(&mut block, slab)?;
        self.w.write_all(&block)?;
        self.bytes += block.len() as u64;
        self.core_norm_sq += slab.iter().map(|&v| v * v).sum::<f64>();
        self.core_elems_written += slab.len();
        Ok(())
    }

    /// The shared chunk contract: positive, slab-aligned, within the core.
    fn validate_chunk(&self, start: usize, slab: &[f64]) -> Result<(), FormatError> {
        if slab.is_empty() {
            return Err(FormatError::EmptyChunk);
        }
        if slab.len() % self.slab_stride != 0 {
            return Err(FormatError::MisalignedChunk {
                len: slab.len(),
                stride: self.slab_stride,
            });
        }
        if start + slab.len() > self.core_total {
            return Err(FormatError::CoreOverrun {
                start,
                len: slab.len(),
                total: self.core_total,
            });
        }
        Ok(())
    }

    /// Writes a run of core chunks, encoding their payloads **in parallel**
    /// on `ctx` before streaming them out in order. Byte-for-byte identical
    /// to calling [`TkrWriter::write_core_chunk`] on each chunk in turn (the
    /// framing, the per-block quantization scales, and the error accounting
    /// all depend only on per-chunk data and the fixed chunk order).
    ///
    /// Encoding proceeds in bounded **waves** of a few chunks per pool
    /// thread, each wave written out before the next is encoded — peak
    /// memory stays at a handful of encoded chunks, preserving the streaming
    /// rationale of this writer even for cores much larger than RAM headroom.
    pub fn write_core_chunks_ctx(
        &mut self,
        chunks: &[&[f64]],
        ctx: &ExecContext,
    ) -> io::Result<()> {
        match self.try_write_core_chunks_ctx(chunks, ctx) {
            Ok(()) => Ok(()),
            Err(StoreError::Io(e)) => Err(e),
            Err(e) => panic!("write_core_chunk: {e}"),
        }
    }

    /// Fallible [`TkrWriter::write_core_chunks_ctx`]: every chunk is
    /// validated up front with the same rules as
    /// [`TkrWriter::try_write_core_chunk`], so a bad chunk cannot leave
    /// earlier ones written.
    pub fn try_write_core_chunks_ctx(
        &mut self,
        chunks: &[&[f64]],
        ctx: &ExecContext,
    ) -> Result<(), StoreError> {
        let mut start = self.core_elems_written;
        let mut starts = Vec::with_capacity(chunks.len());
        for slab in chunks {
            self.validate_chunk(start, slab)?;
            starts.push(start);
            start += slab.len();
        }

        let codec = self.header.codec;
        let wave = codec_wave_chunks(ctx);
        let mut base = 0usize;
        while base < chunks.len() {
            let batch = &chunks[base..(base + wave).min(chunks.len())];
            let batch_starts = &starts[base..base + batch.len()];

            // Encode this wave's framed blocks off-stream; one slot per chunk.
            let mut encoded: Vec<(Vec<u8>, f64, f64)> =
                batch.iter().map(|_| Default::default()).collect();
            ctx.for_each_slot(&mut encoded, |i, slot| {
                let slab = batch[i];
                let mut block = Vec::with_capacity(17 + codec.block_bytes(slab.len()));
                block.push(TAG_CORE_CHUNK);
                write_u64(&mut block, batch_starts[i] as u64).expect("Vec write is infallible");
                write_u64(&mut block, slab.len() as u64).expect("Vec write is infallible");
                let sq_err = codec
                    .encode_block(&mut block, slab)
                    .expect("Vec write is infallible");
                let norm_sq = slab.iter().map(|&v| v * v).sum::<f64>();
                *slot = (block, sq_err, norm_sq);
            });

            // Stream the wave and fold the accounting in chunk order, so the
            // on-disk bytes and the accumulated error sums match the
            // sequential path exactly.
            for ((block, sq_err, norm_sq), slab) in encoded.iter().zip(batch) {
                self.w.write_all(block)?;
                self.bytes += block.len() as u64;
                self.core_sq_err += sq_err;
                self.core_norm_sq += norm_sq;
                self.core_elems_written += slab.len();
            }
            base += batch.len();
        }
        Ok(())
    }

    /// Writes the end marker, patches the quantization-error bound into the
    /// header, flushes, and reports what was encoded.
    ///
    /// # Panics
    /// Panics if a factor is missing or the core is incomplete; use
    /// [`TkrWriter::try_finish`] for a typed error.
    pub fn finish(self) -> io::Result<EncodeReport> {
        match self.try_finish() {
            Ok(r) => Ok(r),
            Err(StoreError::Io(e)) => Err(e),
            Err(e) => panic!("finish: {e}"),
        }
    }

    /// Fallible [`TkrWriter::finish`]: a missing factor or an incomplete
    /// core is a typed [`FormatError`](crate::FormatError) instead of a
    /// panic (and the end marker is not written).
    pub fn try_finish(mut self) -> Result<EncodeReport, StoreError> {
        for (n, &written) in self.factor_written.iter().enumerate() {
            if !written {
                return Err(FormatError::MissingFactor { mode: n }.into());
            }
        }
        if self.core_elems_written != self.core_total {
            return Err(FormatError::CoreIncomplete {
                written: self.core_elems_written,
                total: self.core_total,
            }
            .into());
        }
        let mut end = Vec::new();
        end.push(TAG_END);
        write_u64(&mut end, self.core_total as u64)?;
        self.w.write_all(&end)?;
        self.bytes += end.len() as u64;

        let core_norm = self.core_norm_sq.sqrt();
        let core_error = self.core_sq_err.sqrt();
        let quant_error_bound = if core_norm > 0.0 {
            core_error / core_norm + self.factor_errors.iter().sum::<f64>()
        } else {
            0.0
        };
        self.w
            .seek(SeekFrom::Start(self.base + QUANT_BOUND_OFFSET))?;
        self.w.write_all(&quant_error_bound.to_le_bytes())?;
        self.w.flush()?;

        let stored_values = self.core_total
            + self
                .header
                .dims
                .iter()
                .zip(self.header.ranks.iter())
                .map(|(&d, &r)| d * r)
                .sum::<usize>();
        Ok(EncodeReport {
            bytes: self.bytes,
            stored_values,
            quant_error_bound,
            factor_errors: self.factor_errors,
            core_error,
        })
    }
}

/// Writes an in-memory Tucker decomposition to `path`, streaming the core in
/// bounded chunks of whole last-mode slabs (encoded on the global pool).
pub fn write_tucker(
    path: impl AsRef<Path>,
    t: &TuckerTensor,
    opts: &StoreOptions,
) -> io::Result<EncodeReport> {
    write_tucker_ctx(path, t, opts, ExecContext::global())
}

/// [`write_tucker`] on an explicit execution context: core chunks are
/// codec-encoded in parallel, then written in order — the produced file is
/// byte-identical for every thread count.
pub fn write_tucker_ctx(
    path: impl AsRef<Path>,
    t: &TuckerTensor,
    opts: &StoreOptions,
    ctx: &ExecContext,
) -> io::Result<EncodeReport> {
    try_write_tucker_ctx(path, t, opts, ctx).map_err(StoreError::into_io)
}

/// Fallible [`write_tucker`]: a degenerate decomposition (zero extents or
/// ranks) or inconsistent metadata is a typed
/// [`StoreError`](crate::StoreError) instead of an opaque `InvalidData`.
pub fn try_write_tucker(
    path: impl AsRef<Path>,
    t: &TuckerTensor,
    opts: &StoreOptions,
) -> Result<EncodeReport, StoreError> {
    try_write_tucker_ctx(path, t, opts, ExecContext::global())
}

/// Fallible [`write_tucker_ctx`]; see [`try_write_tucker`].
pub fn try_write_tucker_ctx(
    path: impl AsRef<Path>,
    t: &TuckerTensor,
    opts: &StoreOptions,
    ctx: &ExecContext,
) -> Result<EncodeReport, StoreError> {
    let header = TkrHeader {
        dims: t.original_dims(),
        ranks: t.ranks(),
        eps: opts.eps,
        codec: opts.codec,
        quant_error_bound: 0.0,
        meta: opts.meta.clone(),
    };
    let mut w = TkrWriter::try_create(path, header)?;
    for (n, u) in t.factors.iter().enumerate() {
        w.try_write_factor(n, u)?;
    }
    w.try_write_core_chunks_ctx(&core_slab_chunks(&t.core), ctx)?;
    w.try_finish()
}

/// Groups a core into runs of whole last-mode slabs of about
/// [`CHUNK_TARGET_ELEMS`] elements — the chunking policy of
/// [`write_tucker_ctx`] (and therefore of [`compress_streaming`], which
/// serializes through it).
fn core_slab_chunks(core: &DenseTensor) -> Vec<&[f64]> {
    let stride = core.last_mode_stride().max(1);
    let last = *core.dims().last().expect("core has at least one mode");
    let slabs_per_chunk = (CHUNK_TARGET_ELEMS / stride).max(1);
    let mut chunks = Vec::with_capacity(last.div_ceil(slabs_per_chunk));
    let mut s = 0;
    while s < last {
        let len = slabs_per_chunk.min(last - s);
        chunks.push(core.last_mode_slab(s, len));
        s += len;
    }
    chunks
}

/// The out-of-core compression pipeline end to end: streams `src` through
/// the two-phase [`st_hosvd_streaming_ctx`] (peak memory `O(slab +
/// truncated tensor)` — the full tensor is never resident) and writes the
/// resulting decomposition to `path`, core slabs chunked straight into the
/// [`TkrWriter`].
///
/// The artifact is **byte-identical** to materializing the source, running
/// `st_hosvd_ctx`, and calling [`write_tucker_ctx`] — the decomposition is
/// bit-identical, and serialization *is* `write_tucker_ctx` — for every
/// slab width and thread count (pinned in `tests/streaming.rs`).
pub fn compress_streaming(
    path: impl AsRef<Path>,
    src: &impl SlabSource,
    sth: &SthosvdOptions,
    stream: &StreamingOptions,
    opts: &StoreOptions,
    ctx: &ExecContext,
) -> io::Result<(SthosvdResult, EncodeReport)> {
    let result = st_hosvd_streaming_ctx(src, sth, stream, ctx);
    let report = write_tucker_ctx(path, &result.tucker, opts, ctx)?;
    Ok((result, report))
}

/// Distributed export (the paper's Sec. VI output step): gathers the
/// block-distributed core of a [`DistTucker`] onto rank 0 and writes the same
/// `.tkr` artifact a sequential run would produce. Every rank must call this;
/// rank 0 returns the report, all others `Ok(None)`.
pub fn gather_and_write(
    comm: &Communicator,
    t: &DistTucker,
    path: impl AsRef<Path>,
    opts: &StoreOptions,
) -> io::Result<Option<EncodeReport>> {
    match t.gather_to_root(comm) {
        Some(tucker) => write_tucker(path, &tucker, opts).map(Some),
        None => Ok(None),
    }
}
