//! Opening `.tkr` artifacts and serving partial-reconstruction queries.
//!
//! [`TkrArtifact::open`] parses the header, decodes the factor and core
//! blocks, and validates completeness. Queries then never touch the original
//! data size: [`TkrArtifact::reconstruct_range`] /
//! [`TkrArtifact::reconstruct_subtensor`] contract the core against **row
//! subsets** of the factors (cost scales with the requested window),
//! [`TkrArtifact::reconstruct_slice`] pulls one plane (one species, one
//! timestep), and [`TkrArtifact::element`] evaluates a single entry in
//! `O(N·∏R_n)` — the laptop-scale analysis workflow the paper motivates in
//! Secs. II-C and VII.

use crate::codec::Codec;
use crate::format::{invalid, read_u32, read_u64, TkrHeader, TAG_CORE_CHUNK, TAG_END, TAG_FACTOR};
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;
use tucker_core::reconstruct::{reconstruct_element, reconstruct_slice, reconstruct_subtensor};
use tucker_core::TuckerTensor;
use tucker_exec::ExecContext;
use tucker_linalg::Matrix;
use tucker_tensor::{DenseTensor, SubtensorSpec};

/// An opened `.tkr` artifact: parsed header plus the decoded decomposition.
#[derive(Debug, Clone)]
pub struct TkrArtifact {
    header: TkrHeader,
    tucker: TuckerTensor,
    file_bytes: u64,
}

impl TkrArtifact {
    /// Opens and fully validates an artifact (decoding on the global pool).
    pub fn open(path: impl AsRef<Path>) -> io::Result<TkrArtifact> {
        TkrArtifact::open_ctx(path, ExecContext::global())
    }

    /// [`TkrArtifact::open`] on an explicit execution context: the scan pass
    /// reads and validates the framing sequentially, then the buffered core
    /// chunk payloads are codec-decoded in parallel into disjoint ranges of
    /// the core. Decoded values are bit-identical for every thread count.
    pub fn open_ctx(path: impl AsRef<Path>, ctx: &ExecContext) -> io::Result<TkrArtifact> {
        let file = File::open(&path)?;
        let file_bytes = file.metadata()?.len();
        let mut r = BufReader::new(file);
        let header = TkrHeader::read_from(&mut r)?;
        let ndims = header.ndims();
        let codec = header.codec;

        // A block's payload can never hold more values than the file has
        // bytes per value, so bound every declared allocation by the file
        // size — a corrupt header must fail here, not abort on OOM.
        let max_vals = (file_bytes / codec.bytes_per_value() as u64) as usize;
        let core_total: usize = header
            .ranks
            .iter()
            .try_fold(1usize, |acc, &r| acc.checked_mul(r))
            .filter(|&c| c <= max_vals)
            .ok_or_else(|| invalid("declared core is larger than the file itself"))?;
        for (n, (&d, &rk)) in header.dims.iter().zip(header.ranks.iter()).enumerate() {
            if d.checked_mul(rk).is_none_or(|v| v > max_vals) {
                return Err(invalid(&format!(
                    "declared factor {n} is larger than the file itself"
                )));
            }
        }

        let mut factors: Vec<Option<Matrix>> = vec![None; ndims];
        let mut core_data = vec![0.0f64; core_total];
        // Raw (still encoded) core chunk payloads awaiting decode. Decoding
        // happens in bounded waves of a few chunks per pool thread, so the
        // scan never holds more than one wave of encoded payloads on top of
        // the decoded core (the old chunk-at-a-time memory profile).
        let wave = crate::writer::codec_wave_chunks(ctx);
        let mut pending: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut decoded_upto = 0usize;
        let mut core_filled = 0usize;
        let mut saw_end = false;

        while !saw_end {
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    invalid("truncated artifact: missing end marker")
                } else {
                    e
                }
            })?;
            match tag[0] {
                TAG_FACTOR => {
                    let mode = read_u32(&mut r)? as usize;
                    let rows = read_u64(&mut r)? as usize;
                    let cols = read_u64(&mut r)? as usize;
                    if mode >= ndims {
                        return Err(invalid(&format!("factor block for mode {mode} of {ndims}")));
                    }
                    if factors[mode].is_some() {
                        return Err(invalid(&format!("duplicate factor block for mode {mode}")));
                    }
                    if rows != header.dims[mode] || cols != header.ranks[mode] {
                        return Err(invalid(&format!(
                            "factor {mode} is {rows}×{cols}, header says {}×{}",
                            header.dims[mode], header.ranks[mode]
                        )));
                    }
                    let mut u = Matrix::zeros(rows, cols);
                    for j in 0..cols {
                        let col = codec.decode_block(&mut r, rows)?;
                        for (i, &v) in col.iter().enumerate() {
                            u.set(i, j, v);
                        }
                    }
                    factors[mode] = Some(u);
                }
                TAG_CORE_CHUNK => {
                    let start = read_u64(&mut r)? as usize;
                    let len = read_u64(&mut r)? as usize;
                    if start != core_filled {
                        return Err(invalid(&format!(
                            "core chunk at {start}, expected next offset {core_filled}"
                        )));
                    }
                    // Overflow-safe: start == core_filled <= core_total here.
                    if len > core_total - start {
                        return Err(invalid("core chunk overruns the core"));
                    }
                    let mut payload = vec![0u8; codec.block_bytes(len)];
                    r.read_exact(&mut payload)?;
                    pending.push((len, payload));
                    core_filled += len;
                    if pending.len() >= wave {
                        decode_wave(codec, ctx, &mut pending, &mut core_data, &mut decoded_upto);
                    }
                }
                TAG_END => {
                    let declared = read_u64(&mut r)? as usize;
                    if declared != core_total {
                        return Err(invalid(&format!(
                            "end marker declares {declared} core elements, header implies {core_total}"
                        )));
                    }
                    saw_end = true;
                }
                t => return Err(invalid(&format!("unknown block tag {t:#x}"))),
            }
        }
        if core_filled != core_total {
            return Err(invalid(&format!(
                "core incomplete: {core_filled} of {core_total} elements"
            )));
        }
        decode_wave(codec, ctx, &mut pending, &mut core_data, &mut decoded_upto);
        debug_assert_eq!(decoded_upto, core_total);
        let factors: Vec<Matrix> = factors
            .into_iter()
            .enumerate()
            .map(|(n, f)| f.ok_or_else(|| invalid(&format!("missing factor block for mode {n}"))))
            .collect::<io::Result<_>>()?;
        let core = DenseTensor::from_vec(&header.ranks, core_data);
        Ok(TkrArtifact {
            tucker: TuckerTensor::new(core, factors),
            header,
            file_bytes,
        })
    }

    /// The parsed header (shape, ranks, ε, codec, quantization bound,
    /// metadata).
    pub fn header(&self) -> &TkrHeader {
        &self.header
    }

    /// The decoded decomposition.
    pub fn tucker(&self) -> &TuckerTensor {
        &self.tucker
    }

    /// Consumes the artifact, returning the decomposition.
    pub fn into_tucker(self) -> TuckerTensor {
        self.tucker
    }

    /// Total declared relative error budget: decomposition ε plus the codec's
    /// quantization bound.
    pub fn error_budget(&self) -> f64 {
        self.header.error_budget()
    }

    /// Physical compression ratio: original field as raw `f64` bytes over the
    /// artifact's file size.
    pub fn compression_ratio(&self) -> f64 {
        let original = 8.0 * self.header.dims.iter().map(|&d| d as f64).product::<f64>();
        original / self.file_bytes as f64
    }

    /// The artifact's size on disk in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Reconstructs the full field (only sensible when it fits in memory).
    pub fn reconstruct(&self) -> DenseTensor {
        self.tucker.reconstruct()
    }

    /// Reconstructs the window given by per-mode `(start, len)` ranges without
    /// materializing anything outside it.
    pub fn reconstruct_range(&self, ranges: &[(usize, usize)]) -> DenseTensor {
        assert_eq!(
            ranges.len(),
            self.header.ndims(),
            "reconstruct_range: one (start, len) range per mode"
        );
        self.reconstruct_subtensor(&SubtensorSpec::from_ranges(ranges))
    }

    /// Reconstructs an arbitrary (possibly non-contiguous) subtensor.
    pub fn reconstruct_subtensor(&self, spec: &SubtensorSpec) -> DenseTensor {
        reconstruct_subtensor(&self.tucker, spec)
    }

    /// Reconstructs the single mode-`mode` slice at `idx` (one species, one
    /// timestep, one grid plane).
    pub fn reconstruct_slice(&self, mode: usize, idx: usize) -> DenseTensor {
        reconstruct_slice(&self.tucker, mode, idx)
    }

    /// Evaluates one element in `O(N·∏R_n)`.
    pub fn element(&self, idx: &[usize]) -> f64 {
        reconstruct_element(&self.tucker, idx)
    }
}

/// Decodes one wave of buffered core-chunk payloads in parallel into the
/// consecutive core range starting at `*decoded_upto`, draining `pending`.
/// Chunks were validated to be contiguous during the scan, so pairing each
/// with its disjoint slice in arrival order is exact; the exactly-sized
/// payload buffers make in-memory decoding infallible.
fn decode_wave(
    codec: Codec,
    ctx: &ExecContext,
    pending: &mut Vec<(usize, Vec<u8>)>,
    core_data: &mut [f64],
    decoded_upto: &mut usize,
) {
    if pending.is_empty() {
        return;
    }
    let mut slots: Vec<((usize, Vec<u8>), &mut [f64])> = Vec::with_capacity(pending.len());
    let mut rest = &mut core_data[*decoded_upto..];
    for (len, payload) in pending.drain(..) {
        let (dst, tail) = rest.split_at_mut(len);
        rest = tail;
        *decoded_upto += len;
        slots.push(((len, payload), dst));
    }
    ctx.for_each_slot(&mut slots, |_, ((len, payload), dst)| {
        let decoded = codec
            .decode_block(&mut io::Cursor::new(&payload[..]), *len)
            .expect("in-memory decode of an exactly-sized payload cannot fail");
        dst.copy_from_slice(&decoded);
    });
}
