//! Opening `.tkr` artifacts and serving partial-reconstruction queries.
//!
//! [`TkrArtifact::open`] is the *eager* reader: one framing scan (shared
//! with the lazy [`crate::TkrReader`] — see [`crate::lazy`]), then every
//! core chunk decoded up front. Queries then never touch the original data
//! size: [`TkrArtifact::reconstruct_range`] /
//! [`TkrArtifact::reconstruct_subtensor`] contract the core against **row
//! subsets** of the factors (cost scales with the requested window),
//! [`TkrArtifact::reconstruct_slice`] pulls one plane (one species, one
//! timestep), [`TkrArtifact::element`] evaluates a single entry in
//! `O(N·∏R)`, and [`TkrArtifact::elements`] batches point queries through a
//! shared `O(∏R)`-per-point contraction — the laptop-scale analysis
//! workflow the paper motivates in Secs. II-C and VII.
//!
//! Degenerate requests (wrong arity, empty or out-of-range windows, bad
//! indices) return a typed [`QueryError`] instead of panicking; the lazy
//! reader validates identically.

use crate::codec::Codec;
use crate::lazy::{scan_artifact, ChunkEntry, ScannedArtifact};
use crate::query::{validate_point, validate_ranges, validate_slice, validate_spec, QueryError};
use crate::writer::codec_wave_chunks;
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::Path;
use tucker_core::reconstruct::{reconstruct_element, reconstruct_slice, reconstruct_subtensor};
use tucker_core::TuckerTensor;
use tucker_exec::ExecContext;
use tucker_tensor::{DenseTensor, SubtensorSpec};

/// An opened `.tkr` artifact: parsed header plus the decoded decomposition.
#[derive(Debug, Clone)]
pub struct TkrArtifact {
    header: crate::format::TkrHeader,
    tucker: TuckerTensor,
    file_bytes: u64,
}

impl TkrArtifact {
    /// Opens and fully validates an artifact (decoding on the global pool).
    pub fn open(path: impl AsRef<Path>) -> io::Result<TkrArtifact> {
        TkrArtifact::open_ctx(path, ExecContext::global())
    }

    /// [`TkrArtifact::open`] on an explicit execution context: the shared
    /// scan pass reads and validates the framing and builds the chunk
    /// directory, then every core chunk is codec-decoded in parallel waves
    /// into its disjoint range of the core. Decoded values are bit-identical
    /// for every thread count. The eager reader is exactly the lazy reader's
    /// scan plus a decode-everything pass — one code path validates both.
    pub fn open_ctx(path: impl AsRef<Path>, ctx: &ExecContext) -> io::Result<TkrArtifact> {
        let ScannedArtifact {
            header,
            factors,
            chunks,
            core_total,
            mut file,
            file_bytes,
        } = scan_artifact(path)?;
        let mut core_data = vec![0.0f64; core_total];
        decode_all_chunks(header.codec, ctx, &chunks, &mut file, &mut core_data)?;
        let core = DenseTensor::from_vec(&header.ranks, core_data);
        Ok(TkrArtifact {
            tucker: TuckerTensor::new(core, factors),
            header,
            file_bytes,
        })
    }

    /// The parsed header (shape, ranks, ε, codec, quantization bound,
    /// metadata).
    pub fn header(&self) -> &crate::format::TkrHeader {
        &self.header
    }

    /// The decoded decomposition.
    pub fn tucker(&self) -> &TuckerTensor {
        &self.tucker
    }

    /// Consumes the artifact, returning the decomposition.
    pub fn into_tucker(self) -> TuckerTensor {
        self.tucker
    }

    /// Total declared relative error budget: decomposition ε plus the codec's
    /// quantization bound.
    pub fn error_budget(&self) -> f64 {
        self.header.error_budget()
    }

    /// Physical compression ratio: original field as raw `f64` bytes over the
    /// artifact's file size.
    pub fn compression_ratio(&self) -> f64 {
        let original = 8.0 * self.header.dims.iter().map(|&d| d as f64).product::<f64>();
        original / self.file_bytes as f64
    }

    /// The artifact's size on disk in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Reconstructs the full field (only sensible when it fits in memory).
    pub fn reconstruct(&self) -> DenseTensor {
        self.tucker.reconstruct()
    }

    /// Reconstructs the window given by per-mode `(start, len)` ranges without
    /// materializing anything outside it. Degenerate windows (wrong arity,
    /// empty or out-of-range) return a typed error.
    pub fn reconstruct_range(&self, ranges: &[(usize, usize)]) -> Result<DenseTensor, QueryError> {
        validate_ranges(ranges, &self.header.dims)?;
        self.reconstruct_subtensor(&SubtensorSpec::from_ranges(ranges))
    }

    /// Reconstructs an arbitrary (possibly non-contiguous) subtensor.
    pub fn reconstruct_subtensor(&self, spec: &SubtensorSpec) -> Result<DenseTensor, QueryError> {
        validate_spec(spec, &self.header.dims)?;
        Ok(reconstruct_subtensor(&self.tucker, spec))
    }

    /// Reconstructs the single mode-`mode` slice at `idx` (one species, one
    /// timestep, one grid plane).
    pub fn reconstruct_slice(&self, mode: usize, idx: usize) -> Result<DenseTensor, QueryError> {
        validate_slice(mode, idx, &self.header.dims)?;
        Ok(reconstruct_slice(&self.tucker, mode, idx))
    }

    /// Evaluates one element in `O(N·∏R_n)`.
    pub fn element(&self, idx: &[usize]) -> Result<f64, QueryError> {
        validate_point(idx, &self.header.dims)?;
        Ok(reconstruct_element(&self.tucker, idx))
    }

    /// Batched element queries.
    ///
    /// Instead of paying [`TkrArtifact::element`]'s full `O(N·∏R)` walk per
    /// point, each point contracts the core against its factor rows one mode
    /// at a time from the last mode inward — `O(∏R·(1 + 1/R_N + …)) ≈
    /// O(∏R)` per point — with the factor-row slices and the two ping-pong
    /// contraction buffers shared across the whole batch (no per-point
    /// allocation). Same sum as `element` in a different association order,
    /// so results agree to floating-point round-off, not bit-for-bit.
    pub fn elements(&self, points: &[&[usize]]) -> Result<Vec<f64>, QueryError> {
        for p in points {
            validate_point(p, &self.header.dims)?;
        }
        let core = &self.tucker.core;
        let ranks = core.dims();
        let ndims = ranks.len();
        // One contraction buffer shared by the whole batch. Contracting in
        // place is safe: output `l` reads positions `l + r·stride ≥ l`, and
        // only positions `< l` have been overwritten when it is computed.
        let mut cur: Vec<f64> = Vec::with_capacity(core.len());
        let mut out = Vec::with_capacity(points.len());
        for point in points {
            cur.clear();
            cur.extend_from_slice(core.as_slice());
            let mut cur_len: usize = core.len();
            for n in (0..ndims).rev() {
                let stride = cur_len / ranks[n];
                let row = self.tucker.factors[n].row(point[n]);
                for l in 0..stride {
                    let mut s = 0.0;
                    for (r, &u) in row.iter().enumerate() {
                        s += cur[l + r * stride] * u;
                    }
                    cur[l] = s;
                }
                cur_len = stride;
            }
            out.push(cur[0]);
        }
        Ok(out)
    }
}

/// Decodes every chunk of a scanned artifact into `core_data`, in waves of a
/// few chunks per pool thread: payloads are read sequentially, decoded in
/// parallel into disjoint core ranges, and no more than one wave of encoded
/// payloads is ever held alongside the decoded core.
fn decode_all_chunks(
    codec: Codec,
    ctx: &ExecContext,
    chunks: &[ChunkEntry],
    file: &mut BufReader<std::fs::File>,
    core_data: &mut [f64],
) -> io::Result<()> {
    let wave = codec_wave_chunks(ctx);
    let mut base = 0usize;
    while base < chunks.len() {
        let batch = &chunks[base..(base + wave).min(chunks.len())];
        // Read this wave's payloads (sequential IO, ascending offsets).
        let mut slots: Vec<(ChunkEntry, Vec<u8>, &mut [f64])> = Vec::with_capacity(batch.len());
        let mut rest = &mut core_data[batch[0].start..];
        let mut upto = batch[0].start;
        for entry in batch {
            let mut payload = vec![0u8; codec.block_bytes(entry.len)];
            file.seek(SeekFrom::Start(entry.offset))?;
            file.read_exact(&mut payload)?;
            debug_assert_eq!(entry.start, upto);
            let (dst, tail) = rest.split_at_mut(entry.len);
            rest = tail;
            upto += entry.len;
            slots.push((*entry, payload, dst));
        }
        // Decode in parallel; the exactly-sized payload buffers make the
        // in-memory decode infallible.
        ctx.for_each_slot(&mut slots, |_, (entry, payload, dst)| {
            let decoded = codec
                .decode_block(&mut io::Cursor::new(&payload[..]), entry.len)
                .expect("in-memory decode of an exactly-sized payload cannot fail");
            dst.copy_from_slice(&decoded);
        });
        base += batch.len();
    }
    Ok(())
}
