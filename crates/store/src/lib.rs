//! `tucker-store` — durable storage and a query engine for Tucker-compressed
//! tensors.
//!
//! The paper's end product is not the decomposition in memory but *usable
//! compressed scientific data* (Secs. V–VII): write the core and factor
//! matrices to durable storage, ship the small artifact, and later
//! reconstruct the full field — or just the subtensor an analyst asks for —
//! without ever materializing the original. This crate plays the role the
//! TuckerMPI file format plays for the original code, in three layers:
//!
//! 1. **Container format** ([`format`]) — the versioned `.tkr` binary layout:
//!    fixed header (shape, ranks, ε, codec, quantization bound), provenance
//!    metadata (dataset label, mode labels, per-species normalization), then
//!    tagged factor and core blocks.
//! 2. **Codecs** ([`codec`]) — configurable `f64` → `f32` / scaled-`i16`
//!    encoding with per-column scale factors, typically doubling-to-quadrupling
//!    the model's compression ratio; every block reports the exact error it
//!    introduced and the writer folds that into the artifact's declared error
//!    budget.
//! 3. **Writer & query engine** ([`writer`], [`reader`], [`lazy`]) — a
//!    streaming chunked [`TkrWriter`] (core serialized slab-by-slab, so
//!    fields larger than memory stream through), [`compress_streaming`]
//!    wiring the out-of-core ST-HOSVD straight into it,
//!    [`gather_and_write`] for distributed output, and two readers:
//!    the eager [`TkrArtifact`] (core decoded at open) and the lazy
//!    [`TkrReader`] (chunk directory at open, chunks decoded on demand
//!    behind a bounded LRU cache) — both serving `reconstruct_range` /
//!    `reconstruct_slice` / `element` queries whose cost scales with the
//!    request, never with the original data, with byte-identical answers.
//!
//! # Example
//!
//! ```
//! use tucker_core::prelude::*;
//! use tucker_store::{Codec, StoreOptions, TkrArtifact, write_tucker};
//! use tucker_tensor::DenseTensor;
//!
//! let x = DenseTensor::from_fn(&[12, 10, 8], |idx| {
//!     (0.3 * idx[0] as f64).sin() + (0.2 * idx[1] as f64 * idx[2] as f64).cos()
//! });
//! let eps = 1e-4;
//! let result = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps));
//!
//! let path = std::env::temp_dir().join("tucker_store_doctest.tkr");
//! let report = write_tucker(&path, &result.tucker, &StoreOptions::new(Codec::F32, eps)).unwrap();
//! assert!(report.quant_error_bound < eps);
//!
//! let artifact = TkrArtifact::open(&path).unwrap();
//! // One element, one slice, one window — no full reconstruction anywhere.
//! let window = artifact.reconstruct_range(&[(2, 3), (0, 10), (5, 2)]).unwrap();
//! assert_eq!(window.dims(), &[3, 10, 2]);
//! let e = artifact.element(&[4, 5, 6]).unwrap();
//! assert!((e - x.get(&[4, 5, 6])).abs() < 1e-2);
//!
//! // The lazy reader answers the same queries byte-identically while
//! // decoding only the core chunks it touches.
//! let reader = tucker_store::TkrReader::open(&path).unwrap();
//! assert_eq!(reader.reconstruct_range(&[(2, 3), (0, 10), (5, 2)]).unwrap(), window);
//! std::fs::remove_file(&path).ok();
//! ```

pub mod codec;
pub mod error;
pub mod format;
pub mod lazy;
pub mod query;
pub mod reader;
pub mod shared;
pub mod writer;

pub use codec::Codec;
pub use error::{CodecError, FormatError, StoreError};
pub use format::{TkrHeader, TkrMetadata};
pub use lazy::{TkrReader, DEFAULT_CACHE_CHUNKS};
pub use query::QueryError;
pub use reader::TkrArtifact;
pub use shared::{ArtifactCacheStats, CacheSession, SharedChunkCache};
pub use writer::{
    compress_streaming, gather_and_write, try_write_tucker, try_write_tucker_ctx, write_tucker,
    write_tucker_ctx, EncodeReport, StoreOptions, TkrWriter,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tucker_core::dist::{dist_st_hosvd, DistTensor};
    use tucker_core::sthosvd::{st_hosvd, SthosvdOptions};
    use tucker_core::TuckerTensor;
    use tucker_distmem::runtime::spmd_with_grid;
    use tucker_distmem::ProcGrid;
    use tucker_tensor::{extract_subtensor, relative_error, DenseTensor, SubtensorSpec};

    static COUNTER: AtomicUsize = AtomicUsize::new(0);

    /// A unique temp path per call (tests run in parallel).
    fn temp_tkr(tag: &str) -> PathBuf {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "tucker_store_test_{}_{tag}_{n}.tkr",
            std::process::id()
        ))
    }

    fn wavy(dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(dims, |idx| {
            let mut v = 0.2;
            for (k, &i) in idx.iter().enumerate() {
                v += ((k + 1) as f64 * 0.23 * i as f64).sin();
            }
            v
        })
    }

    fn compressed(dims: &[usize], eps: f64) -> (DenseTensor, TuckerTensor) {
        let x = wavy(dims);
        let r = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps));
        (x, r.tucker)
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        let (_, t) = compressed(&[10, 9, 8], 1e-5);
        let path = temp_tkr("f64");
        write_tucker(&path, &t, &StoreOptions::new(Codec::F64, 1e-5)).unwrap();
        let artifact = TkrArtifact::open(&path).unwrap();
        assert_eq!(artifact.tucker(), &t);
        assert_eq!(artifact.header().quant_error_bound, 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_codec_round_trips_within_budget() {
        let eps = 1e-3;
        let (x, t) = compressed(&[12, 10, 8], eps);
        for codec in Codec::all() {
            let path = temp_tkr(codec.name());
            let report = write_tucker(&path, &t, &StoreOptions::new(codec, eps)).unwrap();
            let artifact = TkrArtifact::open(&path).unwrap();
            let rec = artifact.reconstruct();
            let err = relative_error(&x, &rec);
            assert!(
                err <= artifact.error_budget() + 1e-12,
                "{}: error {err} above declared budget {}",
                codec.name(),
                artifact.error_budget()
            );
            assert_eq!(
                report.quant_error_bound,
                artifact.header().quant_error_bound
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn quantized_codecs_shrink_the_file() {
        // Fixed ranks so the payload dominates the fixed header overhead.
        let x = wavy(&[14, 12, 10]);
        let t = st_hosvd(&x, &SthosvdOptions::with_ranks(vec![8, 8, 8])).tucker;
        let mut sizes = Vec::new();
        for codec in Codec::all() {
            let path = temp_tkr(&format!("size_{}", codec.name()));
            let report = write_tucker(&path, &t, &StoreOptions::new(codec, 1e-4)).unwrap();
            assert_eq!(report.bytes, std::fs::metadata(&path).unwrap().len());
            sizes.push(report.bytes);
            std::fs::remove_file(&path).ok();
        }
        // f64 > f32 > q16, roughly by the per-value byte ratios (the fixed
        // header and per-block overhead dilute the ratio at this tiny size).
        assert!(sizes[0] > sizes[1] && sizes[1] > sizes[2]);
        assert!((sizes[0] as f64) / (sizes[1] as f64) > 1.6);
        assert!((sizes[0] as f64) / (sizes[2] as f64) > 2.5);
    }

    #[test]
    fn subtensor_query_matches_sliced_full_reconstruction_exactly() {
        let (_, t) = compressed(&[12, 10, 8], 1e-4);
        for codec in Codec::all() {
            let path = temp_tkr(&format!("window_{}", codec.name()));
            write_tucker(&path, &t, &StoreOptions::new(codec, 1e-4)).unwrap();
            let artifact = TkrArtifact::open(&path).unwrap();
            let full = artifact.reconstruct();
            let window = artifact
                .reconstruct_range(&[(3, 4), (2, 5), (0, 8)])
                .unwrap();
            let expected = extract_subtensor(
                &full,
                &SubtensorSpec::from_ranges(&[(3, 4), (2, 5), (0, 8)]),
            );
            // Bit-identical: partial reconstruction performs the same
            // contractions in the same order as slicing the full one.
            assert_eq!(window, expected);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn slice_and_element_queries() {
        let eps = 1e-5;
        let (x, t) = compressed(&[11, 9, 7], eps);
        let path = temp_tkr("queries");
        write_tucker(&path, &t, &StoreOptions::new(Codec::F64, eps)).unwrap();
        let artifact = TkrArtifact::open(&path).unwrap();
        let slice = artifact.reconstruct_slice(1, 4).unwrap();
        assert_eq!(slice.dims(), &[11, 1, 7]);
        for i in [0usize, 5, 10] {
            for k in [0usize, 3, 6] {
                assert!((slice.get(&[i, 0, k]) - x.get(&[i, 4, k])).abs() < 1e-3);
                let e = artifact.element(&[i, 4, k]).unwrap();
                assert!((e - x.get(&[i, 4, k])).abs() < 1e-3);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_writer_equals_one_shot_writer() {
        let (_, t) = compressed(&[9, 8, 10], 1e-4);
        let opts = StoreOptions::new(Codec::Q16, 1e-4);
        let one = temp_tkr("oneshot");
        write_tucker(&one, &t, &opts).unwrap();

        // Hand-driven streaming path: factors, then the core one last-mode
        // slab (one "timestep") at a time.
        let streamed = temp_tkr("streamed");
        let header = TkrHeader {
            dims: t.original_dims(),
            ranks: t.ranks(),
            eps: 1e-4,
            codec: Codec::Q16,
            quant_error_bound: 0.0,
            meta: TkrMetadata::default(),
        };
        let mut w = TkrWriter::create(&streamed, header).unwrap();
        for (n, u) in t.factors.iter().enumerate() {
            w.write_factor(n, u).unwrap();
        }
        let last = *t.core.dims().last().unwrap();
        for s in 0..last {
            w.write_core_chunk(t.core.last_mode_slab(s, 1)).unwrap();
        }
        w.finish().unwrap();

        let a = TkrArtifact::open(&one).unwrap();
        let b = TkrArtifact::open(&streamed).unwrap();
        // Same decoded decomposition regardless of chunking... but Q16 core
        // chunks carry per-chunk scales, so compare reconstructions instead of
        // bytes: both must decode to cores within the quantization step.
        assert_eq!(a.tucker().factors, b.tucker().factors);
        let err = relative_error(&a.tucker().core, &b.tucker().core);
        assert!(err < 1e-3, "chunked vs one-shot core differ by {err}");
        std::fs::remove_file(&one).ok();
        std::fs::remove_file(&streamed).ok();
    }

    #[test]
    fn distributed_gather_and_write_round_trips() {
        let dims = [8usize, 9, 6];
        let x = wavy(&dims);
        let eps = 1e-4;
        let seq = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps));
        let seq_rec = seq.tucker.reconstruct();

        let path = temp_tkr("dist");
        let path2 = path.clone();
        let results = spmd_with_grid(ProcGrid::new(&[2, 2, 1]), move |comm| {
            let dx = DistTensor::from_global(&comm, &x);
            let r = dist_st_hosvd(&comm, &dx, &SthosvdOptions::with_tolerance(eps));
            gather_and_write(
                &comm,
                &r.tucker,
                &path2,
                &StoreOptions::new(Codec::F64, eps),
            )
            .unwrap()
            .is_some()
        });
        // Exactly rank 0 wrote the file.
        assert_eq!(results.iter().filter(|&&wrote| wrote).count(), 1);
        assert!(results[0]);

        let artifact = TkrArtifact::open(&path).unwrap();
        let rec = artifact.reconstruct();
        let err = relative_error(&seq_rec, &rec);
        assert!(err < 1e-8, "distributed artifact deviates by {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metadata_round_trips_through_the_header() {
        use tucker_scidata::DatasetPreset;
        let ds = DatasetPreset::Sp.generate(1, 42);
        let eps = 1e-2;
        let r = st_hosvd(&ds.data, &SthosvdOptions::with_tolerance(eps));
        let path = temp_tkr("meta");
        let opts = StoreOptions::new(Codec::F32, eps).with_meta(TkrMetadata::for_dataset(&ds));
        write_tucker(&path, &r.tucker, &opts).unwrap();
        let artifact = TkrArtifact::open(&path).unwrap();
        let meta = &artifact.header().meta;
        assert_eq!(meta.dataset, "SP");
        assert_eq!(meta.mode_labels.len(), 5);
        let norm = meta.normalization.as_ref().unwrap();
        assert_eq!(norm, &ds.normalization);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lazy_reader_matches_eager_reader_byte_for_byte() {
        // Write the core one last-mode slab per chunk so the lazy reader has
        // several chunks to juggle, then compare every query shape against
        // the eager reader with exact equality.
        let (_, t) = compressed(&[10, 9, 12], 1e-4);
        for codec in Codec::all() {
            let path = temp_tkr(&format!("lazy_{}", codec.name()));
            let header = TkrHeader {
                dims: t.original_dims(),
                ranks: t.ranks(),
                eps: 1e-4,
                codec,
                quant_error_bound: 0.0,
                meta: TkrMetadata::default(),
            };
            let mut w = TkrWriter::create(&path, header).unwrap();
            for (n, u) in t.factors.iter().enumerate() {
                w.write_factor(n, u).unwrap();
            }
            let last = *t.core.dims().last().unwrap();
            for s in 0..last {
                w.write_core_chunk(t.core.last_mode_slab(s, 1)).unwrap();
            }
            w.finish().unwrap();

            let eager = TkrArtifact::open(&path).unwrap();
            let lazy = TkrReader::open_with(&path, 2, tucker_exec::ExecContext::global()).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(lazy.chunk_count(), last);
            assert_eq!(lazy.header(), eager.header());

            let ranges = [(2usize, 5usize), (0, 9), (4, 6)];
            assert_eq!(
                lazy.reconstruct_range(&ranges).unwrap(),
                eager.reconstruct_range(&ranges).unwrap()
            );
            assert_eq!(
                lazy.reconstruct_slice(2, 7).unwrap(),
                eager.reconstruct_slice(2, 7).unwrap()
            );
            assert_eq!(lazy.reconstruct().unwrap(), eager.reconstruct());
            for idx in [[0usize, 0, 0], [9, 8, 11], [3, 4, 5]] {
                assert_eq!(
                    lazy.element(&idx).unwrap().to_bits(),
                    eager.element(&idx).unwrap().to_bits(),
                    "{}: element {idx:?}",
                    codec.name()
                );
            }
            // The bounded cache never holds more than its capacity.
            assert!(lazy.resident_chunks() <= 2);
        }
    }

    #[test]
    fn lazy_reader_decodes_only_touched_chunks_and_caches_repeats() {
        let (_, t) = compressed(&[8, 7, 10], 1e-4);
        let path = temp_tkr("lazy_counts");
        let header = TkrHeader {
            dims: t.original_dims(),
            ranks: t.ranks(),
            eps: 1e-4,
            codec: Codec::F64,
            quant_error_bound: 0.0,
            meta: TkrMetadata::default(),
        };
        let mut w = TkrWriter::create(&path, header).unwrap();
        for (n, u) in t.factors.iter().enumerate() {
            w.write_factor(n, u).unwrap();
        }
        let last = *t.core.dims().last().unwrap();
        for s in 0..last {
            w.write_core_chunk(t.core.last_mode_slab(s, 1)).unwrap();
        }
        w.finish().unwrap();

        // Cache large enough for the whole core: a query decodes each chunk
        // exactly once and repeats are pure cache hits.
        let lazy = TkrReader::open_with(&path, 64, tucker_exec::ExecContext::global()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(lazy.decoded_chunks(), 0, "open must not decode the core");
        lazy.element(&[0, 0, 0]).unwrap();
        assert_eq!(lazy.decoded_chunks(), lazy.chunk_count());
        lazy.reconstruct_range(&[(0, 2), (0, 2), (0, 2)]).unwrap();
        assert_eq!(
            lazy.decoded_chunks(),
            lazy.chunk_count(),
            "second query re-decoded cached chunks"
        );
        assert!(lazy.cache_hits() >= lazy.chunk_count());
    }

    #[test]
    fn degenerate_queries_return_typed_errors_on_both_readers() {
        use crate::query::QueryError;
        let (_, t) = compressed(&[6, 5, 4], 1e-3);
        let path = temp_tkr("typed_errors");
        write_tucker(&path, &t, &StoreOptions::new(Codec::F64, 1e-3)).unwrap();
        let eager = TkrArtifact::open(&path).unwrap();
        let lazy = TkrReader::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Wrong arity.
        assert!(matches!(
            eager.reconstruct_range(&[(0, 2)]),
            Err(QueryError::ModeCountMismatch {
                expected: 3,
                got: 1
            })
        ));
        assert!(matches!(
            lazy.reconstruct_range(&[(0, 2)]),
            Err(QueryError::ModeCountMismatch {
                expected: 3,
                got: 1
            })
        ));
        // Empty and out-of-range windows (including overflow).
        for bad in [
            [(0usize, 0usize), (0, 5), (0, 4)],
            [(0, 6), (5, 1), (0, 4)],
            [(usize::MAX, 2), (0, 5), (0, 4)],
        ] {
            assert!(eager.reconstruct_range(&bad).is_err());
            assert!(lazy.reconstruct_range(&bad).is_err());
        }
        // Slice and element validation.
        assert!(matches!(
            eager.reconstruct_slice(3, 0),
            Err(QueryError::ModeOutOfRange { mode: 3, ndims: 3 })
        ));
        assert!(matches!(
            lazy.reconstruct_slice(1, 5),
            Err(QueryError::IndexOutOfBounds {
                mode: 1,
                index: 5,
                dim: 5
            })
        ));
        assert!(eager.element(&[0, 0]).is_err());
        assert!(eager.element(&[6, 0, 0]).is_err());
        assert!(lazy.element(&[0, 0, 4]).is_err());
        assert!(eager.elements(&[&[0, 0, 0], &[0, 9, 0]]).is_err());
        // Arbitrary specs validate identically on both readers.
        let bad_spec = SubtensorSpec::from_indices(vec![vec![0, 6], vec![0], vec![0]]);
        assert!(matches!(
            eager.reconstruct_subtensor(&bad_spec),
            Err(QueryError::IndexOutOfBounds {
                mode: 0,
                index: 6,
                dim: 6
            })
        ));
        assert!(matches!(
            lazy.reconstruct_subtensor(&bad_spec),
            Err(QueryError::IndexOutOfBounds {
                mode: 0,
                index: 6,
                dim: 6
            })
        ));
        // Valid requests still succeed after rejected ones.
        assert!(eager.reconstruct_range(&[(0, 6), (0, 5), (0, 4)]).is_ok());
        assert!(lazy.element(&[5, 4, 3]).is_ok());
    }

    #[test]
    fn misaligned_core_chunk_is_rejected_at_open() {
        // The format contract says core chunks are whole last-mode slabs;
        // a crafted file violating it must fail at open on both readers,
        // not panic inside a lazy query.
        use crate::format::TAG_CORE_CHUNK;
        let header = TkrHeader {
            dims: vec![6, 6, 6],
            ranks: vec![2, 2, 2],
            eps: 1e-3,
            codec: Codec::F64,
            quant_error_bound: 0.0,
            meta: TkrMetadata::default(),
        };
        let mut bytes = Vec::new();
        header.write_to(&mut bytes).unwrap();
        // A 3-element chunk: not a multiple of the 2·2 = 4 slab stride.
        bytes.push(TAG_CORE_CHUNK);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 24]);
        let path = temp_tkr("misaligned_chunk");
        std::fs::write(&path, &bytes).unwrap();
        let err = TkrArtifact::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(TkrReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batched_elements_match_per_point_queries() {
        let eps = 1e-4;
        let (x, t) = compressed(&[12, 10, 8], eps);
        let path = temp_tkr("batched");
        write_tucker(&path, &t, &StoreOptions::new(Codec::F64, eps)).unwrap();
        let artifact = TkrArtifact::open(&path).unwrap();
        let lazy = TkrReader::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // An empty batch is free on both readers (no chunk is decoded).
        assert!(artifact.elements(&[]).unwrap().is_empty());
        assert!(lazy.elements(&[]).unwrap().is_empty());
        assert_eq!(lazy.decoded_chunks(), 0);

        let points: Vec<Vec<usize>> = (0..40)
            .map(|i| vec![(i * 7) % 12, (i * 5) % 10, (i * 3) % 8])
            .collect();
        let refs: Vec<&[usize]> = points.iter().map(|p| p.as_slice()).collect();
        let batched = artifact.elements(&refs).unwrap();
        let lazy_batched = lazy.elements(&refs).unwrap();
        for ((p, &b), lb) in refs.iter().zip(batched.iter()).zip(lazy_batched.iter()) {
            let single = artifact.element(p).unwrap();
            // Same sum in a different association order: round-off only.
            let scale = single.abs().max(1.0);
            assert!(
                (b - single).abs() <= 1e-12 * scale,
                "batched {b} vs single {single} at {p:?}"
            );
            // The lazy batch walk is bit-identical to the eager element walk.
            assert_eq!(lb.to_bits(), single.to_bits());
            // And everything approximates the original field.
            assert!((single - x.get(p)).abs() < 1e-2);
        }
    }

    #[test]
    fn core_declared_larger_than_file_is_rejected_not_allocated() {
        // Patch a valid small artifact's header so it declares a core of
        // ~2^36 elements (passing the per-mode rank <= dim checks): open()
        // must fail with InvalidData, not attempt a half-terabyte allocation.
        let (_, t) = compressed(&[6, 6, 6], 1e-3);
        let path = temp_tkr("absurd_core");
        write_tucker(&path, &t, &StoreOptions::new(Codec::F64, 1e-3)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let big = (1u64 << 12).to_le_bytes();
        for n in 0..3 {
            let off = 32 + 16 * n;
            bytes[off..off + 8].copy_from_slice(&big); // dim
            bytes[off + 8..off + 16].copy_from_slice(&big); // rank
        }
        std::fs::write(&path, &bytes).unwrap();
        let err = TkrArtifact::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overflowing_core_chunk_length_is_rejected_not_allocated() {
        // A crafted file whose first block is a core chunk with len close to
        // u64::MAX: open() must return InvalidData, not wrap the bounds check
        // and attempt a giant allocation.
        use crate::format::TAG_CORE_CHUNK;
        let header = TkrHeader {
            dims: vec![6, 6, 6],
            ranks: vec![2, 2, 2],
            eps: 1e-3,
            codec: Codec::F64,
            quant_error_bound: 0.0,
            meta: TkrMetadata::default(),
        };
        let mut bytes = Vec::new();
        header.write_to(&mut bytes).unwrap();
        bytes.push(TAG_CORE_CHUNK);
        bytes.extend_from_slice(&0u64.to_le_bytes()); // start
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // len
        let path = temp_tkr("overflow_chunk");
        std::fs::write(&path, &bytes).unwrap();
        let err = TkrArtifact::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_embedded_at_nonzero_offset_patches_its_own_header() {
        // A .tkr section embedded after a prefix in a larger container: the
        // finish-time quant-bound patch must land inside the section, not at
        // absolute offset 24 of the outer file.
        let (_, t) = compressed(&[6, 6, 6], 1e-3);
        let prefix = vec![0xABu8; 64];
        let last = *t.core.dims().last().unwrap();
        let path = temp_tkr("embedded");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            std::io::Write::write_all(&mut f, &prefix).unwrap();
            let header = TkrHeader {
                dims: t.original_dims(),
                ranks: t.ranks(),
                eps: 1e-3,
                codec: Codec::Q16,
                quant_error_bound: 0.0,
                meta: TkrMetadata::default(),
            };
            let mut w = TkrWriter::new(f, header).unwrap();
            for (n, u) in t.factors.iter().enumerate() {
                w.write_factor(n, u).unwrap();
            }
            w.write_core_chunk(t.core.last_mode_slab(0, last)).unwrap();
            let report = w.finish().unwrap();
            assert!(report.quant_error_bound > 0.0);
        }
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..64], &prefix[..], "prefix was corrupted");
        let section = TkrHeader::read_from(&mut std::io::Cursor::new(&bytes[64..])).unwrap();
        assert!(section.quant_error_bound > 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn label_count_must_match_mode_count() {
        let (_, t) = compressed(&[6, 6, 6], 1e-3);
        let path = temp_tkr("labels");
        let meta = TkrMetadata {
            dataset: "X".into(),
            mode_labels: vec!["only one".into()],
            normalization: None,
        };
        let err = write_tucker(
            &path,
            &t,
            &StoreOptions::new(Codec::F64, 1e-3).with_meta(meta),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let (_, t) = compressed(&[6, 6, 6], 1e-3);
        let path = temp_tkr("trunc");
        write_tucker(&path, &t, &StoreOptions::new(Codec::F64, 1e-3)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();
        assert!(TkrArtifact::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic]
    fn writer_rejects_incomplete_core() {
        let (_, t) = compressed(&[6, 6, 6], 1e-3);
        let path = temp_tkr("incomplete");
        let header = TkrHeader {
            dims: t.original_dims(),
            ranks: t.ranks(),
            eps: 1e-3,
            codec: Codec::F64,
            quant_error_bound: 0.0,
            meta: TkrMetadata::default(),
        };
        let mut w = TkrWriter::create(&path, header).unwrap();
        for (n, u) in t.factors.iter().enumerate() {
            w.write_factor(n, u).unwrap();
        }
        // Only one slab of the core written: finish() must panic.
        let r = w.write_core_chunk(t.core.last_mode_slab(0, 1));
        r.unwrap();
        let _ = w.finish();
    }

    /// Writes `t` one last-mode slab per chunk (the multi-chunk layout the
    /// shared-cache tests need) and returns the path.
    fn write_chunked(tag: &str, t: &TuckerTensor, codec: Codec) -> PathBuf {
        let path = temp_tkr(tag);
        let header = TkrHeader {
            dims: t.original_dims(),
            ranks: t.ranks(),
            eps: 1e-4,
            codec,
            quant_error_bound: 0.0,
            meta: TkrMetadata::default(),
        };
        let mut w = TkrWriter::create(&path, header).unwrap();
        for (n, u) in t.factors.iter().enumerate() {
            w.write_factor(n, u).unwrap();
        }
        let last = *t.core.dims().last().unwrap();
        for s in 0..last {
            w.write_core_chunk(t.core.last_mode_slab(s, 1)).unwrap();
        }
        w.finish().unwrap();
        path
    }

    #[test]
    fn shared_sessions_on_one_artifact_populate_a_single_cache() {
        let (_, t) = compressed(&[8, 7, 10], 1e-4);
        let path = write_chunked("shared_single", &t, Codec::F64);
        let ctx = tucker_exec::ExecContext::global();
        let cache = SharedChunkCache::new(64, 4);
        let a = TkrReader::open_shared(&path, "field", &cache, ctx).unwrap();
        let b = TkrReader::open_shared(&path, "field", &cache, ctx).unwrap();
        std::fs::remove_file(&path).ok();

        // A full sweep by reader A, then re-queries by both readers: the
        // aggregate decode count must stay at the chunk count — reader B
        // never decodes anything, it reads A's chunks out of the shared pool.
        let full_a = a.reconstruct().unwrap();
        assert_eq!(a.decoded_chunks(), a.chunk_count());
        let full_b = b.reconstruct().unwrap();
        assert_eq!(full_a, full_b);
        b.element(&[1, 2, 3]).unwrap();
        a.reconstruct_range(&[(0, 4), (1, 3), (2, 5)]).unwrap();
        assert_eq!(
            b.decoded_chunks(),
            b.chunk_count(),
            "re-queries through a warm shared cache must not decode again"
        );
        // Both sessions see the same per-artifact aggregate stats.
        assert_eq!(
            cache.artifact_stats("field").unwrap(),
            a.cache_session().stats()
        );
        assert_eq!(a.cache_hits(), b.cache_hits());
    }

    #[test]
    fn concurrent_shared_sessions_stay_correct_and_within_budget() {
        let (_, t) = compressed(&[8, 7, 12], 1e-4);
        let path = write_chunked("shared_conc", &t, Codec::F64);
        let ctx = tucker_exec::ExecContext::global();
        // A budget smaller than the chunk count keeps eviction live under
        // the concurrent load.
        let cache = SharedChunkCache::new(5, 2);
        let reader = std::sync::Arc::new(TkrReader::open_shared(&path, "x", &cache, ctx).unwrap());
        let expected = TkrArtifact::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let want_full = expected.reconstruct();

        std::thread::scope(|scope| {
            for who in 0..4 {
                let reader = std::sync::Arc::clone(&reader);
                let want = want_full.clone();
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..3 {
                        let i = (who + round) % 8;
                        let got = reader
                            .reconstruct_range(&[(i, 1), (0, 7), (0, 12)])
                            .unwrap();
                        let exp = expected
                            .reconstruct_range(&[(i, 1), (0, 7), (0, 12)])
                            .unwrap();
                        assert_eq!(got, exp, "client {who} round {round}");
                        assert_eq!(reader.reconstruct().unwrap(), want);
                    }
                });
            }
        });
        assert!(cache.resident_total() <= cache.capacity());
        assert!(reader.resident_chunks() <= cache.capacity());
    }

    #[test]
    fn shared_eviction_respects_the_global_budget_across_artifacts() {
        let (_, t1) = compressed(&[8, 7, 10], 1e-4);
        let (_, t2) = compressed(&[6, 9, 8], 1e-4);
        let p1 = write_chunked("budget_a", &t1, Codec::F64);
        let p2 = write_chunked("budget_b", &t2, Codec::F32);
        let ctx = tucker_exec::ExecContext::global();
        let cache = SharedChunkCache::new(6, 3);
        let a = TkrReader::open_shared(&p1, "a", &cache, ctx).unwrap();
        let b = TkrReader::open_shared(&p2, "b", &cache, ctx).unwrap();
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();

        // Together the artifacts have 18 chunks against a 6-chunk budget:
        // interleaved sweeps must stay inside it at every step.
        for _ in 0..3 {
            a.reconstruct().unwrap();
            assert!(cache.resident_total() <= cache.capacity());
            b.reconstruct().unwrap();
            assert!(cache.resident_total() <= cache.capacity());
        }
        assert_eq!(
            a.resident_chunks() + b.resident_chunks(),
            cache.resident_total()
        );
        // Both artifacts show up in the aggregate listing.
        let names: Vec<String> = cache.artifacts().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn private_cache_accounting_matches_shared_single_session() {
        // The historical private-LRU accounting and a single-session shared
        // cache must agree stat-for-stat on the same workload: the private
        // path *is* a one-stripe shared cache, and this pins it.
        let (_, t) = compressed(&[8, 7, 10], 1e-4);
        let path = write_chunked("parity", &t, Codec::Q16);
        let ctx = tucker_exec::ExecContext::global();
        let private = TkrReader::open_with(&path, 3, ctx).unwrap();
        let cache = SharedChunkCache::new(3, 1);
        let shared = TkrReader::open_shared(&path, "p", &cache, ctx).unwrap();
        std::fs::remove_file(&path).ok();

        let workload = |r: &TkrReader| {
            r.element(&[0, 0, 0]).unwrap();
            r.reconstruct_range(&[(0, 4), (0, 7), (2, 6)]).unwrap();
            r.reconstruct_slice(2, 9).unwrap();
            r.elements(&[&[1, 2, 3], &[7, 6, 5]]).unwrap();
        };
        workload(&private);
        workload(&shared);
        assert_eq!(private.decoded_chunks(), shared.decoded_chunks());
        assert_eq!(private.cache_hits(), shared.cache_hits());
        assert_eq!(private.resident_chunks(), shared.resident_chunks());
        assert_eq!(
            private.cache_session().stats(),
            shared.cache_session().stats()
        );
    }

    #[test]
    fn zero_cache_chunks_is_a_typed_error_on_the_try_path_and_a_clamp_on_the_old_one() {
        let (_, t) = compressed(&[6, 6, 6], 1e-3);
        let path = write_chunked("zero_cache", &t, Codec::F64);
        let ctx = tucker_exec::ExecContext::global();
        // try_ path: typed rejection, before any IO interpretation.
        match TkrReader::try_open_with(&path, 0, ctx) {
            Err(StoreError::Format(FormatError::Invalid(msg))) => {
                assert!(msg.contains("cache capacity"), "unhelpful message: {msg}")
            }
            other => panic!("expected a typed Format error, got {other:?}"),
        }
        // try_ path succeeds for any positive capacity.
        let r = TkrReader::try_open_with(&path, 1, ctx).unwrap();
        // Historical path: 0 documentedly clamps to a single-chunk cache.
        let clamped = TkrReader::open_with(&path, 0, ctx).unwrap();
        std::fs::remove_file(&path).ok();
        clamped.reconstruct().unwrap();
        assert!(clamped.resident_chunks() <= 1);
        assert_eq!(r.reconstruct().unwrap(), t.reconstruct());
    }
}
