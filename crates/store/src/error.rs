//! Typed errors of the fallible (`try_*`) storage API.
//!
//! The historical writer surface enforces its format contract with `assert!`
//! — fine for a pipeline whose inputs were produced by this workspace, fatal
//! for a service accepting artifacts and write requests from outside. The
//! `try_*` twins ([`crate::TkrWriter::try_write_core_chunk`],
//! [`crate::try_write_tucker`], …) validate the same contract and return a
//! [`StoreError`] instead; the panicking/`io::Result` names are retained as
//! thin wrappers so existing call sites keep compiling and keep their exact
//! behavior.
//!
//! This module is covered by the CI panic-grep gate: no `panic!`, `unwrap`,
//! `expect`, or `assert` may appear here — every failure is a returned value.

use std::fmt;
use std::io;

/// An invalid or unsupported value encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// An on-disk codec identifier this reader does not know.
    UnknownId(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnknownId(id) => write!(f, "unknown codec id {id}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A violation of the `.tkr` container contract — by a write request that
/// does not fit the declared header, or by a file that does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The header names no modes, or a mode with extent zero.
    ZeroDim {
        /// The offending mode (or 0 for an empty shape).
        mode: usize,
    },
    /// The header declares a rank of zero.
    ZeroRank {
        /// The offending mode.
        mode: usize,
    },
    /// The header declares a rank exceeding the mode's extent.
    RankExceedsDim {
        /// The offending mode.
        mode: usize,
        /// Declared rank.
        rank: usize,
        /// Declared extent.
        dim: usize,
    },
    /// The header's dims and ranks lists disagree in length.
    DimsRanksArity {
        /// Number of dims.
        dims: usize,
        /// Number of ranks.
        ranks: usize,
    },
    /// A factor write for a mode the header does not have.
    ModeOutOfRange {
        /// Requested mode.
        mode: usize,
        /// Number of modes declared by the header.
        ndims: usize,
    },
    /// The same factor written twice.
    FactorRewritten {
        /// The offending mode.
        mode: usize,
    },
    /// A factor whose shape disagrees with the header.
    FactorShape {
        /// The offending mode.
        mode: usize,
        /// Rows of the offered matrix.
        rows: usize,
        /// Columns of the offered matrix.
        cols: usize,
        /// Extent the header declares for this mode.
        dim: usize,
        /// Rank the header declares for this mode.
        rank: usize,
    },
    /// A core chunk with zero elements.
    EmptyChunk,
    /// A core chunk that is not a whole number of last-mode slabs.
    MisalignedChunk {
        /// Elements in the offending chunk.
        len: usize,
        /// Elements per last-mode slab.
        stride: usize,
    },
    /// A core chunk that runs past the declared core size.
    CoreOverrun {
        /// Element offset where the chunk would start.
        start: usize,
        /// Elements in the offending chunk.
        len: usize,
        /// Total core elements declared by the header.
        total: usize,
    },
    /// `finish` called before every factor was written.
    MissingFactor {
        /// The first mode without a factor.
        mode: usize,
    },
    /// `finish` called before the core was fully written.
    CoreIncomplete {
        /// Elements written so far.
        written: usize,
        /// Total core elements declared by the header.
        total: usize,
    },
    /// An artifact (or header) that fails to parse — the read-side
    /// `InvalidData` diagnostics surfaced as a typed value.
    Invalid(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::ZeroDim { mode } => write!(f, "mode {mode} has extent 0"),
            FormatError::ZeroRank { mode } => write!(f, "mode {mode} has rank 0"),
            FormatError::RankExceedsDim { mode, rank, dim } => {
                write!(f, "rank {rank} exceeds extent {dim} in mode {mode}")
            }
            FormatError::DimsRanksArity { dims, ranks } => {
                write!(f, "{dims} dims but {ranks} ranks in the header")
            }
            FormatError::ModeOutOfRange { mode, ndims } => {
                write!(f, "mode {mode} out of range for a {ndims}-mode artifact")
            }
            FormatError::FactorRewritten { mode } => {
                write!(f, "factor for mode {mode} written twice")
            }
            FormatError::FactorShape {
                mode,
                rows,
                cols,
                dim,
                rank,
            } => write!(
                f,
                "factor for mode {mode} is {rows}×{cols}, header declares {dim}×{rank}"
            ),
            FormatError::EmptyChunk => write!(f, "core chunk with zero elements"),
            FormatError::MisalignedChunk { len, stride } => write!(
                f,
                "core chunk of {len} elements is not a whole number of last-mode slabs (stride {stride})"
            ),
            FormatError::CoreOverrun { start, len, total } => write!(
                f,
                "core chunk {start}+{len} overruns the {total}-element core"
            ),
            FormatError::MissingFactor { mode } => {
                write!(f, "finish: factor for mode {mode} was never written")
            }
            FormatError::CoreIncomplete { written, total } => {
                write!(f, "finish: core incomplete ({written} of {total} elements)")
            }
            FormatError::Invalid(msg) => write!(f, "invalid artifact: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Why a fallible storage operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// A container-contract violation.
    Format(FormatError),
    /// An encoding problem.
    Codec(CodecError),
    /// An IO failure.
    Io(io::Error),
}

impl StoreError {
    /// Collapses into the historical `io::Error` surface: format and codec
    /// violations become `InvalidData`, IO errors pass through unchanged —
    /// exactly what the pre-`try_*` API reported.
    pub fn into_io(self) -> io::Error {
        match self {
            StoreError::Io(e) => e,
            StoreError::Format(e) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
            StoreError::Codec(e) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Format(e) => write!(f, "{e}"),
            StoreError::Codec(e) => write!(f, "{e}"),
            StoreError::Io(e) => write!(f, "IO error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Format(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Io(e) => Some(e),
        }
    }
}

impl From<FormatError> for StoreError {
    fn from(e: FormatError) -> Self {
        StoreError::Format(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_into_io() {
        let e = StoreError::from(FormatError::MisalignedChunk { len: 3, stride: 4 });
        assert!(format!("{e}").contains("3 elements"));
        assert_eq!(e.into_io().kind(), io::ErrorKind::InvalidData);
        let e = StoreError::from(CodecError::UnknownId(9));
        assert_eq!(e.into_io().kind(), io::ErrorKind::InvalidData);
        let io_err = StoreError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert_eq!(io_err.into_io().kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn errors_chain_sources() {
        let e = StoreError::from(FormatError::EmptyChunk);
        assert!(std::error::Error::source(&e).is_some());
    }
}
