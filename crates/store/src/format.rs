//! The `.tkr` container format: header layout and low-level field IO.
//!
//! A `.tkr` file is a durable Tucker decomposition — the artifact the paper's
//! pipeline ultimately produces (Secs. V–VII): compress once on the big
//! machine, then ship the small file to an analyst who reconstructs only what
//! they need. The layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "TKR1"
//! 4       2     format version (= 1)
//! 6       1     codec id (0 = f64, 1 = f32, 2 = q16)
//! 7       1     normalization flag (0 = absent, 1 = present)
//! 8       4     ndims N (u32)
//! 12      4     reserved (0)
//! 16      8     eps — the ε the decomposition was built with (f64)
//! 24      8     quant_error_bound — relative reconstruction error added by
//!               the codec (f64; patched by the writer at finish())
//! 32      16·N  per mode: original dim I_n (u64), rank R_n (u64)
//! ...           metadata: dataset label, mode labels, normalization stats
//! ...           blocks: N factor blocks, then core chunks, then end marker
//! ```
//!
//! Metadata encoding: strings are `u32` length + UTF-8 bytes; the label list
//! is a `u32` count followed by that many strings; normalization (if the flag
//! is set) is `u32 mode`, `u32 count`, `count` means then `count` stds as
//! `f64`. Block encoding is defined in [`crate::writer`]: a tag byte
//! ([`TAG_FACTOR`], [`TAG_CORE_CHUNK`], [`TAG_END`]) followed by tag-specific
//! fields and a codec payload ([`crate::codec::Codec`]).
//!
//! Versioning contract: the magic never changes; readers must reject files
//! whose version or codec id they do not know; all growth happens by bumping
//! the version or appending new tagged blocks (unknown tags are an error, not
//! silently skipped, because every block affects the reconstruction).

use crate::codec::Codec;
use std::io::{self, Read, Write};
use tucker_scidata::{GeneratedDataset, Normalization};

/// Upper bound on the tensor order a header may declare — far above any real
/// tensor, low enough that a corrupt `ndims` cannot drive giant allocations.
pub const MAX_NDIMS: usize = 64;
/// Upper bound on header strings and label counts (see `read_string`).
const MAX_STRING_LEN: usize = 1 << 20;
/// Upper bound on normalization slice count (the species mode size).
const MAX_NORM_SLICES: usize = 1 << 24;
/// Upper bound on declared core elements (`∏ R_n`); a corrupt header must
/// fail with `InvalidData`, not a 100-GB allocation in the reader.
pub const MAX_CORE_ELEMS: u64 = 1 << 40;

/// File magic, first 4 bytes of every `.tkr` file.
pub const MAGIC: &[u8; 4] = b"TKR1";
/// Current format version.
pub const VERSION: u16 = 1;
/// Byte offset of the `quant_error_bound` field (patched at `finish()`).
pub const QUANT_BOUND_OFFSET: u64 = 24;

/// Block tag: a factor matrix `U⁽ⁿ⁾`.
pub const TAG_FACTOR: u8 = 0x01;
/// Block tag: a chunk of the core tensor (a run of last-mode slabs).
pub const TAG_CORE_CHUNK: u8 = 0x02;
/// Block tag: end marker carrying the total core element count.
pub const TAG_END: u8 = 0xFF;

/// Free-form provenance recorded in the header.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TkrMetadata {
    /// Dataset label (e.g. `"SP"`), empty if unknown.
    pub dataset: String,
    /// Human-readable label per mode (may be empty).
    pub mode_labels: Vec<String>,
    /// Per-species normalization statistics (Sec. VII-A), if the data was
    /// normalized before compression, so an analyst can undo the
    /// centering/scaling directly from the artifact. The on-disk schema is
    /// fixed by this module (mode, count, means, stds), independent of the
    /// in-memory type.
    pub normalization: Option<Normalization>,
}

impl TkrMetadata {
    /// Captures the provenance of a generated surrogate dataset.
    pub fn for_dataset(ds: &GeneratedDataset) -> Self {
        TkrMetadata {
            dataset: ds.preset.name().to_string(),
            mode_labels: ds.mode_labels.clone(),
            normalization: Some(ds.normalization.clone()),
        }
    }

    /// Validates this metadata against a tensor order, with the same rules
    /// the header serializer enforces — so callers can reject a malformed
    /// request *before* any file is created or any kernel runs.
    pub fn validate(&self, ndims: usize) -> Result<(), crate::error::FormatError> {
        use crate::error::FormatError;
        if !self.mode_labels.is_empty() && self.mode_labels.len() != ndims {
            return Err(FormatError::Invalid(format!(
                "{} mode labels for a {}-mode tensor (must be absent or one per mode)",
                self.mode_labels.len(),
                ndims
            )));
        }
        if let Some(n) = &self.normalization {
            if n.means.len() != n.stds.len() {
                return Err(FormatError::Invalid(format!(
                    "normalization has {} means but {} stds",
                    n.means.len(),
                    n.stds.len()
                )));
            }
            if n.mode >= ndims || n.means.len() > MAX_NORM_SLICES {
                return Err(FormatError::Invalid(format!(
                    "normalization mode {} / {} slices invalid for a {}-mode tensor",
                    n.mode,
                    n.means.len(),
                    ndims
                )));
            }
        }
        Ok(())
    }
}

/// The parsed fixed header of a `.tkr` file.
#[derive(Debug, Clone, PartialEq)]
pub struct TkrHeader {
    /// Original tensor dimensions `I_1, …, I_N`.
    pub dims: Vec<usize>,
    /// Core dimensions `R_1, …, R_N`.
    pub ranks: Vec<usize>,
    /// The ε tolerance the decomposition was computed with (0 if rank-driven).
    pub eps: f64,
    /// Codec used for every factor and core block.
    pub codec: Codec,
    /// Relative reconstruction error added by the codec (first-order bound;
    /// 0 until the writer's `finish()` patches it).
    pub quant_error_bound: f64,
    /// Provenance metadata.
    pub meta: TkrMetadata,
}

impl TkrHeader {
    /// Total declared error budget of the artifact: the decomposition ε plus
    /// the codec's quantization bound.
    pub fn error_budget(&self) -> f64 {
        self.eps + self.quant_error_bound
    }

    /// Number of modes.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Serializes the header (with `quant_error_bound` as currently set).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        assert_eq!(
            self.dims.len(),
            self.ranks.len(),
            "TkrHeader: dims/ranks arity mismatch"
        );
        if self.dims.is_empty() || self.dims.len() > MAX_NDIMS {
            return Err(invalid(&format!(
                "tensor order {} outside 1..={MAX_NDIMS}",
                self.dims.len()
            )));
        }
        if !self.meta.mode_labels.is_empty() && self.meta.mode_labels.len() != self.dims.len() {
            return Err(invalid(&format!(
                "{} mode labels for a {}-mode tensor (must be absent or one per mode)",
                self.meta.mode_labels.len(),
                self.dims.len()
            )));
        }
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&[self.codec.id()])?;
        w.write_all(&[u8::from(self.meta.normalization.is_some())])?;
        write_u32(w, self.dims.len() as u32)?;
        write_u32(w, 0)?; // reserved
        w.write_all(&self.eps.to_le_bytes())?;
        w.write_all(&self.quant_error_bound.to_le_bytes())?;
        for (&d, &r) in self.dims.iter().zip(self.ranks.iter()) {
            write_u64(w, d as u64)?;
            write_u64(w, r as u64)?;
        }
        write_string(w, &self.meta.dataset)?;
        write_u32(w, self.meta.mode_labels.len() as u32)?;
        for label in &self.meta.mode_labels {
            write_string(w, label)?;
        }
        if let Some(n) = &self.meta.normalization {
            assert_eq!(
                n.means.len(),
                n.stds.len(),
                "TkrHeader: normalization means/stds length mismatch"
            );
            // Mirror of the read-side guard (see read_from).
            if n.mode >= self.dims.len() || n.means.len() > MAX_NORM_SLICES {
                return Err(invalid(&format!(
                    "normalization mode {} / {} slices invalid for a {}-mode tensor",
                    n.mode,
                    n.means.len(),
                    self.dims.len()
                )));
            }
            write_u32(w, n.mode as u32)?;
            write_u32(w, n.means.len() as u32)?;
            for &m in &n.means {
                w.write_all(&m.to_le_bytes())?;
            }
            for &s in &n.stds {
                w.write_all(&s.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Parses a header, validating magic, version, and codec.
    pub fn read_from(r: &mut impl Read) -> io::Result<TkrHeader> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(invalid("not a .tkr file (bad magic)"));
        }
        let mut v = [0u8; 2];
        r.read_exact(&mut v)?;
        let version = u16::from_le_bytes(v);
        if version != VERSION {
            return Err(invalid(&format!(
                "unsupported .tkr version {version} (reader supports {VERSION})"
            )));
        }
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        let codec = Codec::from_id(b[0])?;
        r.read_exact(&mut b)?;
        let has_norm = match b[0] {
            0 => false,
            1 => true,
            x => return Err(invalid(&format!("bad normalization flag {x}"))),
        };
        let ndims = read_u32(r)? as usize;
        if ndims == 0 || ndims > MAX_NDIMS {
            return Err(invalid(&format!(
                "tensor order {ndims} outside 1..={MAX_NDIMS}"
            )));
        }
        let _reserved = read_u32(r)?;
        let eps = read_f64(r)?;
        let quant_error_bound = read_f64(r)?;
        let mut dims = Vec::with_capacity(ndims);
        let mut ranks = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            dims.push(read_u64(r)? as usize);
            ranks.push(read_u64(r)? as usize);
        }
        let mut core_elems: u64 = 1;
        for (n, (&d, &rk)) in dims.iter().zip(ranks.iter()).enumerate() {
            if d == 0 || rk == 0 || rk > d {
                return Err(invalid(&format!(
                    "mode {n}: invalid dim {d} / rank {rk} pair"
                )));
            }
            // Checked: a corrupt header must not overflow the core size the
            // reader allocates from, nor declare an absurd allocation.
            core_elems = core_elems
                .checked_mul(rk as u64)
                .filter(|&c| c <= MAX_CORE_ELEMS)
                .ok_or_else(|| invalid("declared core size overflows the reader's limit"))?;
        }
        let dataset = read_string(r)?;
        let nlabels = read_u32(r)? as usize;
        if nlabels != 0 && nlabels != ndims {
            return Err(invalid(&format!(
                "{nlabels} mode labels for a {ndims}-mode tensor"
            )));
        }
        let mut mode_labels = Vec::with_capacity(nlabels);
        for _ in 0..nlabels {
            mode_labels.push(read_string(r)?);
        }
        let normalization = if has_norm {
            let mode = read_u32(r)? as usize;
            let count = read_u32(r)? as usize;
            if mode >= ndims || count > MAX_NORM_SLICES {
                return Err(invalid("unreasonable normalization statistics"));
            }
            let mut means = Vec::with_capacity(count);
            for _ in 0..count {
                means.push(read_f64(r)?);
            }
            let mut stds = Vec::with_capacity(count);
            for _ in 0..count {
                stds.push(read_f64(r)?);
            }
            Some(Normalization { mode, means, stds })
        } else {
            None
        };
        Ok(TkrHeader {
            dims,
            ranks,
            eps,
            codec,
            quant_error_bound,
            meta: TkrMetadata {
                dataset,
                mode_labels,
                normalization,
            },
        })
    }
}

/// Builds an `InvalidData` IO error (the format-violation error kind).
pub fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

pub(crate) fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn write_string(w: &mut impl Write, s: &str) -> io::Result<()> {
    // Mirror of the read-side guard: never produce a file our own reader
    // refuses to open.
    if s.len() > MAX_STRING_LEN {
        return Err(invalid(&format!(
            "header string of {} bytes exceeds the {MAX_STRING_LEN}-byte limit",
            s.len()
        )));
    }
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn read_string(r: &mut impl Read) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > MAX_STRING_LEN {
        return Err(invalid("unreasonable string length in header"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| invalid("header string is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_header() -> TkrHeader {
        TkrHeader {
            dims: vec![48, 48, 16, 40],
            ranks: vec![17, 17, 5, 10],
            eps: 1e-3,
            codec: Codec::Q16,
            quant_error_bound: 2.5e-5,
            meta: TkrMetadata {
                dataset: "HCCI".to_string(),
                mode_labels: vec![
                    "Spatial 1".into(),
                    "Spatial 2".into(),
                    "Species".into(),
                    "Time".into(),
                ],
                normalization: Some(Normalization {
                    mode: 2,
                    means: vec![0.1, -0.2, 0.3],
                    stds: vec![1.0, 2.0, 0.5],
                }),
            },
        }
    }

    #[test]
    fn header_round_trip() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        let back = TkrHeader::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, h);
        assert!((back.error_budget() - (1e-3 + 2.5e-5)).abs() < 1e-18);
    }

    #[test]
    fn header_without_normalization() {
        let mut h = sample_header();
        h.meta.normalization = None;
        h.meta.dataset = String::new();
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        let back = TkrHeader::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        sample_header().write_to(&mut buf).unwrap();
        buf[0] = b'X';
        let err = TkrHeader::read_from(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut buf = Vec::new();
        sample_header().write_to(&mut buf).unwrap();
        buf[4] = 99;
        assert!(TkrHeader::read_from(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn rank_exceeding_dim_is_rejected() {
        let mut h = sample_header();
        h.ranks[0] = h.dims[0] + 1;
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        assert!(TkrHeader::read_from(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn quant_bound_offset_matches_layout() {
        // The writer patches the bound in place at finish(); the constant must
        // point at the field the reader parses.
        let mut h = sample_header();
        h.quant_error_bound = 0.0;
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        let patched = 7.5e-6f64;
        buf[QUANT_BOUND_OFFSET as usize..QUANT_BOUND_OFFSET as usize + 8]
            .copy_from_slice(&patched.to_le_bytes());
        let back = TkrHeader::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back.quant_error_bound, patched);
    }

    #[test]
    fn oversized_header_fields_are_rejected_at_write_time() {
        // A label too large for the reader must fail when writing, not
        // produce an artifact our own reader refuses to open.
        let mut h = sample_header();
        h.meta.dataset = "x".repeat((1 << 20) + 1);
        let mut buf = Vec::new();
        assert!(h.write_to(&mut buf).is_err());

        let mut h = sample_header();
        h.dims = vec![2; MAX_NDIMS + 1];
        h.ranks = vec![1; MAX_NDIMS + 1];
        let mut buf = Vec::new();
        assert!(h.write_to(&mut buf).is_err());
    }

    #[test]
    fn out_of_range_normalization_mode_is_rejected_at_write_time() {
        let mut h = sample_header();
        h.meta.normalization.as_mut().unwrap().mode = h.dims.len();
        let mut buf = Vec::new();
        assert!(h.write_to(&mut buf).is_err());
    }

    #[test]
    fn absurd_declared_core_size_is_rejected() {
        // ranks whose product overflows u64 pass the per-mode rk <= d check
        // but must still be rejected, not wrapped into a tiny allocation.
        let h = sample_header();
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        // Patch every dim/rank pair (starting at offset 32) to 2^32.
        let big = (1u64 << 32).to_le_bytes();
        for n in 0..h.dims.len() {
            let off = 32 + 16 * n;
            buf[off..off + 8].copy_from_slice(&big);
            buf[off + 8..off + 16].copy_from_slice(&big);
        }
        let err = TkrHeader::read_from(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn huge_declared_ndims_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        sample_header().write_to(&mut buf).unwrap();
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = TkrHeader::read_from(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
