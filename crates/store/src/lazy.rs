//! The lazy, chunk-cached artifact reader.
//!
//! [`crate::TkrArtifact::open`] decodes the whole core up front — fine when
//! the core fits comfortably in memory, a wall when it does not (the ROADMAP
//! open item this module resolves). [`TkrReader`] keeps the core **on
//! disk**: `open` makes one scan pass that parses the header, decodes the
//! (small) factor matrices, and builds a *chunk directory* — the file offset
//! and core range of every `TAG_CORE_CHUNK` block — without reading any
//! core payload. Queries then pull chunks on demand through a bounded LRU
//! cache; cache misses within one wave are codec-decoded in parallel on the
//! reader's `ExecContext`.
//!
//! Caching always goes through a [`crate::shared::CacheSession`]:
//! [`TkrReader::open_with`] gives the reader a private single-stripe
//! [`crate::shared::SharedChunkCache`] (exactly the historical per-reader
//! LRU), while [`TkrReader::open_shared`] registers the reader in a cache
//! shared with other sessions, so many readers of one artifact decode each
//! chunk once and stay within one global residency budget — the service
//! posture `tucker-serve` builds on.
//!
//! Partial reconstruction never assembles the core: each chunk is a run of
//! whole last-mode core slabs, so a window query contracts chunk `c` with
//! the non-last sub-factors and accumulates its contribution through the
//! last-mode factor columns `[start_c, start_c + len_c)` — splitting the
//! final TTM's contraction dimension at chunk boundaries. Because the GEMM
//! kernel accumulates each output element as one running sum in ascending
//! contraction order, the result is **byte-identical** to the eager reader
//! for every chunk layout and cache size (pinned in
//! `tests/store_roundtrip.rs`); peak memory is `O(decoded chunks in cache +
//! output + one chunk-sized intermediate)`.

use crate::error::{FormatError, StoreError};
use crate::format::{invalid, read_u32, read_u64, TkrHeader, TAG_CORE_CHUNK, TAG_END, TAG_FACTOR};
use crate::query::{validate_point, validate_ranges, validate_slice, validate_spec, QueryError};
use crate::shared::{CacheSession, SharedChunkCache};
use crate::writer::codec_wave_chunks;
use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::{Arc, Mutex};
use tucker_exec::ExecContext;
use tucker_linalg::gemm::{gemm_slices, Transpose};
use tucker_linalg::Matrix;
use tucker_tensor::{ttm_ctx, DenseTensor, SubtensorSpec, TtmTranspose};

/// Default number of decoded chunks the cache keeps resident.
pub const DEFAULT_CACHE_CHUNKS: usize = 16;

/// One entry of the chunk directory: where a core chunk lives in the file
/// and which core elements it decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChunkEntry {
    /// First core element (linear, natural order) of the chunk.
    pub start: usize,
    /// Number of core elements in the chunk.
    pub len: usize,
    /// File offset of the chunk's codec payload.
    pub offset: u64,
}

/// A scanned artifact: everything `open` learns in one framing pass —
/// header, decoded factors, chunk directory — plus the still-open file.
/// Both readers are built from this; the eager one just decodes every
/// chunk immediately.
pub(crate) struct ScannedArtifact {
    pub header: TkrHeader,
    pub factors: Vec<Matrix>,
    pub chunks: Vec<ChunkEntry>,
    pub core_total: usize,
    pub file: BufReader<File>,
    pub file_bytes: u64,
}

/// Parses the framing of a `.tkr` file: validates the header and every
/// block's bookkeeping exactly like the historical eager reader, decodes
/// factor blocks, and records — but does not read — core chunk payloads.
pub(crate) fn scan_artifact(path: impl AsRef<Path>) -> io::Result<ScannedArtifact> {
    let file = File::open(&path)?;
    let file_bytes = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let header = TkrHeader::read_from(&mut r)?;
    let ndims = header.ndims();
    let codec = header.codec;

    // A block's payload can never hold more values than the file has bytes
    // per value, so bound every declared allocation by the file size — a
    // corrupt header must fail here, not abort on OOM.
    let max_vals = (file_bytes / codec.bytes_per_value() as u64) as usize;
    let core_total: usize = header
        .ranks
        .iter()
        .try_fold(1usize, |acc, &rk| acc.checked_mul(rk))
        .filter(|&c| c <= max_vals)
        .ok_or_else(|| invalid("declared core is larger than the file itself"))?;
    for (n, (&d, &rk)) in header.dims.iter().zip(header.ranks.iter()).enumerate() {
        if d.checked_mul(rk).is_none_or(|v| v > max_vals) {
            return Err(invalid(&format!(
                "declared factor {n} is larger than the file itself"
            )));
        }
    }

    let mut factors: Vec<Option<Matrix>> = vec![None; ndims];
    let mut chunks: Vec<ChunkEntry> = Vec::new();
    let mut core_filled = 0usize;
    let mut saw_end = false;
    // The format contract (and the writer's assertions): every core chunk is
    // a non-empty run of whole last-mode slabs. Enforce it here so the lazy
    // reader's slab-shaped chunk math can never be handed a misaligned
    // chunk at query time.
    let slab_stride: usize = header.ranks[..ndims - 1].iter().product::<usize>().max(1);

    while !saw_end {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                invalid("truncated artifact: missing end marker")
            } else {
                e
            }
        })?;
        match tag[0] {
            TAG_FACTOR => {
                let mode = read_u32(&mut r)? as usize;
                let rows = read_u64(&mut r)? as usize;
                let cols = read_u64(&mut r)? as usize;
                if mode >= ndims {
                    return Err(invalid(&format!("factor block for mode {mode} of {ndims}")));
                }
                if factors[mode].is_some() {
                    return Err(invalid(&format!("duplicate factor block for mode {mode}")));
                }
                if rows != header.dims[mode] || cols != header.ranks[mode] {
                    return Err(invalid(&format!(
                        "factor {mode} is {rows}×{cols}, header says {}×{}",
                        header.dims[mode], header.ranks[mode]
                    )));
                }
                let mut u = Matrix::zeros(rows, cols);
                for j in 0..cols {
                    let col = codec.decode_block(&mut r, rows)?;
                    for (i, &v) in col.iter().enumerate() {
                        u.set(i, j, v);
                    }
                }
                factors[mode] = Some(u);
            }
            TAG_CORE_CHUNK => {
                let start = read_u64(&mut r)? as usize;
                let len = read_u64(&mut r)? as usize;
                if start != core_filled {
                    return Err(invalid(&format!(
                        "core chunk at {start}, expected next offset {core_filled}"
                    )));
                }
                // Overflow-safe: start == core_filled <= core_total here.
                if len > core_total - start {
                    return Err(invalid("core chunk overruns the core"));
                }
                if len == 0 || len % slab_stride != 0 {
                    return Err(invalid(&format!(
                        "core chunk of {len} elements is not a whole number of \
                         last-mode slabs (stride {slab_stride})"
                    )));
                }
                let payload = codec.block_bytes(len) as u64;
                let offset = r.stream_position()?;
                // The scan skips the payload, so verify now that it is
                // actually present — a file truncated mid-chunk must fail at
                // open, not at first query.
                if offset
                    .checked_add(payload)
                    .is_none_or(|end| end > file_bytes)
                {
                    return Err(invalid("truncated artifact: core chunk payload cut short"));
                }
                r.seek_relative(payload as i64)?;
                chunks.push(ChunkEntry { start, len, offset });
                core_filled += len;
            }
            TAG_END => {
                let declared = read_u64(&mut r)? as usize;
                if declared != core_total {
                    return Err(invalid(&format!(
                        "end marker declares {declared} core elements, header implies {core_total}"
                    )));
                }
                saw_end = true;
            }
            t => return Err(invalid(&format!("unknown block tag {t:#x}"))),
        }
    }
    if core_filled != core_total {
        return Err(invalid(&format!(
            "core incomplete: {core_filled} of {core_total} elements"
        )));
    }
    let factors: Vec<Matrix> = factors
        .into_iter()
        .enumerate()
        .map(|(n, f)| f.ok_or_else(|| invalid(&format!("missing factor block for mode {n}"))))
        .collect::<io::Result<_>>()?;
    Ok(ScannedArtifact {
        header,
        factors,
        chunks,
        core_total,
        file: r,
        file_bytes,
    })
}

/// A lazily decoding `.tkr` reader: chunk directory built at open, chunks
/// decoded on demand behind a bounded LRU cache (private by default, shared
/// across readers via [`TkrReader::open_shared`]).
///
/// All queries are `&self` (internally synchronized) and return the same
/// bytes the eager [`crate::TkrArtifact`] would, while decoding only the
/// chunks a query touches and keeping at most the cache capacity resident.
pub struct TkrReader {
    header: TkrHeader,
    factors: Vec<Matrix>,
    chunks: Vec<ChunkEntry>,
    core_total: usize,
    file_bytes: u64,
    io: Mutex<BufReader<File>>,
    cache: CacheSession,
    ctx: ExecContext,
}

impl TkrReader {
    /// Opens an artifact lazily with the default cache size, decoding on the
    /// global pool. One scan pass validates the complete framing (identical
    /// checks to the eager reader); no core payload is read.
    pub fn open(path: impl AsRef<Path>) -> io::Result<TkrReader> {
        TkrReader::open_with(path, DEFAULT_CACHE_CHUNKS, ExecContext::global())
    }

    /// [`TkrReader::open`] with an explicit cache capacity (in chunks) and
    /// execution context for parallel decode.
    ///
    /// For backwards compatibility this surface **clamps** `cache_chunks` to
    /// at least 1 — `0` is not "unbounded", it is a single-chunk cache. Use
    /// [`TkrReader::try_open_with`] to get a typed error for `0` instead of
    /// the clamp.
    pub fn open_with(
        path: impl AsRef<Path>,
        cache_chunks: usize,
        ctx: &ExecContext,
    ) -> io::Result<TkrReader> {
        let key = path.as_ref().display().to_string();
        let cache = SharedChunkCache::new(cache_chunks.max(1), 1).register(&key);
        TkrReader::open_session(path, cache, ctx)
    }

    /// [`TkrReader::open_with`] on the fallible surface: a cache capacity of
    /// `0` chunks is rejected with a typed [`StoreError`] (the historical
    /// surface silently clamps it to 1), and read-side parse failures come
    /// back as [`FormatError::Invalid`] instead of a bare
    /// `io::ErrorKind::InvalidData`.
    pub fn try_open_with(
        path: impl AsRef<Path>,
        cache_chunks: usize,
        ctx: &ExecContext,
    ) -> Result<TkrReader, StoreError> {
        if cache_chunks == 0 {
            return Err(StoreError::Format(FormatError::Invalid(
                "cache capacity of 0 chunks (a lazy reader needs at least 1 resident chunk)"
                    .to_string(),
            )));
        }
        TkrReader::open_with(path, cache_chunks, ctx).map_err(|e| {
            if e.kind() == io::ErrorKind::InvalidData {
                StoreError::Format(FormatError::Invalid(e.to_string()))
            } else {
                StoreError::Io(e)
            }
        })
    }

    /// Opens an artifact lazily with its chunk cache registered in `cache`
    /// under `key`: readers sharing one cache (under the same or different
    /// keys) share its global residency budget, and readers registered under
    /// the **same key** additionally share decoded chunks and aggregate
    /// their hit/decode/resident accounting. All sessions of a key must name
    /// the same artifact bytes (see [`SharedChunkCache`]).
    pub fn open_shared(
        path: impl AsRef<Path>,
        key: &str,
        cache: &SharedChunkCache,
        ctx: &ExecContext,
    ) -> io::Result<TkrReader> {
        TkrReader::open_session(path, cache.register(key), ctx)
    }

    fn open_session(
        path: impl AsRef<Path>,
        cache: CacheSession,
        ctx: &ExecContext,
    ) -> io::Result<TkrReader> {
        let scanned = scan_artifact(path)?;
        Ok(TkrReader {
            header: scanned.header,
            factors: scanned.factors,
            chunks: scanned.chunks,
            core_total: scanned.core_total,
            file_bytes: scanned.file_bytes,
            io: Mutex::new(scanned.file),
            cache,
            ctx: ctx.clone(),
        })
    }

    /// The parsed header (shape, ranks, ε, codec, quantization bound,
    /// metadata).
    pub fn header(&self) -> &TkrHeader {
        &self.header
    }

    /// The decoded factor matrix of `mode`.
    pub fn factor(&self, mode: usize) -> &Matrix {
        &self.factors[mode]
    }

    /// Number of core chunks in the artifact.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Cumulative number of chunk decodes performed — the "never decodes
    /// more than the touched chunks" accounting the tests pin (a repeat
    /// query over cached chunks adds nothing here). On a reader opened via
    /// [`TkrReader::open_shared`] this aggregates over every session of the
    /// artifact's cache key, not just this reader.
    pub fn decoded_chunks(&self) -> usize {
        self.cache.decoded_chunks()
    }

    /// Cumulative number of cache hits (aggregated per artifact key on a
    /// shared cache, like [`TkrReader::decoded_chunks`]).
    pub fn cache_hits(&self) -> usize {
        self.cache.cache_hits()
    }

    /// Number of this artifact's decoded chunks currently resident (≤ the
    /// cache capacity).
    pub fn resident_chunks(&self) -> usize {
        self.cache.resident_chunks()
    }

    /// The cache session this reader decodes through (per-artifact stats,
    /// the pool's capacity).
    pub fn cache_session(&self) -> &CacheSession {
        &self.cache
    }

    /// Total declared relative error budget: decomposition ε plus the
    /// codec's quantization bound.
    pub fn error_budget(&self) -> f64 {
        self.header.error_budget()
    }

    /// Physical compression ratio: original field as raw `f64` bytes over
    /// the artifact's file size.
    pub fn compression_ratio(&self) -> f64 {
        let original = 8.0 * self.header.dims.iter().map(|&d| d as f64).product::<f64>();
        original / self.file_bytes as f64
    }

    /// The artifact's size on disk in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Streams every chunk, in order, through `f`. Misses are fetched in
    /// waves — payloads read sequentially, then codec-decoded in parallel on
    /// the reader's context — so at most `min(wave, capacity)` chunks are
    /// decoded per batch and the cache bound is never exceeded by more than
    /// the wave in flight.
    fn for_each_chunk(&self, mut f: impl FnMut(&ChunkEntry, &[f64])) -> Result<(), QueryError> {
        let wave_len = codec_wave_chunks(&self.ctx)
            .min(self.cache.capacity())
            .max(1);
        let codec = self.header.codec;
        let mut base = 0usize;
        while base < self.chunks.len() {
            let wave = &self.chunks[base..(base + wave_len).min(self.chunks.len())];

            // Probe the cache for the whole wave (hits counted per artifact
            // by the session).
            let mut resolved: Vec<Option<Arc<Vec<f64>>>> = wave
                .iter()
                .enumerate()
                .map(|(i, _)| self.cache.get(base + i))
                .collect();

            // Read the payloads of every miss (sequential IO, ascending).
            let mut misses: Vec<(usize, Vec<u8>, Vec<f64>)> = Vec::new();
            {
                let mut io = self.io.lock().unwrap_or_else(|e| e.into_inner());
                for (i, slot) in resolved.iter().enumerate() {
                    if slot.is_none() {
                        let entry = &wave[i];
                        let mut payload = vec![0u8; codec.block_bytes(entry.len)];
                        io.seek(SeekFrom::Start(entry.offset))?;
                        io.read_exact(&mut payload)?;
                        misses.push((i, payload, Vec::new()));
                    }
                }
            }

            // Decode the wave's misses in parallel: exactly-sized in-memory
            // payloads make the per-chunk decode infallible.
            if !misses.is_empty() {
                self.ctx.for_each_slot(&mut misses, |_, (i, payload, out)| {
                    let len = wave[*i].len;
                    *out = codec
                        .decode_block(&mut io::Cursor::new(&payload[..]), len)
                        .expect("in-memory decode of an exactly-sized payload cannot fail");
                });
                for (i, _, decoded) in misses {
                    let data = Arc::new(decoded);
                    self.cache.insert(base + i, Arc::clone(&data));
                    resolved[i] = Some(data);
                }
            }

            for (i, entry) in wave.iter().enumerate() {
                let data = resolved[i].as_ref().expect("every wave slot resolved");
                f(entry, data);
            }
            base += wave.len();
        }
        Ok(())
    }

    /// Reconstructs the window given by per-mode `(start, len)` ranges —
    /// byte-identical to [`crate::TkrArtifact::reconstruct_range`] — while
    /// decoding the core chunk by chunk.
    pub fn reconstruct_range(&self, ranges: &[(usize, usize)]) -> Result<DenseTensor, QueryError> {
        validate_ranges(ranges, &self.header.dims)?;
        self.reconstruct_subtensor(&SubtensorSpec::from_ranges(ranges))
    }

    /// Reconstructs an arbitrary (possibly non-contiguous) subtensor,
    /// chunk-streamed.
    pub fn reconstruct_subtensor(&self, spec: &SubtensorSpec) -> Result<DenseTensor, QueryError> {
        validate_spec(spec, &self.header.dims)?;
        let ndims = self.header.ndims();
        let ranks = &self.header.ranks;
        let last = ndims - 1;
        let sub_factors: Vec<Matrix> = self
            .factors
            .iter()
            .enumerate()
            .map(|(n, u)| u.select_rows(spec.mode_indices(n)))
            .collect();
        let sub_dims = spec.sub_dims();
        let mut out = DenseTensor::zeros(&sub_dims);
        // The mode-N unfolding of the output: row-major d_last × left.
        let left: usize = sub_dims[..last].iter().product();
        let d_last = sub_dims[last];
        let r_last = ranks[last];
        let core_stride: usize = ranks[..last].iter().product::<usize>().max(1);
        let u_last = &sub_factors[last];
        let chunk_dims = |wc: usize| -> Vec<usize> {
            let mut d = ranks.clone();
            d[last] = wc;
            d
        };

        self.for_each_chunk(|entry, data| {
            let wc = entry.len / core_stride;
            let s0 = entry.start / core_stride;
            // Contract the chunk with the non-last sub-factors: bitwise the
            // last-mode slab [s0, s0+wc) of the full intermediate.
            let mut cur = DenseTensor::from_vec(&chunk_dims(wc), data.to_vec());
            for (n, u) in sub_factors[..last].iter().enumerate() {
                cur = ttm_ctx(&self.ctx, &cur, u, n, TtmTranspose::NoTranspose);
            }
            if ndims == 1 {
                // Degenerate 1-way artifact: mirror the eager kernel's GEMM
                // orientation (chunk on the left, factor transposed) so even
                // exact-zero handling matches.
                gemm_slices(
                    Transpose::No,
                    Transpose::Yes,
                    1.0,
                    cur.as_slice(),
                    1,
                    wc,
                    wc,
                    &u_last.as_slice()[s0..],
                    d_last,
                    wc,
                    r_last,
                    1.0,
                    out.as_mut_slice(),
                    d_last,
                );
            } else {
                // out(d_last × left) += U_last[:, s0..s0+wc] · cur(wc × left):
                // the last TTM's contraction dimension split at the chunk
                // boundary — the per-element running sum in `gemm_slices`
                // makes this bit-identical to the unsplit contraction.
                gemm_slices(
                    Transpose::No,
                    Transpose::No,
                    1.0,
                    &u_last.as_slice()[s0..],
                    d_last,
                    wc,
                    r_last,
                    cur.as_slice(),
                    wc,
                    left,
                    left,
                    1.0,
                    out.as_mut_slice(),
                    left,
                );
            }
        })?;
        Ok(out)
    }

    /// Reconstructs the single mode-`mode` slice at `idx`.
    pub fn reconstruct_slice(&self, mode: usize, idx: usize) -> Result<DenseTensor, QueryError> {
        validate_slice(mode, idx, &self.header.dims)?;
        let spec = SubtensorSpec::all(&self.header.dims).restrict_mode(mode, vec![idx]);
        self.reconstruct_subtensor(&spec)
    }

    /// Reconstructs the full field, chunk-streamed (byte-identical to the
    /// eager reader; only sensible when the *output* fits in memory).
    pub fn reconstruct(&self) -> Result<DenseTensor, QueryError> {
        self.reconstruct_subtensor(&SubtensorSpec::all(&self.header.dims))
    }

    /// Evaluates one element in `O(N·∏R_n)`, decoding only chunks not
    /// already cached — bit-identical to [`crate::TkrArtifact::element`]
    /// (same storage-order walk, continued across chunk boundaries).
    pub fn element(&self, idx: &[usize]) -> Result<f64, QueryError> {
        Ok(self.elements(&[idx])?[0])
    }

    /// Batched element queries: every chunk is decoded at most once for the
    /// whole batch, and each point's accumulation is bit-identical to
    /// [`TkrReader::element`].
    pub fn elements(&self, points: &[&[usize]]) -> Result<Vec<f64>, QueryError> {
        for p in points {
            validate_point(p, &self.header.dims)?;
        }
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let ranks = self.header.ranks.clone();
        let ndims = ranks.len();
        let mut acc = vec![0.0f64; points.len()];
        let mut r_idx = vec![0usize; ndims];
        self.for_each_chunk(|_, data| {
            for &g in data {
                for (a, point) in acc.iter_mut().zip(points.iter()) {
                    let mut w = g;
                    for (n, &r) in r_idx.iter().enumerate() {
                        w *= self.factors[n].get(point[n], r);
                    }
                    *a += w;
                }
                // Advance the core multi-index, first mode fastest (storage
                // order), continuing seamlessly across chunk boundaries.
                for (k, i) in r_idx.iter_mut().enumerate() {
                    *i += 1;
                    if *i < ranks[k] {
                        break;
                    }
                    *i = 0;
                }
            }
        })?;
        Ok(acc)
    }

    /// Materializes the whole decomposition — decodes every chunk once and
    /// hands back an eager [`crate::TkrArtifact`]-equivalent
    /// `TuckerTensor`. Escape hatch for callers that decide the core fits
    /// after all.
    pub fn into_tucker(self) -> Result<tucker_core::TuckerTensor, QueryError> {
        let mut core_data = vec![0.0f64; self.core_total];
        self.for_each_chunk(|entry, data| {
            core_data[entry.start..entry.start + entry.len].copy_from_slice(data);
        })?;
        let core = DenseTensor::from_vec(&self.header.ranks, core_data);
        Ok(tucker_core::TuckerTensor::new(core, self.factors))
    }
}

impl std::fmt::Debug for TkrReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TkrReader")
            .field("dims", &self.header.dims)
            .field("ranks", &self.header.ranks)
            .field("chunks", &self.chunks.len())
            .field("decoded", &self.decoded_chunks())
            .finish()
    }
}
