//! A lock-striped chunk cache shared across reader sessions.
//!
//! Historically every [`crate::TkrReader`] owned a private LRU of decoded
//! core chunks, so two sessions on the same artifact each decoded (and each
//! kept resident) their own copies — exactly wrong for a service where many
//! concurrent connections query a handful of hot artifacts. This module
//! lifts the cache out of the reader:
//!
//! * [`SharedChunkCache`] — one process-wide (or per-server) pool of decoded
//!   chunks with a **global** capacity budget, split over lock stripes so
//!   concurrent sessions contend on `1/stripes` of the key space instead of
//!   one mutex.
//! * [`CacheSession`] — a cheap handle binding one *artifact key* to the
//!   shared pool. Every reader opened with
//!   [`crate::TkrReader::open_shared`] holds one; readers registered under
//!   the same key share decoded chunks and aggregate their
//!   hit/decode/resident accounting per artifact.
//!
//! The private reader cache is the degenerate case: [`crate::TkrReader::open_with`]
//! simply creates a single-stripe `SharedChunkCache` nobody else can see, so
//! one implementation serves both shapes and the accounting is identical by
//! construction (pinned by the shared-cache tests in `crate::tests`).
//!
//! # Contracts
//!
//! * **Keying** — a key identifies the artifact *bytes*: all sessions
//!   registered under one key must come from the same file. (The server's
//!   registry maps each artifact name to one path, which guarantees this.)
//! * **Global budget** — the total number of resident decoded chunks never
//!   exceeds the construction-time capacity. The budget is distributed over
//!   the stripes (stripe count is clamped to the capacity so every stripe
//!   owns at least one slot); chunks map to stripes round-robin
//!   (`chunk % stripes`), so a single artifact's chunks spread evenly.
//! * **Eviction** — LRU per stripe, ordered by a cache-global clock, with
//!   the evicted entry's artifact `resident` count decremented.
//! * **No cross-session blocking** — misses are *not* deduplicated across
//!   sessions: two sessions racing on the same cold chunk may both decode
//!   it (the results are identical; the second insert wins). This is a
//!   deliberate trade — a slow session can never stall another one behind
//!   an in-flight marker — and it only costs duplicate work under exact
//!   races, never under re-query of a warm cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tucker_obs::metrics::Counter;

/// Pool-wide aggregates in the global metrics registry (see `tucker-obs`).
/// The per-artifact [`ArtifactCacheStats`] slots remain the source of truth
/// for per-key accounting; these are the process-level roll-up the serve
/// exposition reports alongside them.
static CACHE_HITS: Counter = Counter::new("store.cache.hits");
static CACHE_DECODES: Counter = Counter::new("store.cache.decodes");
static CACHE_EVICTIONS: Counter = Counter::new("store.cache.evictions");

/// A point-in-time snapshot of one artifact's cache accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactCacheStats {
    /// Cumulative chunk decodes charged to this artifact (every insert is
    /// one decode; duplicate decodes under cross-session races count).
    pub decoded_chunks: usize,
    /// Cumulative cache hits across all sessions of this artifact.
    pub cache_hits: usize,
    /// Decoded chunks of this artifact currently resident.
    pub resident_chunks: usize,
}

/// Per-artifact accounting plus the identity that keys stripe entries.
struct ArtifactSlot {
    id: u64,
    key: String,
    decoded: AtomicUsize,
    hits: AtomicUsize,
    resident: AtomicUsize,
}

/// One stripe entry: LRU stamp, owning artifact, decoded values.
struct StripeEntry {
    stamp: u64,
    slot: Arc<ArtifactSlot>,
    data: Arc<Vec<f64>>,
}

/// One lock stripe: a bounded map from `(artifact id, chunk index)` to
/// decoded chunks.
struct Stripe {
    capacity: usize,
    entries: HashMap<(u64, usize), StripeEntry>,
}

impl Stripe {
    /// Evicts least-recently-used entries (an `O(len)` min-stamp scan, as in
    /// the historical private LRU) until the stripe budget holds.
    fn enforce_budget(&mut self) {
        while self.entries.len() > self.capacity {
            let Some(oldest) = self
                .entries
                .iter()
                .map(|(&k, e)| (e.stamp, k))
                .min()
                .map(|(_, k)| k)
            else {
                return;
            };
            if let Some(evicted) = self.entries.remove(&oldest) {
                evicted.slot.resident.fetch_sub(1, Ordering::Relaxed);
                CACHE_EVICTIONS.inc();
            }
        }
    }
}

struct CacheInner {
    stripes: Vec<Mutex<Stripe>>,
    capacity: usize,
    tick: AtomicU64,
    registry: Mutex<HashMap<String, Arc<ArtifactSlot>>>,
    next_id: AtomicU64,
}

/// A shared, bounded, lock-striped pool of decoded core chunks.
///
/// Cloning is cheap (an `Arc` bump); clones see the same pool. See the
/// module docs for the keying, budget, and eviction contracts.
#[derive(Clone)]
pub struct SharedChunkCache {
    inner: Arc<CacheInner>,
}

impl SharedChunkCache {
    /// Creates a pool holding at most `capacity_chunks` decoded chunks
    /// (clamped to at least 1) split over `stripes` lock stripes (clamped to
    /// `1..=capacity`, so every stripe owns at least one slot and the global
    /// budget is exact).
    pub fn new(capacity_chunks: usize, stripes: usize) -> SharedChunkCache {
        let capacity = capacity_chunks.max(1);
        let stripes = stripes.clamp(1, capacity);
        // Distribute the budget like `chunk_ranges`: earlier stripes absorb
        // the remainder, mirroring the round-robin chunk→stripe map so a
        // single artifact with `chunks <= capacity` always fits.
        let base = capacity / stripes;
        let rem = capacity % stripes;
        let stripes = (0..stripes)
            .map(|i| {
                Mutex::new(Stripe {
                    capacity: base + usize::from(i < rem),
                    entries: HashMap::new(),
                })
            })
            .collect();
        SharedChunkCache {
            inner: Arc::new(CacheInner {
                stripes,
                capacity,
                tick: AtomicU64::new(0),
                registry: Mutex::new(HashMap::new()),
                next_id: AtomicU64::new(0),
            }),
        }
    }

    /// Binds `key` to the pool and returns the session handle readers cache
    /// through. Registering the same key again returns a session sharing the
    /// first registration's entries and accounting.
    pub fn register(&self, key: &str) -> CacheSession {
        let mut registry = self
            .inner
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let slot = registry
            .entry(key.to_string())
            .or_insert_with(|| {
                Arc::new(ArtifactSlot {
                    id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
                    key: key.to_string(),
                    decoded: AtomicUsize::new(0),
                    hits: AtomicUsize::new(0),
                    resident: AtomicUsize::new(0),
                })
            })
            .clone();
        CacheSession {
            inner: Arc::clone(&self.inner),
            slot,
        }
    }

    /// The global capacity budget in chunks.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Total decoded chunks currently resident, across every artifact
    /// (always `<=` [`SharedChunkCache::capacity`]).
    pub fn resident_total(&self) -> usize {
        self.inner
            .stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// Accounting snapshot for one registered key, if present.
    pub fn artifact_stats(&self, key: &str) -> Option<ArtifactCacheStats> {
        let registry = self
            .inner
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        registry.get(key).map(|slot| snapshot(slot))
    }

    /// Accounting snapshots for every registered key, sorted by key.
    pub fn artifacts(&self) -> Vec<(String, ArtifactCacheStats)> {
        let registry = self
            .inner
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, ArtifactCacheStats)> = registry
            .values()
            .map(|slot| (slot.key.clone(), snapshot(slot)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl std::fmt::Debug for SharedChunkCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedChunkCache")
            .field("capacity", &self.capacity())
            .field("stripes", &self.inner.stripes.len())
            .field("resident", &self.resident_total())
            .finish()
    }
}

fn snapshot(slot: &ArtifactSlot) -> ArtifactCacheStats {
    ArtifactCacheStats {
        decoded_chunks: slot.decoded.load(Ordering::Relaxed),
        cache_hits: slot.hits.load(Ordering::Relaxed),
        resident_chunks: slot.resident.load(Ordering::Relaxed),
    }
}

/// One artifact's handle into a [`SharedChunkCache`]: probe and insert
/// decoded chunks, with per-artifact accounting updated on each operation.
///
/// Cloning shares the binding (same artifact, same pool).
#[derive(Clone)]
pub struct CacheSession {
    inner: Arc<CacheInner>,
    slot: Arc<ArtifactSlot>,
}

impl CacheSession {
    fn stripe(&self, chunk: usize) -> &Mutex<Stripe> {
        // Round-robin, artifact-independent: a single artifact's chunks
        // spread exactly evenly over the stripes (see module docs).
        &self.inner.stripes[chunk % self.inner.stripes.len()]
    }

    /// Probes chunk `chunk` of this session's artifact, refreshing its LRU
    /// stamp and counting a hit when present.
    pub fn get(&self, chunk: usize) -> Option<Arc<Vec<f64>>> {
        let stamp = self.inner.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut stripe = self.stripe(chunk).lock().unwrap_or_else(|e| e.into_inner());
        let entry = stripe.entries.get_mut(&(self.slot.id, chunk))?;
        entry.stamp = stamp;
        let data = Arc::clone(&entry.data);
        drop(stripe);
        self.slot.hits.fetch_add(1, Ordering::Relaxed);
        CACHE_HITS.inc();
        Some(data)
    }

    /// Inserts a freshly decoded chunk (counted against this artifact's
    /// `decoded_chunks`), evicting least-recently-used entries from the
    /// chunk's stripe until the budget holds again.
    pub fn insert(&self, chunk: usize, data: Arc<Vec<f64>>) {
        self.slot.decoded.fetch_add(1, Ordering::Relaxed);
        CACHE_DECODES.inc();
        let stamp = self.inner.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut stripe = self.stripe(chunk).lock().unwrap_or_else(|e| e.into_inner());
        let fresh = stripe
            .entries
            .insert(
                (self.slot.id, chunk),
                StripeEntry {
                    stamp,
                    slot: Arc::clone(&self.slot),
                    data,
                },
            )
            .is_none();
        if fresh {
            self.slot.resident.fetch_add(1, Ordering::Relaxed);
        }
        stripe.enforce_budget();
    }

    /// The pool's global capacity budget in chunks.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// The key this session was registered under.
    pub fn key(&self) -> &str {
        &self.slot.key
    }

    /// Cumulative chunk decodes charged to this session's artifact (all
    /// sessions of the key combined).
    pub fn decoded_chunks(&self) -> usize {
        self.slot.decoded.load(Ordering::Relaxed)
    }

    /// Cumulative cache hits of this session's artifact.
    pub fn cache_hits(&self) -> usize {
        self.slot.hits.load(Ordering::Relaxed)
    }

    /// Decoded chunks of this session's artifact currently resident.
    pub fn resident_chunks(&self) -> usize {
        self.slot.resident.load(Ordering::Relaxed)
    }

    /// Full accounting snapshot of this session's artifact.
    pub fn stats(&self) -> ArtifactCacheStats {
        snapshot(&self.slot)
    }
}

impl std::fmt::Debug for CacheSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheSession")
            .field("key", &self.slot.key)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(v: f64) -> Arc<Vec<f64>> {
        Arc::new(vec![v; 4])
    }

    #[test]
    fn single_stripe_behaves_like_the_old_private_lru() {
        let cache = SharedChunkCache::new(2, 1);
        let s = cache.register("a");
        s.insert(0, chunk(0.0));
        s.insert(1, chunk(1.0));
        assert_eq!(s.resident_chunks(), 2);
        // Touch 0 so 1 is the LRU victim.
        assert!(s.get(0).is_some());
        s.insert(2, chunk(2.0));
        assert_eq!(s.resident_chunks(), 2);
        assert!(s.get(1).is_none(), "LRU entry 1 should have been evicted");
        assert!(s.get(0).is_some() && s.get(2).is_some());
        assert_eq!(s.decoded_chunks(), 3);
        // Hits: the miss probe of 1 does not count, the other three do.
        assert_eq!(s.cache_hits(), 3);
    }

    #[test]
    fn same_key_shares_entries_distinct_keys_do_not() {
        let cache = SharedChunkCache::new(8, 2);
        let a1 = cache.register("a");
        let a2 = cache.register("a");
        let b = cache.register("b");
        a1.insert(3, chunk(3.0));
        assert!(a2.get(3).is_some(), "same key must share decoded chunks");
        assert!(b.get(3).is_none(), "distinct keys must not collide");
        assert_eq!(a1.stats(), a2.stats());
        assert_eq!(cache.artifact_stats("a").unwrap().resident_chunks, 1);
        assert_eq!(cache.artifact_stats("b").unwrap().resident_chunks, 0);
        assert!(cache.artifact_stats("c").is_none());
    }

    #[test]
    fn global_budget_holds_across_artifacts_and_stripes() {
        let cache = SharedChunkCache::new(5, 3);
        let a = cache.register("a");
        let b = cache.register("b");
        for i in 0..20 {
            a.insert(i, chunk(i as f64));
            b.insert(i, chunk(-(i as f64)));
        }
        assert!(cache.resident_total() <= cache.capacity());
        assert_eq!(
            a.resident_chunks() + b.resident_chunks(),
            cache.resident_total()
        );
    }

    #[test]
    fn stripe_count_is_clamped_to_capacity() {
        // capacity 2 with 8 requested stripes: only 2 stripes, 1 slot each —
        // the budget stays exactly 2, not ceil-inflated to 8.
        let cache = SharedChunkCache::new(2, 8);
        let s = cache.register("a");
        for i in 0..10 {
            s.insert(i, chunk(i as f64));
        }
        assert!(cache.resident_total() <= 2);
    }

    #[test]
    fn an_artifact_no_larger_than_the_budget_fits_entirely() {
        // Round-robin chunk→stripe mapping + remainder-first budget split:
        // chunks 0..capacity land one per slot, so nothing is evicted.
        for (capacity, stripes) in [(7usize, 3usize), (8, 8), (5, 2), (9, 4)] {
            let cache = SharedChunkCache::new(capacity, stripes);
            let s = cache.register("a");
            for i in 0..capacity {
                s.insert(i, chunk(i as f64));
            }
            assert_eq!(s.resident_chunks(), capacity, "{capacity}/{stripes}");
            for i in 0..capacity {
                assert!(
                    s.get(i).is_some(),
                    "chunk {i} evicted at {capacity}/{stripes}"
                );
            }
        }
    }

    #[test]
    fn concurrent_sessions_stay_within_budget() {
        let cache = SharedChunkCache::new(6, 3);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let session = cache.register(if t % 2 == 0 { "x" } else { "y" });
                scope.spawn(move || {
                    for round in 0..50 {
                        let i = (t * 7 + round * 3) % 24;
                        if session.get(i).is_none() {
                            session.insert(i, chunk(i as f64));
                        }
                    }
                });
            }
        });
        assert!(cache.resident_total() <= cache.capacity());
        let sum: usize = cache
            .artifacts()
            .iter()
            .map(|(_, s)| s.resident_chunks)
            .sum();
        assert_eq!(sum, cache.resident_total());
    }
}
