//! Typed errors and shared validation for the artifact query engine.
//!
//! Every query entry point of [`crate::TkrArtifact`] and the lazy
//! [`crate::TkrReader`] validates its request against the artifact's shape
//! *before* touching the decomposition, returning a [`QueryError`] instead
//! of panicking deep inside a kernel: an analyst poking at an artifact with
//! an off-by-one window gets a diagnosable error, not a process abort. The
//! two readers share the validators below so their failure behavior cannot
//! diverge.

use std::io;
use tucker_tensor::SubtensorSpec;

/// Why a partial-reconstruction query against an artifact was rejected.
#[derive(Debug)]
pub enum QueryError {
    /// The request does not name one entry per tensor mode.
    ModeCountMismatch {
        /// Number of modes of the artifact.
        expected: usize,
        /// Number of entries in the request.
        got: usize,
    },
    /// A `(start, len)` range with `len == 0` — an empty reconstruction.
    EmptyRange {
        /// The offending mode.
        mode: usize,
    },
    /// A `(start, len)` range that ends past the mode's extent (including
    /// `start + len` overflowing).
    RangeOutOfBounds {
        /// The offending mode.
        mode: usize,
        /// Requested start index.
        start: usize,
        /// Requested length.
        len: usize,
        /// The mode's extent.
        dim: usize,
    },
    /// A point index outside the mode's extent.
    IndexOutOfBounds {
        /// The offending mode.
        mode: usize,
        /// Requested index.
        index: usize,
        /// The mode's extent.
        dim: usize,
    },
    /// A slice request naming a mode the artifact does not have.
    ModeOutOfRange {
        /// Requested mode.
        mode: usize,
        /// Number of modes of the artifact.
        ndims: usize,
    },
    /// An IO failure while reading chunks on the lazy path.
    Io(io::Error),
    /// A rejection reported by a remote query service: the wire protocol
    /// carries the diagnostic text but erases the variant structure.
    Remote {
        /// The remote side's diagnostic message.
        message: String,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ModeCountMismatch { expected, got } => {
                write!(f, "query names {got} modes, artifact has {expected}")
            }
            QueryError::EmptyRange { mode } => {
                write!(f, "empty range (len 0) in mode {mode}")
            }
            QueryError::RangeOutOfBounds {
                mode,
                start,
                len,
                dim,
            } => write!(f, "range {start}+{len} exceeds dim {dim} in mode {mode}"),
            QueryError::IndexOutOfBounds { mode, index, dim } => {
                write!(f, "index {index} out of range in mode {mode} (dim {dim})")
            }
            QueryError::ModeOutOfRange { mode, ndims } => {
                write!(f, "mode {mode} out of range for a {ndims}-mode artifact")
            }
            QueryError::Io(e) => write!(f, "IO error while answering query: {e}"),
            QueryError::Remote { message } => {
                write!(f, "query rejected by remote service: {message}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for QueryError {
    fn from(e: io::Error) -> Self {
        QueryError::Io(e)
    }
}

/// Validates one `(start, len)` window per mode against the tensor dims.
pub(crate) fn validate_ranges(ranges: &[(usize, usize)], dims: &[usize]) -> Result<(), QueryError> {
    if ranges.len() != dims.len() {
        return Err(QueryError::ModeCountMismatch {
            expected: dims.len(),
            got: ranges.len(),
        });
    }
    for (mode, (&(start, len), &dim)) in ranges.iter().zip(dims.iter()).enumerate() {
        if len == 0 {
            return Err(QueryError::EmptyRange { mode });
        }
        if start.checked_add(len).is_none_or(|end| end > dim) {
            return Err(QueryError::RangeOutOfBounds {
                mode,
                start,
                len,
                dim,
            });
        }
    }
    Ok(())
}

/// Validates a single point index against the tensor dims.
pub(crate) fn validate_point(idx: &[usize], dims: &[usize]) -> Result<(), QueryError> {
    if idx.len() != dims.len() {
        return Err(QueryError::ModeCountMismatch {
            expected: dims.len(),
            got: idx.len(),
        });
    }
    for (mode, (&index, &dim)) in idx.iter().zip(dims.iter()).enumerate() {
        if index >= dim {
            return Err(QueryError::IndexOutOfBounds { mode, index, dim });
        }
    }
    Ok(())
}

/// Validates a mode/index pair for a slice query.
pub(crate) fn validate_slice(mode: usize, idx: usize, dims: &[usize]) -> Result<(), QueryError> {
    if mode >= dims.len() {
        return Err(QueryError::ModeOutOfRange {
            mode,
            ndims: dims.len(),
        });
    }
    if idx >= dims[mode] {
        return Err(QueryError::IndexOutOfBounds {
            mode,
            index: idx,
            dim: dims[mode],
        });
    }
    Ok(())
}

/// Validates an arbitrary subtensor spec against the tensor dims.
pub(crate) fn validate_spec(spec: &SubtensorSpec, dims: &[usize]) -> Result<(), QueryError> {
    if spec.ndims() != dims.len() {
        return Err(QueryError::ModeCountMismatch {
            expected: dims.len(),
            got: spec.ndims(),
        });
    }
    for (mode, &dim) in dims.iter().enumerate() {
        if spec.mode_indices(mode).is_empty() {
            return Err(QueryError::EmptyRange { mode });
        }
        for &index in spec.mode_indices(mode) {
            if index >= dim {
                return Err(QueryError::IndexOutOfBounds { mode, index, dim });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_validation_covers_every_failure_mode() {
        let dims = [4usize, 5];
        assert!(validate_ranges(&[(0, 4), (2, 3)], &dims).is_ok());
        assert!(matches!(
            validate_ranges(&[(0, 4)], &dims),
            Err(QueryError::ModeCountMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            validate_ranges(&[(0, 0), (0, 5)], &dims),
            Err(QueryError::EmptyRange { mode: 0 })
        ));
        assert!(matches!(
            validate_ranges(&[(0, 4), (3, 3)], &dims),
            Err(QueryError::RangeOutOfBounds { mode: 1, .. })
        ));
        // start + len overflowing usize must not wrap into "valid".
        assert!(matches!(
            validate_ranges(&[(usize::MAX, 2), (0, 5)], &dims),
            Err(QueryError::RangeOutOfBounds { mode: 0, .. })
        ));
    }

    #[test]
    fn point_and_slice_validation() {
        let dims = [3usize, 2];
        assert!(validate_point(&[2, 1], &dims).is_ok());
        assert!(matches!(
            validate_point(&[2, 2], &dims),
            Err(QueryError::IndexOutOfBounds {
                mode: 1,
                index: 2,
                dim: 2
            })
        ));
        assert!(matches!(
            validate_point(&[1], &dims),
            Err(QueryError::ModeCountMismatch { .. })
        ));
        assert!(validate_slice(0, 2, &dims).is_ok());
        assert!(matches!(
            validate_slice(2, 0, &dims),
            Err(QueryError::ModeOutOfRange { mode: 2, ndims: 2 })
        ));
        assert!(matches!(
            validate_slice(1, 5, &dims),
            Err(QueryError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn spec_validation_rejects_empty_mode_selections() {
        // An empty per-mode index list (reachable via from_ranges with
        // len 0) must fail like the equivalent range query, not silently
        // reconstruct an empty tensor.
        let dims = [4usize, 5];
        let empty = SubtensorSpec::from_ranges(&[(0, 0), (0, 5)]);
        assert!(matches!(
            validate_spec(&empty, &dims),
            Err(QueryError::EmptyRange { mode: 0 })
        ));
        let ok = SubtensorSpec::from_ranges(&[(1, 2), (0, 5)]);
        assert!(validate_spec(&ok, &dims).is_ok());
        assert!(matches!(
            validate_spec(&ok, &[4]),
            Err(QueryError::ModeCountMismatch { .. })
        ));
    }

    #[test]
    fn errors_format_and_chain() {
        let e = QueryError::RangeOutOfBounds {
            mode: 1,
            start: 3,
            len: 4,
            dim: 5,
        };
        assert!(format!("{e}").contains("mode 1"));
        let io_err = QueryError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&io_err).is_some());
    }
}
