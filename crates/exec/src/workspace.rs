//! Reusable `Vec<f64>` buffers for iterative drivers.
//!
//! The HOOI inner loop (Alg. 2 lines 4–8) materializes a chain of shrinking
//! TTM intermediates on every sweep; with a [`Workspace`] those intermediates
//! ping-pong through a small set of recycled allocations instead of hitting
//! the allocator `O(iterations × modes²)` times.

/// A pool of reusable `f64` buffers.
///
/// Not thread-safe by design — each driver owns one workspace; the parallel
/// kernels receive disjoint slices *of* these buffers, never the pool itself.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<f64>>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Returns a buffer of exactly `len` elements with **unspecified
    /// contents** (stale values from a previous use may remain), reusing the
    /// pooled allocation with the largest capacity when one exists.
    ///
    /// Consumers must fully overwrite the buffer — the intended ones do:
    /// `ttm_into_ctx` writes every output element (GEMM with `beta = 0`
    /// zero-scales each panel before accumulating). Skipping the memset here
    /// is the point of recycling: a zero-fill would re-add most of the
    /// allocation cost the workspace exists to remove.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let best = (0..self.free.len()).max_by_key(|&i| self.free[i].capacity());
        let mut buf = match best {
            Some(i) => self.free.swap_remove(i),
            None => Vec::new(),
        };
        // Only growth beyond the retained length is zero-filled.
        buf.truncate(len);
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn give(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Number of pooled buffers currently idle.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Total capacity (in elements) held by idle buffers.
    pub fn reserved(&self) -> usize {
        self.free.iter().map(|b| b.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_without_zeroing_but_zeroes_growth() {
        let mut ws = Workspace::new();
        let mut a = ws.take(8);
        assert_eq!(a, vec![0.0; 8], "fresh buffers start zeroed");
        a.iter_mut().for_each(|v| *v = 7.0);
        ws.give(a);
        let b = ws.take(12);
        // The reused prefix keeps stale contents (the contract: consumers
        // overwrite everything); only the growth is zero-filled.
        assert_eq!(&b[..8], &[7.0; 8]);
        assert_eq!(&b[8..], &[0.0; 4]);
        assert_eq!(b.len(), 12);
    }

    #[test]
    fn allocations_are_recycled() {
        let mut ws = Workspace::new();
        let a = ws.take(1024);
        let ptr = a.as_ptr();
        ws.give(a);
        let b = ws.take(512);
        // Shrinking take reuses the same allocation.
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(b.len(), 512);
        assert!(b.capacity() >= 1024);
    }

    #[test]
    fn largest_capacity_is_preferred() {
        let mut ws = Workspace::new();
        ws.give(Vec::with_capacity(16));
        ws.give(Vec::with_capacity(4096));
        let buf = ws.take(1000);
        assert!(buf.capacity() >= 4096);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.give(Vec::new());
        assert_eq!(ws.pooled(), 0);
        assert_eq!(ws.reserved(), 0);
    }
}
