//! Reusable `Vec<f64>` buffers for iterative drivers.
//!
//! The HOOI inner loop (Alg. 2 lines 4–8) materializes a chain of shrinking
//! TTM intermediates on every sweep; with a [`Workspace`] those intermediates
//! ping-pong through a small set of recycled allocations instead of hitting
//! the allocator `O(iterations × modes²)` times.
//!
//! Since ISSUE 8 the workspace also hands out **64-byte-aligned** buffers
//! ([`Workspace::take_aligned`] / [`AlignedBuf`]) for the GEMM/SYRK panel
//! packing of `tucker-linalg`: pack panels start on a cache-line (and AVX
//! vector) boundary, and alignment survives recycling across size classes
//! because the backing allocation is always made with [`BUFFER_ALIGN`].

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

/// Alignment (bytes) of every [`AlignedBuf`] allocation: one x86 cache line,
/// which is also ≥ the widest SIMD vector the microkernels use (32-byte ymm).
pub const BUFFER_ALIGN: usize = 64;

/// An owned, heap-allocated `f64` buffer whose storage is always aligned to
/// [`BUFFER_ALIGN`] bytes.
///
/// Unlike `Vec<f64>` the alignment is part of the type's contract, so a
/// buffer recycled through a [`Workspace`] stays aligned no matter how many
/// size classes it has passed through.
#[derive(Debug)]
pub struct AlignedBuf {
    ptr: NonNull<f64>,
    len: usize,
    cap: usize,
}

// SAFETY: an AlignedBuf uniquely owns its allocation of plain `f64`s, so
// moving it between threads is sound (same reasoning as Vec<f64>).
unsafe impl Send for AlignedBuf {}

impl AlignedBuf {
    /// Allocates an empty buffer with room for `cap` elements.
    fn with_capacity(cap: usize) -> AlignedBuf {
        if cap == 0 {
            return AlignedBuf {
                ptr: NonNull::dangling(),
                len: 0,
                cap: 0,
            };
        }
        let layout = Self::layout(cap);
        // SAFETY: layout has non-zero size (cap > 0) and valid alignment.
        let raw = unsafe { alloc(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<f64>()) else {
            handle_alloc_error(layout)
        };
        AlignedBuf { ptr, len: 0, cap }
    }

    fn layout(cap: usize) -> Layout {
        // A u64-sized element count cannot overflow the layout math on any
        // platform this runs on before the allocation itself fails.
        Layout::from_size_align(cap * std::mem::size_of::<f64>(), BUFFER_ALIGN)
            .unwrap_or_else(|_| Layout::new::<f64>())
    }

    /// Number of elements currently exposed by the slice views.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer exposes no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity of the backing allocation, in elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The buffer contents as a shared slice.
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: `ptr` is valid for `cap >= len` elements and `len`
        // elements have been initialized by `set_len_filling`.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The buffer contents as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: as in `as_slice`, plus unique ownership.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Resizes the view to `len` elements, zero-filling any growth beyond the
    /// previously exposed length (the retained prefix keeps stale contents —
    /// the same contract as [`Workspace::take`]).
    fn set_len_filling(&mut self, len: usize) {
        if self.cap < len {
            let mut grown = AlignedBuf::with_capacity(len);
            grown.len = len;
            // SAFETY: both regions are valid for the copied/zeroed lengths;
            // source and destination never overlap (distinct allocations).
            unsafe {
                std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), grown.ptr.as_ptr(), self.len);
                std::ptr::write_bytes(grown.ptr.as_ptr().add(self.len), 0, len - self.len);
            }
            *self = grown;
            return;
        }
        if len > self.len {
            // SAFETY: `len <= cap`, so the zeroed tail is inside the
            // allocation.
            unsafe {
                std::ptr::write_bytes(self.ptr.as_ptr().add(self.len), 0, len - self.len);
            }
        }
        self.len = len;
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: allocated in `with_capacity` with this exact layout.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.cap)) }
        }
    }
}

/// A pool of reusable `f64` buffers.
///
/// Not thread-safe by design — each driver owns one workspace; the parallel
/// kernels receive disjoint slices *of* these buffers, never the pool itself.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<f64>>,
    free_aligned: Vec<AlignedBuf>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Returns a buffer of exactly `len` elements with **unspecified
    /// contents** (stale values from a previous use may remain), reusing the
    /// pooled allocation with the largest capacity when one exists.
    ///
    /// Consumers must fully overwrite the buffer — the intended ones do:
    /// `ttm_into_ctx` writes every output element (GEMM with `beta = 0`
    /// zero-scales each panel before accumulating). Skipping the memset here
    /// is the point of recycling: a zero-fill would re-add most of the
    /// allocation cost the workspace exists to remove.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let best = (0..self.free.len()).max_by_key(|&i| self.free[i].capacity());
        let mut buf = match best {
            Some(i) => self.free.swap_remove(i),
            None => Vec::new(),
        };
        // Only growth beyond the retained length is zero-filled.
        buf.truncate(len);
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn give(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Returns a **64-byte-aligned** buffer of exactly `len` elements, with
    /// the same contents contract as [`Workspace::take`] (stale prefix from a
    /// previous use, zero-filled growth). Best-fit reuse: the smallest pooled
    /// aligned allocation that already fits `len`, else the largest one (which
    /// then regrows in place of a fresh allocation). A pool cycling through
    /// mixed size classes — e.g. the A/B pack-buffer pair of the GEMM drivers —
    /// therefore reaches a steady state with no reallocation. The alignment of
    /// [`BUFFER_ALIGN`] holds for every buffer ever handed out, no matter how
    /// many size classes it has been recycled through.
    pub fn take_aligned(&mut self, len: usize) -> AlignedBuf {
        let fitting = (0..self.free_aligned.len())
            .filter(|&i| self.free_aligned[i].capacity() >= len)
            .min_by_key(|&i| self.free_aligned[i].capacity());
        let chosen = fitting.or_else(|| {
            (0..self.free_aligned.len()).max_by_key(|&i| self.free_aligned[i].capacity())
        });
        let mut buf = match chosen {
            Some(i) => self.free_aligned.swap_remove(i),
            None => AlignedBuf::with_capacity(len),
        };
        buf.set_len_filling(len);
        buf
    }

    /// Returns an aligned buffer to the pool for later reuse.
    pub fn give_aligned(&mut self, buf: AlignedBuf) {
        if buf.capacity() > 0 {
            self.free_aligned.push(buf);
        }
    }

    /// Number of pooled buffers currently idle.
    pub fn pooled(&self) -> usize {
        self.free.len() + self.free_aligned.len()
    }

    /// Total capacity (in elements) held by idle buffers.
    pub fn reserved(&self) -> usize {
        self.free.iter().map(|b| b.capacity()).sum::<usize>()
            + self
                .free_aligned
                .iter()
                .map(|b| b.capacity())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_without_zeroing_but_zeroes_growth() {
        let mut ws = Workspace::new();
        let mut a = ws.take(8);
        assert_eq!(a, vec![0.0; 8], "fresh buffers start zeroed");
        a.iter_mut().for_each(|v| *v = 7.0);
        ws.give(a);
        let b = ws.take(12);
        // The reused prefix keeps stale contents (the contract: consumers
        // overwrite everything); only the growth is zero-filled.
        assert_eq!(&b[..8], &[7.0; 8]);
        assert_eq!(&b[8..], &[0.0; 4]);
        assert_eq!(b.len(), 12);
    }

    #[test]
    fn allocations_are_recycled() {
        let mut ws = Workspace::new();
        let a = ws.take(1024);
        let ptr = a.as_ptr();
        ws.give(a);
        let b = ws.take(512);
        // Shrinking take reuses the same allocation.
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(b.len(), 512);
        assert!(b.capacity() >= 1024);
    }

    #[test]
    fn largest_capacity_is_preferred() {
        let mut ws = Workspace::new();
        ws.give(Vec::with_capacity(16));
        ws.give(Vec::with_capacity(4096));
        let buf = ws.take(1000);
        assert!(buf.capacity() >= 4096);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.give(Vec::new());
        ws.give_aligned(ws2_empty());
        assert_eq!(ws.pooled(), 0);
        assert_eq!(ws.reserved(), 0);
    }

    fn ws2_empty() -> AlignedBuf {
        Workspace::new().take_aligned(0)
    }

    fn is_aligned(buf: &AlignedBuf) -> bool {
        (buf.as_slice().as_ptr() as usize) % BUFFER_ALIGN == 0
    }

    #[test]
    fn aligned_buffers_are_64_byte_aligned() {
        let mut ws = Workspace::new();
        for len in [1usize, 7, 64, 1000, 4096] {
            let buf = ws.take_aligned(len);
            assert!(is_aligned(&buf), "len {len} not {BUFFER_ALIGN}-aligned");
            assert_eq!(buf.len(), len);
            ws.give_aligned(buf);
        }
    }

    #[test]
    fn alignment_survives_recycling_across_size_classes() {
        // The satellite contract: a buffer recycled through arbitrary
        // shrink/grow cycles must stay 64-byte aligned every time it is
        // handed out (growth reallocates with the aligned layout; shrinking
        // reuses the allocation, whose alignment is a property of the
        // original alloc).
        let mut ws = Workspace::new();
        let mut last_ptr = None;
        for &len in &[512usize, 64, 2048, 1, 4096, 33, 1023, 8192, 5] {
            let mut buf = ws.take_aligned(len);
            assert!(is_aligned(&buf), "recycled len {len} lost alignment");
            assert_eq!(buf.len(), len);
            // Touch every element so miscounted lengths would fault/fail.
            for v in buf.as_mut_slice() {
                *v = len as f64;
            }
            // Shrinking takes must reuse the pooled allocation.
            if let Some(prev) = last_ptr {
                if len <= 512 {
                    assert_eq!(buf.as_slice().as_ptr(), prev, "len {len} did not recycle");
                }
            }
            if buf.capacity() >= 8192 {
                last_ptr = Some(buf.as_slice().as_ptr());
            }
            ws.give_aligned(buf);
        }
    }

    #[test]
    fn aligned_take_zeroes_growth_and_keeps_stale_prefix() {
        let mut ws = Workspace::new();
        let mut a = ws.take_aligned(8);
        assert_eq!(
            a.as_slice(),
            &[0.0; 8],
            "fresh aligned buffers start zeroed"
        );
        a.as_mut_slice().iter_mut().for_each(|v| *v = 9.0);
        ws.give_aligned(a);
        let b = ws.take_aligned(12);
        assert_eq!(&b.as_slice()[..8], &[9.0; 8]);
        assert_eq!(&b.as_slice()[8..], &[0.0; 4]);
    }

    #[test]
    fn aligned_and_vec_pools_are_independent() {
        let mut ws = Workspace::new();
        ws.give(vec![1.0; 100]);
        let buf = ws.take_aligned(100);
        assert!(is_aligned(&buf));
        // The Vec must still be pooled: aligned takes never consume it.
        assert_eq!(ws.pooled(), 1);
        assert_eq!(ws.reserved(), 100);
        ws.give_aligned(buf);
        assert_eq!(ws.pooled(), 2);
        assert!(ws.reserved() >= 200);
    }

    #[test]
    fn aligned_zero_len_is_allocation_free() {
        let mut ws = Workspace::new();
        let buf = ws.take_aligned(0);
        assert_eq!(buf.len(), 0);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 0);
    }
}
