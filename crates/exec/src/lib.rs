//! `tucker-exec` — the shared-pool execution layer of the workspace.
//!
//! The paper's per-node performance model (Sec. IX) assumes a threaded BLAS:
//! one process per node, many cores per process. This crate supplies the
//! equivalent for the pure-Rust kernels of this reproduction:
//!
//! * [`ExecContext`] — a cheap, cloneable handle to a **persistent** thread
//!   pool. The pool is created once (per process via [`ExecContext::global`],
//!   or explicitly via [`ExecContext::new`]) and reused by every kernel
//!   invocation; no pipeline kernel ever spawns a thread per call.
//! * deterministic scatter primitives — [`ExecContext::run`],
//!   [`ExecContext::for_each_chunk`], [`ExecContext::for_each_slot`] and the
//!   [`chunk_ranges`] / [`triangle_row_chunks`] partitioners. Work is always
//!   split into **disjoint output regions** with a fixed per-element
//!   accumulation order, so kernel results are bit-identical for every thread
//!   count (the determinism contract documented in
//!   `docs/ARCHITECTURE.md` §4).
//! * [`Workspace`] — a recycling pool of `Vec<f64>` buffers so iterative
//!   drivers (the HOOI inner loop in particular) stop allocating fresh
//!   tensors every sweep, plus 64-byte-aligned [`AlignedBuf`] buffers
//!   ([`Workspace::take_aligned`]) for the GEMM/SYRK panel packing of
//!   `tucker-linalg`.
//!
//! The pool size of the global context is `TUCKER_THREADS` when set to a
//! positive integer, otherwise `std::thread::available_parallelism()`.
//! Hybrid "ranks × threads" execution (the MPI+OpenMP model of TuckerMPI)
//! shares one global pool: each simulated rank derives a budget-limited view
//! with [`ExecContext::with_budget`], so the total worker count stays bounded
//! by the machine, not by `ranks × threads`.

pub mod pool;
pub mod workspace;

pub use pool::{chunk_ranges, triangle_row_chunks, ExecContext, ScopedJob, PAR_MIN_WORK};
pub use workspace::{AlignedBuf, Workspace, BUFFER_ALIGN};
