//! The persistent thread pool and the [`ExecContext`] scatter API.
//!
//! # Design
//!
//! A pool of `threads − 1` worker OS threads pulls type-erased jobs from one
//! shared unbounded channel (the caller of a scatter always executes the
//! first chunk itself, so `threads` chunks run concurrently on a pool of
//! `threads − 1` workers plus the submitting thread). Workers live as long as
//! the pool: [`ExecContext::global`] keeps them for the whole process, an
//! explicit [`ExecContext::new`] keeps them until the last clone is dropped.
//!
//! # Safety of borrowed jobs
//!
//! [`ExecContext::run`] accepts closures that borrow the caller's stack
//! (slices of the output matrix, the shared input tensor). Their lifetimes
//! are erased before they cross the channel, which is sound because `run`
//! **does not return — normally or by unwinding — until every submitted job
//! has signalled completion** over a private channel. Worker panics are
//! caught, forwarded, and re-raised on the calling thread after the scatter
//! has fully settled.
//!
//! # Determinism
//!
//! Scatter primitives only partition *output* index space; each output
//! element is owned by exactly one job and computed with the same inner-loop
//! order the sequential kernel uses. Chunk boundaries therefore affect
//! scheduling, never values: results are bit-identical for every thread
//! count, including oversubscription (`threads > cores`).

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use tucker_obs::metrics::{Counter, Gauge};

/// Pool-level observability (all relaxed atomics; see `tucker-obs`).
/// Scatter counts, queued-but-unstarted jobs, and cumulative worker
/// busy/idle wall time — enough to read pool utilization off the registry.
static SCATTER_CALLS: Counter = Counter::new("exec.scatter.calls");
static SCATTER_JOBS: Counter = Counter::new("exec.scatter.jobs");
static QUEUE_DEPTH: Gauge = Gauge::new("exec.queue.depth");
static WORKER_BUSY_NS: Counter = Counter::new("exec.worker.busy_ns");
static WORKER_IDLE_NS: Counter = Counter::new("exec.worker.idle_ns");

/// A job after lifetime erasure (see module docs for why this is sound).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A borrowed job as accepted from callers.
pub type ScopedJob<'a> = Box<dyn FnOnce() + Send + 'a>;

/// Hard cap on pool size, so a typo in `TUCKER_THREADS` cannot spawn an
/// unbounded number of OS threads.
const MAX_THREADS: usize = 256;

/// Work (in multiply-adds or equivalent) below which parallel kernels stay
/// sequential: at this size the scatter overhead beats the kernel time.
pub const PAR_MIN_WORK: usize = 1 << 16;

thread_local! {
    /// Set while a pool worker is executing a job; nested scatters detect it
    /// and degrade to inline execution instead of deadlocking the pool.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

struct PoolInner {
    submit: Mutex<Sender<Job>>,
    /// Total thread count the pool represents (workers + the caller).
    threads: usize,
}

fn spawn_workers(workers: usize) -> Sender<Job> {
    let (tx, rx) = unbounded::<Job>();
    let rx = Arc::new(Mutex::new(rx));
    for i in 0..workers {
        let rx: Arc<Mutex<Receiver<Job>>> = Arc::clone(&rx);
        std::thread::Builder::new()
            .name(format!("tucker-exec-{i}"))
            .spawn(move || loop {
                // Hold the lock only for the dequeue; run the job unlocked.
                let idle_from = Instant::now();
                let job = {
                    let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                    guard.recv()
                };
                match job {
                    Ok(job) => {
                        WORKER_IDLE_NS.add(idle_from.elapsed().as_nanos() as u64);
                        IN_WORKER.with(|f| f.set(true));
                        let busy_from = Instant::now();
                        job();
                        WORKER_BUSY_NS.add(busy_from.elapsed().as_nanos() as u64);
                        IN_WORKER.with(|f| f.set(false));
                    }
                    // All senders dropped: the owning contexts are gone.
                    Err(_) => break,
                }
            })
            .expect("tucker-exec: failed to spawn pool worker");
    }
    tx
}

/// A handle to the shared execution pool plus a parallelism *budget*.
///
/// Cloning is cheap (an `Arc` bump) and clones share the same workers.
/// The budget caps how many chunks a scatter splits work into — the hybrid
/// ranks × threads mode gives each simulated rank a budget of
/// `threads / ranks` over the one global pool.
#[derive(Clone)]
pub struct ExecContext {
    pool: Option<Arc<PoolInner>>,
    budget: usize,
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("threads", &self.threads())
            .field("pool_threads", &self.pool_threads())
            .finish()
    }
}

impl ExecContext {
    /// Creates a context backed by its own pool of `threads − 1` workers
    /// (the scattering thread is the remaining executor). `threads <= 1`
    /// creates a pool-less, purely sequential context.
    pub fn new(threads: usize) -> ExecContext {
        let threads = threads.clamp(1, MAX_THREADS);
        if threads <= 1 {
            return ExecContext::sequential();
        }
        let submit = spawn_workers(threads - 1);
        ExecContext {
            pool: Some(Arc::new(PoolInner {
                submit: Mutex::new(submit),
                threads,
            })),
            budget: threads,
        }
    }

    /// A context that always executes inline on the calling thread.
    pub fn sequential() -> ExecContext {
        ExecContext {
            pool: None,
            budget: 1,
        }
    }

    /// The process-wide context, created on first use and reused forever.
    ///
    /// Pool size: `TUCKER_THREADS` when set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    pub fn global() -> &'static ExecContext {
        static GLOBAL: OnceLock<ExecContext> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let configured = std::env::var("TUCKER_THREADS")
                .ok()
                .and_then(|s| parse_threads(&s));
            let threads = configured.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
            ExecContext::new(threads)
        })
    }

    /// A view on the same pool whose scatters split into at most `budget`
    /// chunks (clamped to at least 1). This is how each simulated rank of a
    /// hybrid run gets its thread share without spawning anything.
    pub fn with_budget(&self, budget: usize) -> ExecContext {
        ExecContext {
            pool: self.pool.clone(),
            budget: budget.clamp(1, MAX_THREADS),
        }
    }

    /// The parallelism budget of this context (≥ 1).
    pub fn threads(&self) -> usize {
        self.budget
    }

    /// Total thread count of the backing pool (1 for a sequential context).
    pub fn pool_threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.threads)
    }

    /// Runs every job to completion, using the pool when it helps.
    ///
    /// The calling thread executes the first job itself while the workers
    /// drain the rest; the call returns (or unwinds, if a job panicked) only
    /// after **all** jobs have finished, which is what makes borrowing jobs
    /// sound. Callers should pass at most [`ExecContext::threads`] jobs of
    /// comparable size — more is correct but queues.
    pub fn run<'a>(&self, mut jobs: Vec<ScopedJob<'a>>) {
        let inline = jobs.len() <= 1
            || self.budget <= 1
            || self.pool.is_none()
            || IN_WORKER.with(|f| f.get());
        if inline {
            for job in jobs {
                job();
            }
            return;
        }
        let pool = self.pool.as_ref().expect("checked above");
        let first = jobs.remove(0);
        let sent = jobs.len();
        SCATTER_CALLS.inc();
        SCATTER_JOBS.add(sent as u64 + 1);
        let (done_tx, done_rx) = unbounded::<Result<(), Box<dyn Any + Send>>>();
        {
            let submit = pool.submit.lock().unwrap_or_else(|e| e.into_inner());
            for job in jobs {
                // SAFETY: lifetime erasure only; this function does not
                // return or unwind before the completion loop below has
                // received one message per submitted job.
                let job: Job =
                    unsafe { std::mem::transmute::<ScopedJob<'a>, ScopedJob<'static>>(job) };
                let tx = done_tx.clone();
                QUEUE_DEPTH.inc();
                submit
                    .send(Box::new(move || {
                        QUEUE_DEPTH.dec();
                        let result = catch_unwind(AssertUnwindSafe(job));
                        // The receiver outlives every job (we drain below),
                        // so a send failure means the scatter already died.
                        let _ = tx.send(result);
                    }))
                    .expect("tucker-exec: pool workers disconnected");
            }
        }
        let mut panic = catch_unwind(AssertUnwindSafe(first)).err();
        for _ in 0..sent {
            match done_rx
                .recv()
                .expect("tucker-exec: worker dropped a completion")
            {
                Ok(()) => {}
                Err(e) => panic = Some(e),
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }

    /// Deterministically partitions `0..n` into at most `threads()` contiguous
    /// chunks of at least `min_per_chunk` items and runs `f` on each chunk
    /// (in parallel when a pool is available).
    pub fn for_each_chunk<F>(&self, n: usize, min_per_chunk: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let parts = self.partition(n, min_per_chunk);
        if parts <= 1 {
            f(0..n);
            return;
        }
        let jobs: Vec<ScopedJob<'_>> = chunk_ranges(n, parts)
            .into_iter()
            .map(|r| {
                let f = &f;
                Box::new(move || f(r)) as ScopedJob<'_>
            })
            .collect();
        self.run(jobs);
    }

    /// Runs `f(index, &mut slot)` for every slot, partitioning the slots into
    /// at most `threads()` contiguous chunks. The per-slot work may borrow
    /// shared inputs; slots are disjoint by construction.
    pub fn for_each_slot<T, F>(&self, slots: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = slots.len();
        if n == 0 {
            return;
        }
        let parts = self.partition(n, 1);
        if parts <= 1 {
            for (i, slot) in slots.iter_mut().enumerate() {
                f(i, slot);
            }
            return;
        }
        let mut jobs: Vec<ScopedJob<'_>> = Vec::with_capacity(parts);
        let mut rest = slots;
        let mut offset = 0usize;
        for range in chunk_ranges(n, parts) {
            let take = range.len();
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            let base = offset;
            jobs.push(Box::new(move || {
                for (i, slot) in head.iter_mut().enumerate() {
                    f(base + i, slot);
                }
            }));
            offset += take;
        }
        self.run(jobs);
    }

    /// Splits `out` into one disjoint row panel per range (rows of width
    /// `ld`) and runs `f(rows, panel)` on each, in parallel. The panel of the
    /// final range absorbs whatever tail of `out` remains, so a last row
    /// shorter than `ld` (the usual `(rows-1)·ld + cols` slice shape of the
    /// kernels) is allowed. Ranges must be consecutive and start at 0 — the
    /// shape [`chunk_ranges`] and [`triangle_row_chunks`] produce.
    pub fn for_each_row_panel<F>(&self, out: &mut [f64], ld: usize, ranges: Vec<Range<usize>>, f: F)
    where
        F: Fn(Range<usize>, &mut [f64]) + Sync,
    {
        let Some(last_end) = ranges.last().map(|r| r.end) else {
            return;
        };
        if ranges.len() == 1 {
            f(0..last_end, out);
            return;
        }
        let mut jobs: Vec<ScopedJob<'_>> = Vec::with_capacity(ranges.len());
        let mut rest = out;
        for r in ranges {
            debug_assert!(r.end == last_end || rest.len() >= r.len() * ld);
            let take = if r.end == last_end {
                rest.len()
            } else {
                r.len() * ld
            };
            let (panel, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            jobs.push(Box::new(move || f(r, panel)));
        }
        self.run(jobs);
    }

    /// How many chunks a scatter over `n` items should use.
    pub fn partition(&self, n: usize, min_per_chunk: usize) -> usize {
        let cap = n / min_per_chunk.max(1);
        self.budget.min(cap).max(1)
    }

    /// [`ExecContext::partition`] gated by total problem size: returns 1
    /// (stay sequential) when `work < `[`PAR_MIN_WORK`], else up to one
    /// chunk per budget thread over `n` output rows. The single threshold
    /// every parallel kernel in the workspace shares.
    pub fn partition_for_work(&self, n: usize, work: usize) -> usize {
        if work < PAR_MIN_WORK {
            1
        } else {
            self.partition(n, 1)
        }
    }
}

/// Parses a `TUCKER_THREADS` value: positive integers are accepted (capped at
/// an internal maximum), everything else falls back to auto-detection.
pub fn parse_threads(s: &str) -> Option<usize> {
    s.trim()
        .parse::<usize>()
        .ok()
        .filter(|&t| t >= 1)
        .map(|t| t.min(MAX_THREADS))
}

/// Splits `0..n` into `parts` contiguous ranges whose lengths differ by at
/// most one (earlier ranges take the remainder). Deterministic in `n` and
/// `parts` only.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let rem = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

/// Splits the rows of an `m × m` lower triangle into at most `parts`
/// contiguous row ranges of roughly equal triangle *area* (row `i` costs
/// `i + 1`), so threads working on triangular Gram updates stay balanced.
pub fn triangle_row_chunks(m: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, m.max(1));
    if parts <= 1 {
        return vec![0..m];
    }
    let total = m * (m + 1) / 2;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    let mut chunk = 1usize;
    for i in 0..m {
        acc += i + 1;
        // Close the current chunk once it reaches its share of the area (the
        // last chunk always runs to the final row).
        if chunk < parts && acc * parts >= total * chunk {
            ranges.push(start..i + 1);
            start = i + 1;
            chunk += 1;
        }
    }
    if start < m || ranges.is_empty() {
        ranges.push(start..m);
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_context_runs_inline() {
        let ctx = ExecContext::sequential();
        assert_eq!(ctx.threads(), 1);
        let mut hits = vec![false; 5];
        ctx.for_each_slot(&mut hits, |_, h| *h = true);
        assert!(hits.iter().all(|&h| h));
    }

    #[test]
    fn for_each_chunk_covers_range_exactly_once() {
        let ctx = ExecContext::new(4);
        for n in [0usize, 1, 3, 7, 64, 1001] {
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            ctx.for_each_chunk(n, 1, |r| {
                for i in r {
                    counts[i].fetch_add(1, Ordering::SeqCst);
                }
            });
            assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn min_per_chunk_limits_splitting() {
        let ctx = ExecContext::new(8);
        assert_eq!(ctx.partition(10, 8), 1);
        assert_eq!(ctx.partition(16, 8), 2);
        assert_eq!(ctx.partition(1000, 8), 8);
        assert_eq!(ctx.partition(3, 1), 3);
    }

    #[test]
    fn budget_views_share_the_pool() {
        let ctx = ExecContext::new(4);
        let limited = ctx.with_budget(2);
        assert_eq!(limited.threads(), 2);
        assert_eq!(limited.pool_threads(), 4);
        let mut out = vec![0usize; 64];
        limited.for_each_slot(&mut out, |i, v| *v = i * i);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn pool_is_reused_across_many_scatters() {
        // A smoke test that hammering the same context does not deadlock or
        // leak: 200 scatters over the same 2-worker pool.
        let ctx = ExecContext::new(3);
        let hits = AtomicUsize::new(0);
        for _ in 0..200 {
            ctx.for_each_chunk(12, 1, |r| {
                hits.fetch_add(r.len(), Ordering::SeqCst);
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 200 * 12);
    }

    #[test]
    fn concurrent_submitters_are_supported() {
        // Hybrid mode: several "rank" threads scatter onto one shared pool.
        let ctx = ExecContext::new(4);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let ctx = ctx.with_budget(2);
                let total = &total;
                scope.spawn(move || {
                    for _ in 0..50 {
                        ctx.for_each_chunk(8, 1, |r| {
                            total.fetch_add(r.len(), Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 6 * 50 * 8);
    }

    #[test]
    fn worker_panics_propagate_after_settling() {
        let ctx = ExecContext::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ctx.for_each_chunk(8, 1, |r| {
                if r.contains(&5) {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicking job.
        let hits = AtomicUsize::new(0);
        ctx.for_each_chunk(8, 1, |r| {
            hits.fetch_add(r.len(), Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_scatter_degrades_to_inline() {
        let ctx = ExecContext::new(2);
        let hits = AtomicUsize::new(0);
        ctx.for_each_chunk(2, 1, |_| {
            // A scatter from inside a worker must not deadlock the pool.
            ctx.for_each_chunk(4, 1, |r| {
                hits.fetch_add(r.len(), Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn row_panel_scatter_writes_disjoint_panels() {
        // A 10×5 "matrix" with leading dimension 6 and the usual short last
        // row ((m-1)·ld + cols elements).
        let (m, ld, cols) = (10usize, 6usize, 5usize);
        for threads in [1usize, 3, 8] {
            let ctx = ExecContext::new(threads);
            let mut out = vec![-1.0; (m - 1) * ld + cols];
            ctx.for_each_row_panel(&mut out, ld, chunk_ranges(m, threads), |rows, panel| {
                for (i, r) in rows.enumerate() {
                    for j in 0..cols {
                        panel[i * ld + j] = (r * cols + j) as f64;
                    }
                }
            });
            for r in 0..m {
                for j in 0..cols {
                    assert_eq!(out[r * ld + j], (r * cols + j) as f64);
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_are_even_and_exhaustive() {
        for (n, parts) in [(10usize, 3usize), (7, 7), (5, 9), (64, 4), (1, 1)] {
            let ranges = chunk_ranges(n, parts);
            assert!(ranges.len() <= parts.max(1));
            let mut expected = 0;
            for r in &ranges {
                assert_eq!(r.start, expected);
                expected = r.end;
            }
            assert_eq!(expected, n);
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn triangle_chunks_balance_area() {
        let m = 100;
        let chunks = triangle_row_chunks(m, 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.first().unwrap().start, 0);
        assert_eq!(chunks.last().unwrap().end, m);
        let areas: Vec<usize> = chunks
            .iter()
            .map(|r| r.clone().map(|i| i + 1).sum())
            .collect();
        let total: usize = areas.iter().sum();
        assert_eq!(total, m * (m + 1) / 2);
        for &a in &areas {
            // Every chunk within 2x of the ideal share.
            assert!(a * 4 >= total / 2, "unbalanced triangle chunk: {areas:?}");
            assert!(a * 2 <= total, "unbalanced triangle chunk: {areas:?}");
        }
    }

    #[test]
    fn triangle_chunks_handle_degenerate_sizes() {
        assert_eq!(triangle_row_chunks(0, 4), vec![0..0]);
        assert_eq!(triangle_row_chunks(1, 4), vec![0..1]);
        let chunks = triangle_row_chunks(3, 8);
        assert_eq!(chunks.iter().map(|r| r.len()).sum::<usize>(), 3);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("lots"), None);
        assert_eq!(parse_threads("99999"), Some(MAX_THREADS));
    }

    #[test]
    fn global_context_is_a_singleton() {
        let a = ExecContext::global();
        let b = ExecContext::global();
        assert_eq!(a.threads(), b.threads());
        assert!(a.threads() >= 1);
    }
}
