//! Proptest battery for the packed microkernel kernels (ISSUE 8).
//!
//! The renegotiated determinism contract says: every output element of
//! GEMM/SYRK is one running accumulator, seeded from the beta-scaled C,
//! adding `fl(fl(alpha·a)·b)` terms in ascending contraction order, no FMA —
//! on **every** SIMD tier, for **every** shape, transpose combination, and
//! leading dimension. `gemm_slices_reference` / `syrk_slices_reference`
//! state that recurrence executably; this battery forces each supported
//! `TUCKER_SIMD` tier in turn and requires the production kernels to agree
//! with the reference — and therefore with each other — **bit for bit**.
//!
//! Tier forcing is process-global, so every test in this binary serializes
//! on one mutex and restores the detected tier before releasing it.

use proptest::prelude::*;
use std::sync::Mutex;
use tucker_linalg::gemm::{gemm_slices, gemm_slices_reference, Transpose};
use tucker_linalg::simd::{detected_tier, force_tier, supported_tiers};
use tucker_linalg::syrk::{syrk_rows_slices, syrk_slices, syrk_slices_reference};

/// Serializes tier forcing across the (parallel) test harness threads.
static TIER_LOCK: Mutex<()> = Mutex::new(());

fn tier_guard() -> std::sync::MutexGuard<'static, ()> {
    TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Deterministic pseudo-random fill with mixed signs and magnitudes, so any
/// reassociation shows up in the low mantissa bits.
fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let frac = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            frac * 3.0_f64.powi((s % 9) as i32 - 4)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn check_gemm_case(
    m: usize,
    k: usize,
    n: usize,
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    beta: f64,
    pads: (usize, usize, usize),
    seed: u64,
) -> Result<(), String> {
    let (ar, ac) = match ta {
        Transpose::No => (m, k),
        Transpose::Yes => (k, m),
    };
    let (br, bc) = match tb {
        Transpose::No => (k, n),
        Transpose::Yes => (n, k),
    };
    let (lda, ldb, ldc) = (ac + pads.0, bc + pads.1, n + pads.2);
    let a = fill(ar * lda, seed ^ 0xa);
    let b = fill(br * ldb, seed ^ 0xb);
    let c0 = fill(m * ldc, seed ^ 0xc);

    let mut want = c0.clone();
    gemm_slices_reference(
        ta, tb, alpha, &a, ar, ac, lda, &b, br, bc, ldb, beta, &mut want, ldc,
    );
    let want_bits = bits(&want);

    let _g = tier_guard();
    for tier in supported_tiers() {
        if !force_tier(tier) {
            return Err(format!("could not force supported tier {}", tier.name()));
        }
        let mut got = c0.clone();
        gemm_slices(
            ta, tb, alpha, &a, ar, ac, lda, &b, br, bc, ldb, beta, &mut got, ldc,
        );
        // Live columns must match the contract bitwise; ld gutters must be
        // untouched.
        for i in 0..m {
            for j in 0..ldc {
                let (g, w) = (got[i * ldc + j], want[i * ldc + j]);
                if j < n {
                    if g.to_bits() != w.to_bits() {
                        return Err(format!(
                            "tier {} m={m} k={k} n={n} ta={ta:?} tb={tb:?} \
                             α={alpha} β={beta} ({i},{j}): {g:e} != {w:e}",
                            tier.name()
                        ));
                    }
                } else if g.to_bits() != c0[i * ldc + j].to_bits() {
                    return Err(format!(
                        "tier {} wrote the ld gutter at ({i},{j})",
                        tier.name()
                    ));
                }
            }
        }
        let _ = want_bits.len();
    }
    force_tier(detected_tier());
    Ok(())
}

fn check_syrk_case(
    m: usize,
    k: usize,
    pad_a: usize,
    pad_c: usize,
    alpha: f64,
    beta: f64,
    seed: u64,
) -> Result<(), String> {
    let (lda, ldc) = (k + pad_a, m + pad_c);
    let a = fill(m * lda, seed ^ 0x5);
    // Symmetric seed so beta-scaling keeps C symmetric (the kernel contract).
    let mut c0 = vec![0.0f64; m * ldc];
    let raw = fill(m * m, seed ^ 0x6);
    for i in 0..m {
        for j in 0..m {
            let v = raw[i.max(j) * m + i.min(j)];
            c0[i * ldc + j] = v;
        }
    }

    let mut want = c0.clone();
    syrk_slices_reference(alpha, &a, m, k, lda, beta, &mut want, ldc);

    let _g = tier_guard();
    for tier in supported_tiers() {
        if !force_tier(tier) {
            return Err(format!("could not force supported tier {}", tier.name()));
        }
        let mut got = c0.clone();
        syrk_slices(alpha, &a, m, k, lda, beta, &mut got, ldc);
        for i in 0..m {
            for j in 0..m {
                let (g, w) = (got[i * ldc + j], want[i * ldc + j]);
                if g.to_bits() != w.to_bits() {
                    return Err(format!(
                        "tier {} m={m} k={k} α={alpha} β={beta} ({i},{j}): {g:e} != {w:e}",
                        tier.name()
                    ));
                }
            }
        }
        // Panel decomposition: rebuilding the lower triangle from uneven row
        // panels must reproduce the same bits on this tier.
        if beta == 0.0 && m >= 3 {
            let mut panels = vec![0.0f64; m * ldc];
            let cut1 = m / 3;
            let cut2 = (2 * m) / 3;
            for rows in [0..cut1, cut1..cut2, cut2..m] {
                if rows.is_empty() {
                    continue;
                }
                let row0 = rows.start;
                syrk_rows_slices(alpha, &a, k, lda, rows, &mut panels[row0 * ldc..], ldc);
            }
            for i in 0..m {
                for j in 0..=i {
                    if panels[i * ldc + j].to_bits() != want[i * ldc + j].to_bits() {
                        return Err(format!(
                            "tier {} panel split diverged at ({i},{j})",
                            tier.name()
                        ));
                    }
                }
            }
        }
    }
    force_tier(detected_tier());
    Ok(())
}

fn transpose_of(flag: bool) -> Transpose {
    if flag {
        Transpose::Yes
    } else {
        Transpose::No
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GEMM ≡ contract reference bitwise: odd shapes, every transpose combo,
    /// strided leading dimensions, alpha/beta variants, every supported tier.
    #[test]
    fn gemm_matches_reference_bitwise_on_all_tiers(
        m in 1usize..=40,
        k in 1usize..=40,
        n in 1usize..=40,
        ta in 0usize..2,
        tb in 0usize..2,
        ab in 0usize..4,
        pad_a in 0usize..4,
        pad_b in 0usize..4,
        pad_c in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let (alpha, beta) = [(1.0, 0.0), (1.3, 0.0), (0.7, 1.0), (-1.1, 0.5)][ab];
        if let Err(msg) = check_gemm_case(
            m, k, n, transpose_of(ta == 1), transpose_of(tb == 1), alpha, beta,
            (pad_a, pad_b, pad_c), seed,
        ) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// SYRK ≡ contract reference bitwise, plus panel-split equivalence, on
    /// every supported tier.
    #[test]
    fn syrk_matches_reference_bitwise_on_all_tiers(
        m in 1usize..=40,
        k in 1usize..=36,
        ab in 0usize..3,
        pad_a in 0usize..4,
        pad_c in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let (alpha, beta) = [(1.0, 0.0), (2.0, 0.0), (0.5, 1.0)][ab];
        if let Err(msg) = check_syrk_case(m, k, pad_a, pad_c, alpha, beta, seed) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Fixed shapes big enough to cross every MC/KC/NC block edge (the proptest
/// ranges above stay small to keep the sweep fast).
#[test]
fn block_edge_crossing_shapes_match_reference_on_all_tiers() {
    for (m, k, n) in [
        (130usize, 300usize, 70usize),
        (97, 257, 513),
        (96, 256, 512),
    ] {
        check_gemm_case(
            m,
            k,
            n,
            Transpose::No,
            Transpose::No,
            1.5,
            0.25,
            (3, 0, 1),
            0xfeed ^ (m as u64),
        )
        .unwrap();
    }
    check_syrk_case(150, 260, 2, 3, 1.0, 0.0, 0xbeef).unwrap();
}

/// The transpose-heavy variants at block-edge size (packing takes different
/// code paths per transpose flag).
#[test]
fn block_edge_transposed_shapes_match_reference_on_all_tiers() {
    for (ta, tb) in [
        (Transpose::Yes, Transpose::No),
        (Transpose::No, Transpose::Yes),
        (Transpose::Yes, Transpose::Yes),
    ] {
        check_gemm_case(101, 270, 99, ta, tb, 1.0, 0.0, (1, 2, 0), 0xc0de).unwrap();
    }
}
