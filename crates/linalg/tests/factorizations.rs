//! Proptest battery for the blocked Level-3 factorizations (ISSUE 9).
//!
//! The renegotiated determinism contract says: `householder_qr`, `sym_eig`,
//! and `jacobi_svd` are defined bit-for-bit by their `*_reference`
//! restatements — on **every** SIMD tier, **every** `MC/KC/NC` blocking
//! (including `TUCKER_BLOCK` overrides), and **every** thread count, for
//! every input shape, including shapes that straddle the fixed panel widths
//! (`QR_PANEL`, `EIG_BLOCK`, `SVD_BLOCK`) and shapes small enough to take
//! the pre-blocking direct paths. This battery generates odd shapes around
//! those edges, forces each supported `TUCKER_SIMD` tier in turn, re-runs
//! under a shrunken blocking override, and requires bit equality throughout.
//!
//! Tier forcing is process-global, so every test in this binary serializes
//! on one mutex and restores the detected tier before releasing it.

use proptest::prelude::*;
use std::sync::Mutex;
use tucker_exec::ExecContext;
use tucker_linalg::blocking::{force_blocking, Blocking};
use tucker_linalg::qr::{householder_qr, householder_qr_ctx, householder_qr_reference, QrFactors};
use tucker_linalg::simd::{detected_tier, force_tier, supported_tiers};
use tucker_linalg::{
    jacobi_svd, jacobi_svd_ctx, jacobi_svd_reference, sym_eig, sym_eig_ctx, sym_eig_reference,
    Matrix, Svd, SymEig,
};

static TIER_LOCK: Mutex<()> = Mutex::new(());

fn tier_guard() -> std::sync::MutexGuard<'static, ()> {
    TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic pseudo-random fill with mixed signs and magnitudes, so any
/// reassociation shows up in the low mantissa bits.
fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let frac = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            frac * 3.0_f64.powi((s % 9) as i32 - 4)
        })
        .collect()
}

fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
    Matrix::from_vec(m, n, fill(m * n, seed))
}

fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let raw = fill(n * n, seed);
    Matrix::from_fn(n, n, |i, j| raw[i.max(j) * n + i.min(j)])
}

fn matrices_eq(x: &Matrix, y: &Matrix, what: &str) -> Result<(), String> {
    if x.shape() != y.shape() {
        return Err(format!("{what}: shape {:?} vs {:?}", x.shape(), y.shape()));
    }
    for (i, (a, b)) in x.as_slice().iter().zip(y.as_slice().iter()).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!("{what}[{i}]: {a:e} != {b:e}"));
        }
    }
    Ok(())
}

fn values_eq(x: &[f64], y: &[f64], what: &str) -> Result<(), String> {
    if x.len() != y.len() {
        return Err(format!("{what}: length {} vs {}", x.len(), y.len()));
    }
    for (i, (a, b)) in x.iter().zip(y.iter()).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!("{what}[{i}]: {a:e} != {b:e}"));
        }
    }
    Ok(())
}

fn qr_eq(x: &QrFactors, y: &QrFactors, what: &str) -> Result<(), String> {
    matrices_eq(&x.q, &y.q, &format!("{what} Q"))?;
    matrices_eq(&x.r, &y.r, &format!("{what} R"))
}

fn eig_eq(x: &SymEig, y: &SymEig, what: &str) -> Result<(), String> {
    values_eq(&x.values, &y.values, &format!("{what} values"))?;
    matrices_eq(&x.vectors, &y.vectors, &format!("{what} vectors"))
}

fn svd_eq(x: &Svd, y: &Svd, what: &str) -> Result<(), String> {
    values_eq(&x.s, &y.s, &format!("{what} s"))?;
    matrices_eq(&x.u, &y.u, &format!("{what} U"))?;
    matrices_eq(&x.v, &y.v, &format!("{what} V"))
}

const SHRUNKEN: Blocking = Blocking {
    mc: 16,
    kc: 16,
    nc: 16,
};

/// Runs `compute` under every supported tier plus a shrunken-blocking
/// override and checks the result against `want` with `compare`.
fn check_invariance<T>(
    compute: impl Fn() -> T,
    want: &T,
    compare: impl Fn(&T, &T, &str) -> Result<(), String>,
) -> Result<(), String> {
    let _g = tier_guard();
    for tier in supported_tiers() {
        if !force_tier(tier) {
            return Err(format!("could not force supported tier {}", tier.name()));
        }
        compare(&compute(), want, &format!("tier {}", tier.name()))?;
    }
    let prev = force_blocking(SHRUNKEN);
    let got = compute();
    force_blocking(prev);
    force_tier(detected_tier());
    compare(&got, want, "shrunken TUCKER_BLOCK")?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Blocked QR ≡ reference bitwise: shapes on both sides of QR_PANEL and
    /// across panel edges, tall and wide, every tier, shrunken blocking.
    #[test]
    fn qr_matches_reference_bitwise(
        m in 2usize..=90,
        n in 2usize..=90,
        seed in 0u64..=u64::MAX / 2,
    ) {
        let a = random_matrix(m, n, seed);
        let want = householder_qr_reference(&a);
        let r = check_invariance(|| householder_qr(&a), &want, qr_eq);
        prop_assert!(r.is_ok(), "{m}x{n}: {}", r.unwrap_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Blocked-tridiagonalization sym_eig ≡ reference bitwise just past the
    /// blocked cutoff, including ragged last panels.
    #[test]
    fn sym_eig_matches_reference_bitwise(
        n in 129usize..=150,
        seed in 0u64..=u64::MAX / 2,
    ) {
        let a = random_symmetric(n, seed);
        let want = sym_eig_reference(&a);
        let r = check_invariance(|| sym_eig(&a), &want, eig_eq);
        prop_assert!(r.is_ok(), "n={n}: {}", r.unwrap_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Blocked one-sided Jacobi SVD ≡ reference bitwise past the blocked
    /// cutoff (the m/n jitter also exercises the transpose dispatch).
    #[test]
    fn jacobi_svd_matches_reference_bitwise(
        m in 193usize..=216,
        extra in 0usize..=30,
        seed in 0u64..=u64::MAX / 2,
    ) {
        let a = random_matrix(m + extra, m, seed);
        let want = jacobi_svd_reference(&a);
        let r = check_invariance(|| jacobi_svd(&a), &want, svd_eq);
        prop_assert!(r.is_ok(), "{}x{m}: {}", a.rows(), r.unwrap_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Small problems take the pre-blocking direct paths: production,
    /// reference, and the pinned unblocked functions all agree bitwise.
    #[test]
    fn direct_paths_are_the_pinned_recurrences(
        n in 2usize..=32,
        seed in 0u64..=u64::MAX / 2,
    ) {
        let a = random_matrix(n, n, seed);
        let qr = householder_qr(&a);
        let r = qr_eq(&qr, &tucker_linalg::householder_qr_unblocked(&a), "qr direct");
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        let s = random_symmetric(n, seed ^ 0xee);
        let e = sym_eig(&s);
        let r = eig_eq(&e, &tucker_linalg::sym_eig_unblocked(&s), "eig direct");
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        let sv = jacobi_svd(&a);
        let r = svd_eq(&sv, &tucker_linalg::jacobi_svd_unblocked(&a), "svd direct");
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}

/// Thread counts only affect scheduling of the Level-3 updates, never bits.
#[test]
fn factorization_bits_are_invariant_to_thread_count() {
    let _g = tier_guard();
    let a = random_matrix(140, 120, 0x51);
    let s = random_symmetric(140, 0x52);
    let ctx1 = ExecContext::new(1);
    let qr1 = householder_qr_ctx(&ctx1, &a);
    let eig1 = sym_eig_ctx(&ctx1, &s);
    let svd1 = jacobi_svd_ctx(&ctx1, &a);
    for threads in [2usize, 4, 32] {
        let ctx = ExecContext::new(threads);
        qr_eq(
            &householder_qr_ctx(&ctx, &a),
            &qr1,
            &format!("qr t={threads}"),
        )
        .unwrap();
        eig_eq(&sym_eig_ctx(&ctx, &s), &eig1, &format!("eig t={threads}")).unwrap();
        svd_eq(
            &jacobi_svd_ctx(&ctx, &a),
            &svd1,
            &format!("svd t={threads}"),
        )
        .unwrap();
    }
}
