//! Runtime cache-blocking parameters for the packed microkernel drivers.
//!
//! PR 8 hard-coded the GEBP blocking constants (`MC`/`KC`/`NC`) for one
//! cache hierarchy. This module derives them **once per process** from the
//! caches the host actually reports, with the same cached-atomic pattern as
//! [`crate::simd`]:
//!
//! 1. `TUCKER_BLOCK=MC,KC,NC` requests the three block sizes explicitly
//!    (values are sanitized: `MC` is rounded up to a multiple of
//!    [`crate::microkernel::MR`], `NC` to a multiple of
//!    [`crate::microkernel::NR`], `KC` to at least 1). A malformed value
//!    falls back to the derived blocking with a one-time warning on stderr —
//!    it never aborts.
//! 2. Otherwise L1d/L2/L3 sizes are detected at runtime (cpuid on `x86_64`,
//!    conservative defaults elsewhere or when detection reports nothing) and
//!    the blocks are derived GotoBLAS-style: `KC` so a `KC×NR` B sliver and
//!    a `MR×KC` A sliver fit in about half of L1d, `MC` so the packed
//!    `MC×KC` A block takes a measured slice of L2, `NC` so the packed
//!    `KC×NC` B panel takes a slice of L3 (see [`Blocking`] field docs).
//!
//! **The blocking is invisible in the results.** The per-element
//! accumulation contract ([`crate::gemm`] module docs) makes every output
//! bit independent of `MC`/`KC`/`NC`, so these values — like the SIMD tier —
//! are performance tuning only. CI re-runs the kernel and determinism suites
//! under a deliberately shrunken `TUCKER_BLOCK` override to keep the
//! block-edge paths exercised on small inputs, and [`force_blocking`] lets
//! one test binary compare blockings in-process.
//!
//! The factorization panel widths (`qr::QR_PANEL`, `eig::EIG_BLOCK`,
//! `svd::SVD_BLOCK`) are deliberately **not** derived here: those change the
//! factorization bits, so they are fixed constants pinned by the
//! determinism contract, never autotuned.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::microkernel::{MR, NR};

/// Multiply-add count at or below which the Level-3 kernels skip panel
/// packing and run their direct scalar loops (same bits, less setup). One
/// shared, named threshold: the fused TTM interior and lazy-reader paths
/// issue streams of tiny GEMMs, and the factorization drivers fall back to
/// their unblocked paths on problems in the same size class — spending more
/// time packing than multiplying helps nobody.
pub const SMALL_PROBLEM_MADDS: usize = 8 * 1024;

/// Cache-block edge sizes for the packed microkernel drivers: C is tiled
/// `mc × nc`, the contraction dimension is cut into `kc` slabs. `mc` is
/// always a multiple of [`MR`] and `nc` of [`NR`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Row block: packed `mc × kc` A block targets about an eighth of L2.
    pub mc: usize,
    /// Contraction slab: `kc × NR` B sliver targets about half of L1d.
    pub kc: usize,
    /// Column block: packed `kc × nc` B panel targets about a sixteenth of
    /// L3.
    pub nc: usize,
}

impl Blocking {
    /// Rounds the fields onto the grid the pack formats require: `mc` up to
    /// a multiple of `MR`, `nc` up to a multiple of `NR`, `kc >= 1`, and
    /// every field capped so the triple packs into the cached atomic.
    fn sanitized(self) -> Blocking {
        let clamp = |v: usize, unit: usize| -> usize {
            let v = v.clamp(1, MAX_BLOCK);
            v.div_ceil(unit) * unit
        };
        Blocking {
            mc: clamp(self.mc, MR),
            kc: self.kc.clamp(1, MAX_BLOCK),
            nc: clamp(self.nc, NR),
        }
    }
}

/// Upper cap per block edge; keeps each field in 16 bits for the packed
/// atomic and bounds the pack-buffer growth a hostile override could ask
/// for. Far above any value the derivation produces.
const MAX_BLOCK: usize = 1 << 14;

/// `0` = not yet selected; otherwise `mc << 32 | kc << 16 | nc` (each field
/// nonzero after sanitizing, so a stored value is never 0).
static BLOCKING: AtomicU64 = AtomicU64::new(0);

fn pack_blocking(b: Blocking) -> u64 {
    ((b.mc as u64) << 32) | ((b.kc as u64) << 16) | b.nc as u64
}

fn unpack_blocking(v: u64) -> Option<Blocking> {
    if v == 0 {
        return None;
    }
    Some(Blocking {
        mc: ((v >> 32) & 0xFFFF) as usize,
        kc: ((v >> 16) & 0xFFFF) as usize,
        nc: (v & 0xFFFF) as usize,
    })
}

/// Data-cache sizes in bytes `(l1d, l2, l3)` used for the derivation:
/// detected via cpuid on `x86_64`, with each level that cannot be detected
/// replaced by a conservative default (32 KiB / 256 KiB / 8 MiB).
pub fn detected_caches() -> (usize, usize, usize) {
    let (l1, l2, l3) = detect_caches_raw();
    (
        if l1 > 0 { l1 } else { 32 * 1024 },
        if l2 > 0 { l2 } else { 256 * 1024 },
        if l3 > 0 { l3 } else { 8 * 1024 * 1024 },
    )
}

/// Raw per-level detection; `0` means "not reported".
#[cfg(target_arch = "x86_64")]
fn detect_caches_raw() -> (usize, usize, usize) {
    use std::arch::x86_64::{__cpuid, __cpuid_count};
    // cpuid itself is part of the x86_64 baseline.
    let max_leaf = __cpuid(0).eax;
    let mut sizes = [0usize; 3]; // L1d, L2, L3
    fn enumerate(sizes: &mut [usize; 3], leaf: u32) {
        for sub in 0..16u32 {
            let r = __cpuid_count(leaf, sub);
            let cache_type = r.eax & 0x1F;
            if cache_type == 0 {
                break; // no more caches
            }
            // 1 = data, 3 = unified; instruction caches don't matter here.
            if cache_type != 1 && cache_type != 3 {
                continue;
            }
            let level = ((r.eax >> 5) & 0x7) as usize;
            let ways = ((r.ebx >> 22) & 0x3FF) as usize + 1;
            let partitions = ((r.ebx >> 12) & 0x3FF) as usize + 1;
            let line = (r.ebx & 0xFFF) as usize + 1;
            let sets = r.ecx as usize + 1;
            let bytes = ways * partitions * line * sets;
            if (1..=3).contains(&level) && sizes[level - 1] == 0 {
                sizes[level - 1] = bytes;
            }
        }
    }
    if max_leaf >= 4 {
        enumerate(&mut sizes, 4); // Intel deterministic cache parameters
    }
    if sizes == [0, 0, 0] {
        let max_ext = __cpuid(0x8000_0000).eax;
        if max_ext >= 0x8000_001D {
            enumerate(&mut sizes, 0x8000_001D); // AMD cache properties (TOPOEXT)
        }
        if sizes == [0, 0, 0] && max_ext >= 0x8000_0006 {
            // Legacy AMD leaves: L1d size in KiB, L2 in KiB, L3 in 512 KiB.
            let l1 = __cpuid(0x8000_0005);
            sizes[0] = (((l1.ecx >> 24) & 0xFF) as usize) * 1024;
            let l23 = __cpuid(0x8000_0006);
            sizes[1] = (((l23.ecx >> 16) & 0xFFFF) as usize) * 1024;
            sizes[2] = (((l23.edx >> 18) & 0x3FFF) as usize) * 512 * 1024;
        }
    }
    (sizes[0], sizes[1], sizes[2])
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_caches_raw() -> (usize, usize, usize) {
    (0, 0, 0) // conservative defaults take over
}

/// GotoBLAS-style derivation from the cache sizes (bytes → f64 counts).
fn derive_blocking() -> Blocking {
    let (l1, l2, l3) = detected_caches();
    // KC: a kc×NR B sliver plus a MR×kc A sliver stream through about half
    // of L1d while one C tile is retired.
    let kc = (l1 / (2 * 8 * (MR + NR))).clamp(64, 1024) & !15;
    // MC: the packed mc×kc A block targets about an eighth of L2 — it has
    // to share the cache with the C tile rows and the streaming B sliver,
    // and measurements show nothing is gained past that.
    let mc = (l2 / (8 * 8 * kc)).clamp(MR, 384);
    // NC: the packed kc×nc B panel targets about a sixteenth of L3 (shared
    // across cores), floored at the pre-autotuning constant 512.
    let nc = (l3 / (16 * 8 * kc)).clamp(512, 2048);
    Blocking { mc, kc, nc }.sanitized()
}

fn select_from_env() -> Blocking {
    let derived = derive_blocking();
    let raw = match std::env::var("TUCKER_BLOCK") {
        Ok(v) => v,
        Err(_) => return derived,
    };
    let mut parts = raw.split(',').map(|p| p.trim().parse::<usize>());
    let parsed = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(Ok(mc)), Some(Ok(kc)), Some(Ok(nc)), None) if mc > 0 && kc > 0 && nc > 0 => {
            Some(Blocking { mc, kc, nc })
        }
        _ => None,
    };
    match parsed {
        Some(b) => b.sanitized(),
        None => {
            eprintln!(
                "tucker-linalg: TUCKER_BLOCK={raw:?} is not \"MC,KC,NC\" (three positive \
                 integers); using the derived blocking {derived:?}"
            );
            derived
        }
    }
}

/// The blocking every packed-kernel invocation in this process uses.
///
/// Selected on first call from `TUCKER_BLOCK` + cache detection and cached;
/// [`force_blocking`] can change it afterwards (tests and benches only).
pub fn current_blocking() -> Blocking {
    if let Some(b) = unpack_blocking(BLOCKING.load(Ordering::Relaxed)) {
        return b;
    }
    let b = select_from_env();
    BLOCKING.store(pack_blocking(b), Ordering::Relaxed);
    b
}

/// Forces the process-wide blocking (sanitized onto the MR/NR grid) and
/// returns the previously effective blocking, for tests and benchmarks that
/// compare blockings within one process.
///
/// Kernel calls racing with a `force_blocking` may use either the old or the
/// new blocking, but the per-element contract makes both bit-identical, so
/// results never depend on the race. Timing comparisons should still
/// serialize around it (the bundled suites hold a mutex).
pub fn force_blocking(b: Blocking) -> Blocking {
    let prev = current_blocking();
    BLOCKING.store(pack_blocking(b.sanitized()), Ordering::Relaxed);
    prev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_blocking_is_on_the_grid_and_in_range() {
        let b = derive_blocking();
        assert_eq!(b.mc % MR, 0);
        assert_eq!(b.nc % NR, 0);
        assert!(b.mc >= MR && b.mc <= MAX_BLOCK);
        assert!(b.kc >= 1 && b.kc <= 1024);
        assert!(b.nc >= NR && b.nc <= MAX_BLOCK);
    }

    #[test]
    fn current_blocking_is_cached_and_forcible() {
        let first = current_blocking();
        let prev = force_blocking(Blocking {
            mc: 17,
            kc: 13,
            nc: 9,
        });
        assert_eq!(prev, first);
        let forced = current_blocking();
        // Sanitized onto the MR/NR grid.
        assert_eq!(
            forced,
            Blocking {
                mc: 24,
                kc: 13,
                nc: 12
            }
        );
        force_blocking(prev);
        assert_eq!(current_blocking(), first);
    }

    #[test]
    fn sanitize_clamps_degenerate_and_huge_values() {
        let b = Blocking {
            mc: 0,
            kc: 0,
            nc: 0,
        }
        .sanitized();
        assert_eq!(
            b,
            Blocking {
                mc: MR,
                kc: 1,
                nc: NR
            }
        );
        let b = Blocking {
            mc: usize::MAX,
            kc: usize::MAX,
            nc: usize::MAX,
        }
        .sanitized();
        assert!(b.mc <= MAX_BLOCK + MR && b.kc <= MAX_BLOCK && b.nc <= MAX_BLOCK + NR);
        // Round-trips through the packed atomic without truncation.
        assert_eq!(unpack_blocking(pack_blocking(b)), Some(b));
    }

    #[test]
    fn detected_caches_are_plausible() {
        let (l1, l2, l3) = detected_caches();
        assert!(l1 >= 4 * 1024 && l1 <= 1 << 24);
        assert!(l2 >= 64 * 1024 && l2 <= 1 << 28);
        assert!(l3 >= 256 * 1024 && l3 <= 1 << 32);
    }
}
