//! Symmetric eigendecomposition (the `dsyevx` replacement).
//!
//! The Tucker algorithms need the leading `Rn` eigenvectors of the `In × In`
//! Gram matrix `S = Y(n) Y(n)ᵀ` (paper Alg. 1 line 6, Alg. 2 line 7, Alg. 5
//! line 5). The paper assumes `In ≤ 2000`, so a dense solver is appropriate.
//!
//! The default path is the classical two-stage approach:
//! 1. Householder reduction to symmetric tridiagonal form, accumulating the
//!    orthogonal transform.
//! 2. Implicit-shift QL iteration on the tridiagonal matrix.
//!
//! A cyclic Jacobi solver is also provided as an independent reference; the
//! test suite cross-validates the two.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition.
///
/// Satisfies `A ≈ V · diag(values) · Vᵀ`, where column `j` of `vectors` is the
/// eigenvector for `values[j]`.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues.
    pub values: Vec<f64>,
    /// Eigenvectors, stored column-wise (column `j` pairs with `values[j]`).
    pub vectors: Matrix,
}

impl SymEig {
    /// Returns the eigenvectors associated with the `r` largest eigenvalues as
    /// an `n × r` matrix (assuming `values` are sorted descending).
    pub fn leading_vectors(&self, r: usize) -> Matrix {
        let n = self.vectors.rows();
        let r = r.min(self.vectors.cols());
        Matrix::from_fn(n, r, |i, j| self.vectors.get(i, j))
    }
}

/// Householder tridiagonalization of a symmetric matrix.
///
/// Returns `(diag, offdiag, q)` where `q` is the accumulated orthogonal matrix
/// such that `A = Q · T · Qᵀ` with `T` tridiagonal.
fn tridiagonalize(a: &Matrix) -> (Vec<f64>, Vec<f64>, Matrix) {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "tridiagonalize: matrix must be square");
    // Work on a copy in a flat Vec<Vec<f64>>-free layout.
    let mut z = a.clone();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n];

    // Householder reduction (adapted from the classical tred2 routine).
    for i in (1..n).rev() {
        let l = i;
        let mut h = 0.0;
        let mut scale = 0.0;
        if l > 1 {
            for k in 0..l {
                scale += z.get(i, k).abs();
            }
            if scale == 0.0 {
                e[i] = z.get(i, l - 1);
            } else {
                for k in 0..l {
                    let v = z.get(i, k) / scale;
                    z.set(i, k, v);
                    h += v * v;
                }
                let mut f = z.get(i, l - 1);
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z.set(i, l - 1, f - g);
                f = 0.0;
                for j in 0..l {
                    z.set(j, i, z.get(i, j) / h);
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z.get(j, k) * z.get(i, k);
                    }
                    for k in j + 1..l {
                        g += z.get(k, j) * z.get(i, k);
                    }
                    e[j] = g / h;
                    f += e[j] * z.get(i, j);
                }
                let hh = f / (h + h);
                for j in 0..l {
                    let fj = z.get(i, j);
                    let gj = e[j] - hh * fj;
                    e[j] = gj;
                    for k in 0..=j {
                        let v = z.get(j, k) - (fj * e[k] + gj * z.get(i, k));
                        z.set(j, k, v);
                    }
                }
            }
        } else {
            e[i] = z.get(i, l - 1);
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate transformation.
    for i in 0..n {
        let l = i;
        if d[i] != 0.0 {
            for j in 0..l {
                let mut g = 0.0;
                for k in 0..l {
                    g += z.get(i, k) * z.get(k, j);
                }
                for k in 0..l {
                    let v = z.get(k, j) - g * z.get(k, i);
                    z.set(k, j, v);
                }
            }
        }
        d[i] = z.get(i, i);
        z.set(i, i, 1.0);
        for j in 0..l {
            z.set(j, i, 0.0);
            z.set(i, j, 0.0);
        }
    }
    (d, e, z)
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix, accumulating
/// the rotations into `z` (adapted from the classical tql2 routine).
fn tql2(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<(), String> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find small subdiagonal element.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(format!("tql2: no convergence for eigenvalue {l}"));
            }
            // Form shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate eigenvectors.
                for k in 0..n {
                    f = z.get(k, i + 1);
                    z.set(k, i + 1, s * z.get(k, i) + c * f);
                    z.set(k, i, c * z.get(k, i) - s * f);
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Full symmetric eigendecomposition with eigenvalues in **ascending** order.
///
/// # Panics
/// Panics if `a` is not square. Returns an error string if the QL iteration
/// fails to converge (extremely unusual for symmetric input).
pub fn sym_eig(a: &Matrix) -> SymEig {
    let n = a.rows();
    assert_eq!(n, a.cols(), "sym_eig: matrix must be square");
    if n == 0 {
        return SymEig {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        };
    }
    if n == 1 {
        return SymEig {
            values: vec![a.get(0, 0)],
            vectors: Matrix::identity(1),
        };
    }
    let (mut d, mut e, mut z) = tridiagonalize(a);
    if tql2(&mut d, &mut e, &mut z).is_err() {
        // Fall back to the (slower but very robust) Jacobi solver.
        return jacobi_eig(a);
    }
    // Sort ascending (tql2 output is not guaranteed sorted).
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| z.get(i, idx[j]));
    SymEig { values, vectors }
}

/// Symmetric eigendecomposition with eigenvalues sorted **descending** — the
/// order required by the Tucker rank-selection rule (Alg. 1 line 5), which
/// discards trailing eigenvalues.
pub fn sym_eig_desc(a: &Matrix) -> SymEig {
    let mut asc = sym_eig(a);
    let n = asc.values.len();
    asc.values.reverse();
    let vectors = Matrix::from_fn(n, n, |i, j| asc.vectors.get(i, n - 1 - j));
    SymEig {
        values: asc.values,
        vectors,
    }
}

/// Cyclic Jacobi eigenvalue algorithm (ascending order). Slower than the
/// tridiagonal path but essentially bulletproof; used as a fallback and as an
/// independent reference in tests.
pub fn jacobi_eig(a: &Matrix) -> SymEig {
    let n = a.rows();
    assert_eq!(n, a.cols(), "jacobi_eig: matrix must be square");
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() <= 1e-14 * (1.0 + m.frob_norm()) {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation to rows/cols p and q of M.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    let mut d: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap());
    d = idx.iter().map(|&i| m.get(i, i)).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v.get(i, idx[j]));
    SymEig { values: d, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Transpose};
    use crate::syrk::syrk;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symmetric(rng: &mut StdRng, n: usize) -> Matrix {
        let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let at = a.transpose();
        let mut s = a.add(&at);
        s.scale(0.5);
        s
    }

    fn reconstruction_error(a: &Matrix, eig: &SymEig) -> f64 {
        let n = a.rows();
        let d = Matrix::from_fn(n, n, |i, j| if i == j { eig.values[i] } else { 0.0 });
        let vd = gemm(Transpose::No, Transpose::No, 1.0, &eig.vectors, &d);
        let rec = gemm(Transpose::No, Transpose::Yes, 1.0, &vd, &eig.vectors);
        a.sub(&rec).frob_norm() / (1.0 + a.frob_norm())
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let e = sym_eig(&a);
        for (i, v) in e.values.iter().enumerate() {
            assert!((v - (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = sym_eig(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstructs_random_symmetric() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [2usize, 5, 13, 40, 80] {
            let a = random_symmetric(&mut rng, n);
            let e = sym_eig(&a);
            assert!(
                reconstruction_error(&a, &e) < 1e-10,
                "reconstruction failed for n={n}"
            );
            assert!(e.vectors.has_orthonormal_columns(1e-9));
        }
    }

    #[test]
    fn ascending_order() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = random_symmetric(&mut rng, 25);
        let e = sym_eig(&a);
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn descending_variant_matches() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_symmetric(&mut rng, 15);
        let asc = sym_eig(&a);
        let desc = sym_eig_desc(&a);
        for w in desc.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!((asc.values[14] - desc.values[0]).abs() < 1e-12);
        assert!(reconstruction_error(&a, &desc) < 1e-10);
    }

    #[test]
    fn jacobi_agrees_with_ql() {
        let mut rng = StdRng::seed_from_u64(24);
        let a = random_symmetric(&mut rng, 20);
        let e1 = sym_eig(&a);
        let e2 = jacobi_eig(&a);
        for (x, y) in e1.values.iter().zip(e2.values.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
        assert!(reconstruction_error(&a, &e2) < 1e-9);
    }

    #[test]
    fn gram_matrix_eigenvalues_are_nonnegative() {
        let mut rng = StdRng::seed_from_u64(25);
        let a = Matrix::from_fn(30, 12, |_, _| rng.gen_range(-1.0..1.0));
        let s = syrk(&a);
        let e = sym_eig_desc(&s);
        for &v in &e.values {
            assert!(v > -1e-9, "Gram eigenvalue should be nonnegative: {v}");
        }
        // Rank of A·Aᵀ is at most 12: eigenvalues beyond index 11 are ~0.
        for &v in &e.values[12..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn leading_vectors_shape_and_orthonormality() {
        let mut rng = StdRng::seed_from_u64(26);
        let a = random_symmetric(&mut rng, 18);
        let e = sym_eig_desc(&a);
        let u = e.leading_vectors(5);
        assert_eq!(u.shape(), (18, 5));
        assert!(u.has_orthonormal_columns(1e-9));
    }

    #[test]
    fn leading_vectors_clamps_to_n() {
        let a = Matrix::identity(3);
        let e = sym_eig_desc(&a);
        let u = e.leading_vectors(10);
        assert_eq!(u.shape(), (3, 3));
    }

    #[test]
    fn empty_and_single() {
        let e = sym_eig(&Matrix::zeros(0, 0));
        assert!(e.values.is_empty());
        let a = Matrix::from_vec(1, 1, vec![7.5]);
        let e = sym_eig(&a);
        assert_eq!(e.values, vec![7.5]);
        assert_eq!(e.vectors.get(0, 0), 1.0);
    }

    #[test]
    fn repeated_eigenvalues() {
        // 3x3 with a double eigenvalue: diag(2,2,5) rotated.
        let mut rng = StdRng::seed_from_u64(27);
        let q = {
            // random orthogonal via QR of random matrix
            let m = Matrix::from_fn(3, 3, |_, _| rng.gen_range(-1.0..1.0));
            crate::qr::householder_qr(&m).q
        };
        let d = Matrix::from_fn(3, 3, |i, j| {
            if i == j {
                if i < 2 {
                    2.0
                } else {
                    5.0
                }
            } else {
                0.0
            }
        });
        let qd = gemm(Transpose::No, Transpose::No, 1.0, &q, &d);
        let a = gemm(Transpose::No, Transpose::Yes, 1.0, &qd, &q);
        let e = sym_eig(&a);
        assert!((e.values[0] - 2.0).abs() < 1e-9);
        assert!((e.values[1] - 2.0).abs() < 1e-9);
        assert!((e.values[2] - 5.0).abs() < 1e-9);
        assert!(reconstruction_error(&a, &e) < 1e-9);
    }
}
