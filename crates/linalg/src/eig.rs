//! Symmetric eigendecomposition (the `dsyevx` replacement).
//!
//! The Tucker algorithms need the leading `Rn` eigenvectors of the `In × In`
//! Gram matrix `S = Y(n) Y(n)ᵀ` (paper Alg. 1 line 6, Alg. 2 line 7, Alg. 5
//! line 5). The paper assumes `In ≤ 2000`, so a dense solver is appropriate.
//!
//! Two paths share the public entry point:
//!
//! * `n ≤ EIG_BLOCKED_MIN`: the classical two-stage approach — Householder
//!   reduction to tridiagonal form, then implicit-shift QL iteration
//!   ([`sym_eig_unblocked`]). This is also the pinned pre-blocking baseline.
//! * `n > EIG_BLOCKED_MIN`: the **same two-stage algorithm restructured so
//!   its Level-3 flops flow through the packed microkernels**. A blocked
//!   tridiagonalization factors [`EIG_BLOCK`] reflectors per panel
//!   (latrd-style): each panel accumulates the reflectors `V` and the update
//!   vectors `W` lazily, then the trailing matrix takes one rank-`2·EIG_BLOCK`
//!   two-sided update `M ← M − V·Wᵀ − W·Vᵀ` as two [`crate::gemm`] calls.
//!   The tridiagonal problem is then solved by a QL variant whose Givens
//!   rotations sweep contiguous *rows* of a transposed eigenvector store
//!   ([`tql2_rows`]), and the eigenvectors are back-transformed by applying
//!   the panels' compact-WY products `I − V·T·Vᵀ` in reverse order with
//!   three GEMMs per panel — the same `T` recurrence the blocked QR uses.
//!
//! A cyclic scalar Jacobi solver is also provided as an independent
//! reference (and as the fallback on the rare QL non-convergence); the test
//! suite cross-validates all paths.
//!
//! # Determinism contract
//!
//! The blocked recurrence is stated executably by [`sym_eig_reference`]: a
//! restatement with plain `Vec` storage and
//! [`crate::gemm::gemm_slices_reference`] for every Level-3 update, which the
//! production path must match **bit for bit**. The scalar panel recurrence
//! ([`tridiag_factor_panel`]) and the QL iteration ([`tql2_rows`]) are pinned
//! leaf helpers shared verbatim by both. Because the GEMM contract already
//! pins bits across SIMD tiers, `MC/KC/NC` blocking (including `TUCKER_BLOCK`
//! overrides), and thread counts, the eigendecomposition bits inherit the
//! same invariances. [`EIG_BLOCK`] itself is a fixed constant, never
//! autotuned.

use crate::gemm::{gemm_slices_ctx, Transpose};
use crate::matrix::Matrix;
use crate::pack::with_scratch;
use tucker_exec::ExecContext;
use tucker_obs::metrics::Counter;

/// Total `sym_eig` invocations (either path).
pub static EIG_CALLS: Counter = Counter::new("linalg.eig.calls");
/// Nominal flops of those calls, `9n³` per call — the standard accounting
/// for a full symmetric eigendecomposition with eigenvectors.
pub static EIG_FLOPS: Counter = Counter::new("linalg.eig.flops");

/// Panel width of the blocked tridiagonalization (reflectors factored per
/// trailing update). Fixed — part of the determinism contract, never
/// autotuned.
pub const EIG_BLOCK: usize = 32;

/// Largest `n` still solved by the scalar two-stage path. Above this the
/// blocked tridiagonalization takes over. Fixed — part of the determinism
/// contract.
pub const EIG_BLOCKED_MIN: usize = 128;

/// Result of a symmetric eigendecomposition.
///
/// Satisfies `A ≈ V · diag(values) · Vᵀ`, where column `j` of `vectors` is the
/// eigenvector for `values[j]`.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues.
    pub values: Vec<f64>,
    /// Eigenvectors, stored column-wise (column `j` pairs with `values[j]`).
    pub vectors: Matrix,
}

impl SymEig {
    /// Returns the eigenvectors associated with the `r` largest eigenvalues as
    /// an `n × r` matrix (assuming `values` are sorted descending).
    pub fn leading_vectors(&self, r: usize) -> Matrix {
        let n = self.vectors.rows();
        let r = r.min(self.vectors.cols());
        let mut out = Matrix::zeros(n, r);
        for i in 0..n {
            out.row_mut(i).copy_from_slice(&self.vectors.row(i)[..r]);
        }
        out
    }
}

/// Householder tridiagonalization of a symmetric matrix.
///
/// Returns `(diag, offdiag, q)` where `q` is the accumulated orthogonal matrix
/// such that `A = Q · T · Qᵀ` with `T` tridiagonal.
fn tridiagonalize(a: &Matrix) -> (Vec<f64>, Vec<f64>, Matrix) {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "tridiagonalize: matrix must be square");
    // Work on a copy in a flat Vec<Vec<f64>>-free layout.
    let mut z = a.clone();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n];

    // Householder reduction (adapted from the classical tred2 routine).
    for i in (1..n).rev() {
        let l = i;
        let mut h = 0.0;
        let mut scale = 0.0;
        if l > 1 {
            for k in 0..l {
                scale += z.get(i, k).abs();
            }
            if scale == 0.0 {
                e[i] = z.get(i, l - 1);
            } else {
                for k in 0..l {
                    let v = z.get(i, k) / scale;
                    z.set(i, k, v);
                    h += v * v;
                }
                let mut f = z.get(i, l - 1);
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z.set(i, l - 1, f - g);
                f = 0.0;
                for j in 0..l {
                    z.set(j, i, z.get(i, j) / h);
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z.get(j, k) * z.get(i, k);
                    }
                    for k in j + 1..l {
                        g += z.get(k, j) * z.get(i, k);
                    }
                    e[j] = g / h;
                    f += e[j] * z.get(i, j);
                }
                let hh = f / (h + h);
                for j in 0..l {
                    let fj = z.get(i, j);
                    let gj = e[j] - hh * fj;
                    e[j] = gj;
                    for k in 0..=j {
                        let v = z.get(j, k) - (fj * e[k] + gj * z.get(i, k));
                        z.set(j, k, v);
                    }
                }
            }
        } else {
            e[i] = z.get(i, l - 1);
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate transformation.
    for i in 0..n {
        let l = i;
        if d[i] != 0.0 {
            for j in 0..l {
                let mut g = 0.0;
                for k in 0..l {
                    g += z.get(i, k) * z.get(k, j);
                }
                for k in 0..l {
                    let v = z.get(k, j) - g * z.get(k, i);
                    z.set(k, j, v);
                }
            }
        }
        d[i] = z.get(i, i);
        z.set(i, i, 1.0);
        for j in 0..l {
            z.set(j, i, 0.0);
            z.set(i, j, 0.0);
        }
    }
    (d, e, z)
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix, accumulating
/// the rotations into `z` (adapted from the classical tql2 routine).
fn tql2(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<(), String> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find small subdiagonal element.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(format!("tql2: no convergence for eigenvalue {l}"));
            }
            // Form shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate eigenvectors.
                for k in 0..n {
                    f = z.get(k, i + 1);
                    z.set(k, i + 1, s * z.get(k, i) + c * f);
                    z.set(k, i, c * z.get(k, i) - s * f);
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Full symmetric eigendecomposition with eigenvalues in **ascending** order.
///
/// Dispatches to the blocked tridiagonalization path for `n > EIG_BLOCKED_MIN`
/// (see module docs); results are bit-identical to [`sym_eig_reference`]
/// either way.
///
/// # Panics
/// Panics if `a` is not square.
pub fn sym_eig(a: &Matrix) -> SymEig {
    sym_eig_ctx(ExecContext::global(), a)
}

/// [`sym_eig`] with an explicit execution context for the Level-3 updates.
/// The context only affects scheduling, never bits.
pub fn sym_eig_ctx(ctx: &ExecContext, a: &Matrix) -> SymEig {
    let n = a.rows();
    assert_eq!(n, a.cols(), "sym_eig: matrix must be square");
    EIG_CALLS.add(1);
    let nf = n as f64;
    EIG_FLOPS.add((9.0 * nf * nf * nf) as u64);
    if n <= EIG_BLOCKED_MIN {
        sym_eig_unblocked(a)
    } else {
        sym_eig_blocked(ctx, a)
    }
}

/// The pre-blocking scalar path: Householder tridiagonalization +
/// implicit-shift QL (cyclic Jacobi fallback on the rare QL non-convergence).
///
/// This is both the direct path for `n ≤ EIG_BLOCKED_MIN` and the pinned
/// pre-blocking baseline the benchmark gate compares the blocked path
/// against.
pub fn sym_eig_unblocked(a: &Matrix) -> SymEig {
    let n = a.rows();
    assert_eq!(n, a.cols(), "sym_eig: matrix must be square");
    if n == 0 {
        return SymEig {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        };
    }
    if n == 1 {
        return SymEig {
            values: vec![a.get(0, 0)],
            vectors: Matrix::identity(1),
        };
    }
    let (mut d, mut e, mut z) = tridiagonalize(a);
    if tql2(&mut d, &mut e, &mut z).is_err() {
        // Fall back to the (slower but very robust) Jacobi solver.
        return jacobi_eig(a);
    }
    // Sort ascending (tql2 output is not guaranteed sorted).
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| z.get(i, idx[j]));
    SymEig { values, vectors }
}

/// Symmetric eigendecomposition with eigenvalues sorted **descending** — the
/// order required by the Tucker rank-selection rule (Alg. 1 line 5), which
/// discards trailing eigenvalues.
pub fn sym_eig_desc(a: &Matrix) -> SymEig {
    let mut asc = sym_eig(a);
    let n = asc.values.len();
    asc.values.reverse();
    let vectors = Matrix::from_fn(n, n, |i, j| asc.vectors.get(i, n - 1 - j));
    SymEig {
        values: asc.values,
        vectors,
    }
}

/// Factors reflector columns `j0..j1` of the (lazily updated) symmetric
/// iterate `m` into `V`, `W`, `T`, and the subdiagonal `e` — the scalar panel
/// recurrence of the blocked tridiagonalization, shared verbatim by the
/// production path and [`sym_eig_reference`].
///
/// Reflector `j` (`jj = j − j0`, length `n − 1 − j`, convention
/// `H = I − 2vvᵀ` with unit-norm `v` exactly as in the blocked QR) eliminates
/// column `j` below the subdiagonal. `m` is **not** modified: the panel works
/// against the state before the panel's own reflectors, correcting gathered
/// columns and matvec results with the accumulated `V`/`W` columns instead
/// (the trailing update `M ← M − V·Wᵀ − W·Vᵀ` is applied by the caller once
/// per panel).
///
/// Storage: `v` is row-major `n × kv` (`kv = n − 1`, reflector `j` in column
/// `j`, explicit zeros in rows `0..=j`); `w` is row-major `n × EIG_BLOCK`
/// (panel-local column `jj`, explicit zeros in rows `0..=j`), holding
/// `w_j = 2·(M̃·v_j − (v_jᵀM̃v_j)·v_j)` over the trailing rows, `M̃` the
/// lazily corrected iterate; `t` is the panel's row-major
/// `EIG_BLOCK × EIG_BLOCK` compact-WY accumulator with the same recurrence as
/// the blocked QR (`T[0..jj][jj] = −2·T·(Vᵀv_j)`, diagonal `2`, `0` for a
/// zero column, sub-diagonal exact zeros), so
/// `H_{j0}·…·H_{j1−1} = I − V·T·Vᵀ` holds inductively. `x`/`u` are `n`-length
/// gather scratch, `wv`/`vv` are `EIG_BLOCK`-length.
///
/// Per column `j`:
///
/// 1. `x` ← column `j` of `m` below the diagonal, minus
///    `V[r]·W[j] + W[r]·V[j]` contributions from panel columns `0..jj`
///    (applied unconditionally — no value-dependent skips, so bits never
///    depend on data).
/// 2. Householder: shift by `sign·‖x‖₂`, renormalize to unit norm; an
///    exactly-zero column yields `v_j = 0` (identity reflector).
///    `e[j] = −sign·‖x‖₂` (the gathered `x[0]` for a zero column).
/// 3. `u` ← `M̃·v_j`: row-contiguous matvec against `m`'s trailing rows,
///    corrected by `V·(Wᵀv_j) + W·(Vᵀv_j)` through `wv`/`vv`.
/// 4. `w_j = 2·(u − (v_jᵀu)·v_j)`, scattered into `w`; `Vᵀv_j` (already in
///    `vv`) feeds the `T` column.
fn tridiag_factor_panel(
    m: &Matrix,
    j0: usize,
    j1: usize,
    kv: usize,
    v: &mut [f64],
    w: &mut [f64],
    t: &mut [f64],
    e: &mut [f64],
    x: &mut [f64],
    u: &mut [f64],
    wv: &mut [f64],
    vv: &mut [f64],
) {
    let n = m.rows();
    let nb = EIG_BLOCK;
    let pn = j1 - j0;
    for j in j0..j1 {
        let jj = j - j0;
        let l = n - 1 - j;
        let xj = &mut x[..l];
        // 1. Gather column j below the diagonal, then apply the panel's
        // pending rank-2 updates to it.
        for (i, xi) in xj.iter_mut().enumerate() {
            *xi = m.get(j + 1 + i, j);
        }
        for c in 0..jj {
            let wj = w[j * nb + c];
            let vj = v[j * kv + (j0 + c)];
            for (i, xi) in xj.iter_mut().enumerate() {
                let r = j + 1 + i;
                *xi -= v[r * kv + (j0 + c)] * wj + w[r * nb + c] * vj;
            }
        }
        // 2. Householder vector, exactly as in the blocked QR panel.
        let x0 = xj[0];
        let alpha = crate::blas1::nrm2(xj);
        let mut zero = alpha == 0.0;
        let mut sign = 1.0;
        if !zero {
            sign = if xj[0] >= 0.0 { 1.0 } else { -1.0 };
            xj[0] += sign * alpha;
            let vnorm = crate::blas1::nrm2(xj);
            if vnorm == 0.0 {
                zero = true;
            } else {
                for xi in xj.iter_mut() {
                    *xi /= vnorm;
                }
            }
        }
        if zero {
            xj.fill(0.0);
        }
        e[j] = if zero { x0 } else { -sign * alpha };
        // 3. u = M̃·v_j over the trailing block: row-contiguous matvec, then
        // the lazy correction u ← u − V·(Wᵀv_j) − W·(Vᵀv_j).
        let uj = &mut u[..l];
        for (i, ui) in uj.iter_mut().enumerate() {
            let row = &m.row(j + 1 + i)[j + 1..];
            let mut acc = 0.0;
            for (k, &xk) in xj.iter().enumerate() {
                acc += row[k] * xk;
            }
            *ui = acc;
        }
        for c in 0..jj {
            let mut aw = 0.0;
            let mut av = 0.0;
            for (i, &xi) in xj.iter().enumerate() {
                let r = j + 1 + i;
                aw += w[r * nb + c] * xi;
                av += v[r * kv + (j0 + c)] * xi;
            }
            wv[c] = aw;
            vv[c] = av;
        }
        for c in 0..jj {
            let wvc = wv[c];
            let vvc = vv[c];
            for (i, ui) in uj.iter_mut().enumerate() {
                let r = j + 1 + i;
                *ui -= v[r * kv + (j0 + c)] * wvc + w[r * nb + c] * vvc;
            }
        }
        // 4. w_j = 2·(u − (v_jᵀu)·v_j).
        let mut vu = 0.0;
        for (&xi, &ui) in xj.iter().zip(uj.iter()) {
            vu += xi * ui;
        }
        for (i, ui) in uj.iter_mut().enumerate() {
            *ui = 2.0 * (*ui - vu * xj[i]);
        }
        // Scatter v_j and w_j (explicit zeros above their start row).
        for r in 0..=j {
            v[r * kv + j] = 0.0;
        }
        for (i, &xi) in xj.iter().enumerate() {
            v[(j + 1 + i) * kv + j] = xi;
        }
        for r in 0..=j {
            w[r * nb + jj] = 0.0;
        }
        for (i, &ui) in uj.iter().enumerate() {
            w[(j + 1 + i) * nb + jj] = ui;
        }
        // T column jj against vv = Vᵀv_j — the blocked-QR recurrence.
        for row in 0..jj {
            let mut acc = 0.0;
            for c in row..jj {
                acc += t[row * nb + c] * vv[c];
            }
            t[row * nb + jj] = -2.0 * acc;
        }
        t[jj * nb + jj] = if zero { 0.0 } else { 2.0 };
        for row in jj + 1..pn {
            t[row * nb + jj] = 0.0;
        }
    }
}

/// Implicit-shift QL on a symmetric tridiagonal matrix with the rotations
/// applied to contiguous **rows** of the transposed eigenvector store `zt`
/// (`zt[i·n + k]` = component `k` of eigenvector `i`; caller initializes to
/// identity). Unlike [`tql2`], `e[j]` is already the coupling `(j, j+1)` on
/// entry (`e[n−1] = 0`) — no initial shift. Arithmetic per element is
/// otherwise identical to the classical recurrence; a pinned leaf helper
/// shared by the production blocked path and [`sym_eig_reference`].
fn tql2_rows(d: &mut [f64], e: &mut [f64], zt: &mut [f64]) -> Result<(), String> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find small subdiagonal element.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(format!("tql2_rows: no convergence for eigenvalue {l}"));
            }
            // Form shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Rotate eigenvector rows i and i+1 — contiguous in zt.
                let (lo, hi) = zt.split_at_mut((i + 1) * n);
                let ri = &mut lo[i * n..];
                let ri1 = &mut hi[..n];
                for k in 0..n {
                    f = ri1[k];
                    ri1[k] = s * ri[k] + c * f;
                    ri[k] = c * ri[k] - s * f;
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// The blocked tridiagonalization path (`n > EIG_BLOCKED_MIN`). See module
/// docs; the recurrence is restated executably by [`sym_eig_reference`].
fn sym_eig_blocked(ctx: &ExecContext, a: &Matrix) -> SymEig {
    let n = a.rows();
    let kv = n - 1;
    let nb = EIG_BLOCK;
    let np = kv.div_ceil(nb);
    let mut m = a.clone();
    let result = with_scratch(
        [
            n * kv,
            n * nb,
            np * nb * nb,
            n * n,
            n * n,
            nb * n,
            nb * n,
            n,
            n,
            nb,
            nb,
        ],
        |[vbuf, wbuf, tbuf, ztbuf, zqbuf, wk1, wk2, xbuf, ubuf, wv, vv]| {
            let mut d = vec![0.0f64; n];
            let mut e = vec![0.0f64; n];
            for panel in 0..np {
                let j0 = panel * nb;
                let j1 = (j0 + nb).min(kv);
                let pn = j1 - j0;
                let t = &mut tbuf[panel * nb * nb..(panel + 1) * nb * nb];
                tridiag_factor_panel(&m, j0, j1, kv, vbuf, wbuf, t, &mut e, xbuf, ubuf, wv, vv);
                // Trailing two-sided update M ← M − V·Wᵀ − W·Vᵀ on rows/cols
                // j0+1.. (row/col j0 is untouched by this panel's reflectors,
                // and excluding it keeps the GEMMs free of all-zero V/W rows).
                let r0 = j0 + 1;
                let rows = n - r0;
                gemm_slices_ctx(
                    ctx,
                    Transpose::No,
                    Transpose::Yes,
                    -1.0,
                    &vbuf[r0 * kv + j0..],
                    rows,
                    pn,
                    kv,
                    &wbuf[r0 * nb..],
                    rows,
                    pn,
                    nb,
                    1.0,
                    &mut m.as_mut_slice()[r0 * n + r0..],
                    n,
                );
                gemm_slices_ctx(
                    ctx,
                    Transpose::No,
                    Transpose::Yes,
                    -1.0,
                    &wbuf[r0 * nb..],
                    rows,
                    pn,
                    nb,
                    &vbuf[r0 * kv + j0..],
                    rows,
                    pn,
                    kv,
                    1.0,
                    &mut m.as_mut_slice()[r0 * n + r0..],
                    n,
                );
            }
            // The tridiagonal T: diagonal from the fully updated iterate,
            // subdiagonal pinned by the panels.
            for (j, dj) in d.iter_mut().enumerate() {
                *dj = m.get(j, j);
            }
            e[n - 1] = 0.0;
            let zt = &mut ztbuf[..n * n];
            zt.fill(0.0);
            for i in 0..n {
                zt[i * n + i] = 1.0;
            }
            if tql2_rows(&mut d, &mut e, zt).is_err() {
                return None;
            }
            // Transpose back: zq column k = eigenvector k of T.
            let zq = &mut zqbuf[..n * n];
            for k in 0..n {
                for i in 0..n {
                    zq[i * n + k] = zt[k * n + i];
                }
            }
            // Back-transform Z ← Q·Z by applying the panels' compact-WY
            // products in reverse order: Z ← Z − V·(T·(VᵀZ)).
            for panel in (0..np).rev() {
                let j0 = panel * nb;
                let j1 = (j0 + nb).min(kv);
                let pn = j1 - j0;
                let rows = n - j0;
                let w1 = &mut wk1[..pn * n];
                gemm_slices_ctx(
                    ctx,
                    Transpose::Yes,
                    Transpose::No,
                    1.0,
                    &vbuf[j0 * kv + j0..],
                    rows,
                    pn,
                    kv,
                    &zq[j0 * n..],
                    rows,
                    n,
                    n,
                    0.0,
                    w1,
                    n,
                );
                let w2 = &mut wk2[..pn * n];
                gemm_slices_ctx(
                    ctx,
                    Transpose::No,
                    Transpose::No,
                    1.0,
                    &tbuf[panel * nb * nb..],
                    pn,
                    pn,
                    nb,
                    &wk1[..pn * n],
                    pn,
                    n,
                    n,
                    0.0,
                    w2,
                    n,
                );
                gemm_slices_ctx(
                    ctx,
                    Transpose::No,
                    Transpose::No,
                    -1.0,
                    &vbuf[j0 * kv + j0..],
                    rows,
                    pn,
                    kv,
                    &wk2[..pn * n],
                    pn,
                    n,
                    n,
                    1.0,
                    &mut zq[j0 * n..],
                    n,
                );
            }
            // Sort ascending (pure selection, no arithmetic).
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap());
            let values: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
            let vectors = Matrix::from_fn(n, n, |i, j| zq[i * n + idx[j]]);
            Some(SymEig { values, vectors })
        },
    );
    // QL failed to converge (pathological input): same fallback as the
    // scalar path.
    result.unwrap_or_else(|| jacobi_eig(a))
}

/// Executable statement of the blocked-eigendecomposition determinism
/// contract.
///
/// Restates the blocked path with plain `Vec` storage and
/// [`crate::gemm::gemm_slices_reference`] for every Level-3 update. The
/// pinned scalar leaves are shared verbatim: the small-problem path *is* the
/// pre-blocking scalar solver ([`sym_eig_unblocked`]), the panel recurrence
/// is [`tridiag_factor_panel`], the tridiagonal solve is [`tql2_rows`], and
/// the QL-failure fallback is [`jacobi_eig`]. The production [`sym_eig`]
/// must match this function bit for bit on every input, every SIMD tier,
/// every `TUCKER_BLOCK` setting, and every thread count.
pub fn sym_eig_reference(a: &Matrix) -> SymEig {
    use crate::gemm::gemm_slices_reference;
    let n = a.rows();
    assert_eq!(n, a.cols(), "sym_eig: matrix must be square");
    if n <= EIG_BLOCKED_MIN {
        return sym_eig_unblocked(a);
    }
    let kv = n - 1;
    let nb = EIG_BLOCK;
    let np = kv.div_ceil(nb);
    let mut m = a.clone();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n];
    let mut v = vec![0.0f64; n * kv];
    let mut w = vec![0.0f64; n * nb];
    let mut tmat = vec![0.0f64; np * nb * nb];
    let mut x = vec![0.0f64; n];
    let mut u = vec![0.0f64; n];
    let mut wv = vec![0.0f64; nb];
    let mut vv = vec![0.0f64; nb];
    for panel in 0..np {
        let j0 = panel * nb;
        let j1 = (j0 + nb).min(kv);
        let pn = j1 - j0;
        let t = &mut tmat[panel * nb * nb..(panel + 1) * nb * nb];
        tridiag_factor_panel(
            &m, j0, j1, kv, &mut v, &mut w, t, &mut e, &mut x, &mut u, &mut wv, &mut vv,
        );
        let r0 = j0 + 1;
        let rows = n - r0;
        gemm_slices_reference(
            Transpose::No,
            Transpose::Yes,
            -1.0,
            &v[r0 * kv + j0..],
            rows,
            pn,
            kv,
            &w[r0 * nb..],
            rows,
            pn,
            nb,
            1.0,
            &mut m.as_mut_slice()[r0 * n + r0..],
            n,
        );
        gemm_slices_reference(
            Transpose::No,
            Transpose::Yes,
            -1.0,
            &w[r0 * nb..],
            rows,
            pn,
            nb,
            &v[r0 * kv + j0..],
            rows,
            pn,
            kv,
            1.0,
            &mut m.as_mut_slice()[r0 * n + r0..],
            n,
        );
    }
    for (j, dj) in d.iter_mut().enumerate() {
        *dj = m.get(j, j);
    }
    e[n - 1] = 0.0;
    let mut zt = vec![0.0f64; n * n];
    for i in 0..n {
        zt[i * n + i] = 1.0;
    }
    if tql2_rows(&mut d, &mut e, &mut zt).is_err() {
        return jacobi_eig(a);
    }
    let mut zq = vec![0.0f64; n * n];
    for k in 0..n {
        for i in 0..n {
            zq[i * n + k] = zt[k * n + i];
        }
    }
    for panel in (0..np).rev() {
        let j0 = panel * nb;
        let j1 = (j0 + nb).min(kv);
        let pn = j1 - j0;
        let rows = n - j0;
        let mut w1 = vec![0.0f64; pn * n];
        gemm_slices_reference(
            Transpose::Yes,
            Transpose::No,
            1.0,
            &v[j0 * kv + j0..],
            rows,
            pn,
            kv,
            &zq[j0 * n..],
            rows,
            n,
            n,
            0.0,
            &mut w1,
            n,
        );
        let mut w2 = vec![0.0f64; pn * n];
        gemm_slices_reference(
            Transpose::No,
            Transpose::No,
            1.0,
            &tmat[panel * nb * nb..],
            pn,
            pn,
            nb,
            &w1,
            pn,
            n,
            n,
            0.0,
            &mut w2,
            n,
        );
        gemm_slices_reference(
            Transpose::No,
            Transpose::No,
            -1.0,
            &v[j0 * kv + j0..],
            rows,
            pn,
            kv,
            &w2,
            pn,
            n,
            n,
            1.0,
            &mut zq[j0 * n..],
            n,
        );
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| zq[i * n + idx[j]]);
    SymEig { values, vectors }
}

/// Cyclic Jacobi eigenvalue algorithm (ascending order). Slower than the
/// tridiagonal path but essentially bulletproof; used as a fallback and as an
/// independent reference in tests.
pub fn jacobi_eig(a: &Matrix) -> SymEig {
    let n = a.rows();
    assert_eq!(n, a.cols(), "jacobi_eig: matrix must be square");
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() <= 1e-14 * (1.0 + m.frob_norm()) {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation to rows/cols p and q of M.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    let mut d: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap());
    d = idx.iter().map(|&i| m.get(i, i)).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v.get(i, idx[j]));
    SymEig { values: d, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Transpose};
    use crate::syrk::syrk;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symmetric(rng: &mut StdRng, n: usize) -> Matrix {
        let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let at = a.transpose();
        let mut s = a.add(&at);
        s.scale(0.5);
        s
    }

    fn reconstruction_error(a: &Matrix, eig: &SymEig) -> f64 {
        let n = a.rows();
        let d = Matrix::from_fn(n, n, |i, j| if i == j { eig.values[i] } else { 0.0 });
        let vd = gemm(Transpose::No, Transpose::No, 1.0, &eig.vectors, &d);
        let rec = gemm(Transpose::No, Transpose::Yes, 1.0, &vd, &eig.vectors);
        a.sub(&rec).frob_norm() / (1.0 + a.frob_norm())
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let e = sym_eig(&a);
        for (i, v) in e.values.iter().enumerate() {
            assert!((v - (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = sym_eig(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstructs_random_symmetric() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [2usize, 5, 13, 40, 80] {
            let a = random_symmetric(&mut rng, n);
            let e = sym_eig(&a);
            assert!(
                reconstruction_error(&a, &e) < 1e-10,
                "reconstruction failed for n={n}"
            );
            assert!(e.vectors.has_orthonormal_columns(1e-9));
        }
    }

    #[test]
    fn ascending_order() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = random_symmetric(&mut rng, 25);
        let e = sym_eig(&a);
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn descending_variant_matches() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_symmetric(&mut rng, 15);
        let asc = sym_eig(&a);
        let desc = sym_eig_desc(&a);
        for w in desc.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!((asc.values[14] - desc.values[0]).abs() < 1e-12);
        assert!(reconstruction_error(&a, &desc) < 1e-10);
    }

    #[test]
    fn jacobi_agrees_with_ql() {
        let mut rng = StdRng::seed_from_u64(24);
        let a = random_symmetric(&mut rng, 20);
        let e1 = sym_eig(&a);
        let e2 = jacobi_eig(&a);
        for (x, y) in e1.values.iter().zip(e2.values.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
        assert!(reconstruction_error(&a, &e2) < 1e-9);
    }

    #[test]
    fn gram_matrix_eigenvalues_are_nonnegative() {
        let mut rng = StdRng::seed_from_u64(25);
        let a = Matrix::from_fn(30, 12, |_, _| rng.gen_range(-1.0..1.0));
        let s = syrk(&a);
        let e = sym_eig_desc(&s);
        for &v in &e.values {
            assert!(v > -1e-9, "Gram eigenvalue should be nonnegative: {v}");
        }
        // Rank of A·Aᵀ is at most 12: eigenvalues beyond index 11 are ~0.
        for &v in &e.values[12..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn leading_vectors_shape_and_orthonormality() {
        let mut rng = StdRng::seed_from_u64(26);
        let a = random_symmetric(&mut rng, 18);
        let e = sym_eig_desc(&a);
        let u = e.leading_vectors(5);
        assert_eq!(u.shape(), (18, 5));
        assert!(u.has_orthonormal_columns(1e-9));
    }

    #[test]
    fn leading_vectors_clamps_to_n() {
        let a = Matrix::identity(3);
        let e = sym_eig_desc(&a);
        let u = e.leading_vectors(10);
        assert_eq!(u.shape(), (3, 3));
    }

    #[test]
    fn empty_and_single() {
        let e = sym_eig(&Matrix::zeros(0, 0));
        assert!(e.values.is_empty());
        let a = Matrix::from_vec(1, 1, vec![7.5]);
        let e = sym_eig(&a);
        assert_eq!(e.values, vec![7.5]);
        assert_eq!(e.vectors.get(0, 0), 1.0);
    }

    fn assert_eig_bitwise_eq(x: &SymEig, y: &SymEig, what: &str) {
        assert_eq!(x.values.len(), y.values.len(), "{what}: value count");
        for (i, (a, b)) in x.values.iter().zip(y.values.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: value[{i}] {a} vs {b}");
        }
        assert_eq!(x.vectors.shape(), y.vectors.shape(), "{what}: V shape");
        for (i, (a, b)) in x
            .vectors
            .as_slice()
            .iter()
            .zip(y.vectors.as_slice().iter())
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: V[{i}] {a} vs {b}");
        }
    }

    #[test]
    fn blocked_path_reconstructs_and_is_orthonormal() {
        let mut rng = StdRng::seed_from_u64(28);
        for n in [150usize, 200] {
            let a = random_symmetric(&mut rng, n);
            let e = sym_eig(&a);
            assert!(
                reconstruction_error(&a, &e) < 1e-9,
                "blocked reconstruction failed for n={n}"
            );
            assert!(e.vectors.has_orthonormal_columns(1e-9));
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn blocked_path_on_gram_matrix() {
        // The representative Tucker workload: PSD Gram matrix, fast-decaying
        // spectrum, n past the blocked cutoff.
        let mut rng = StdRng::seed_from_u64(29);
        let a = Matrix::from_fn(160, 90, |_, _| rng.gen_range(-1.0..1.0));
        let s = syrk(&a);
        let e = sym_eig_desc(&s);
        assert!(reconstruction_error(&s, &e) < 1e-9);
        for &v in &e.values[90..] {
            assert!(v.abs() < 1e-8, "rank-deficient tail eigenvalue {v}");
        }
    }

    #[test]
    fn blocked_path_matches_the_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(30);
        // 150 is not a multiple of EIG_BLOCK: the last panel is ragged.
        for n in [150usize, 192] {
            let a = random_symmetric(&mut rng, n);
            let fast = sym_eig(&a);
            let refr = sym_eig_reference(&a);
            assert_eig_bitwise_eq(&fast, &refr, &format!("n={n}"));
        }
    }

    #[test]
    fn small_path_is_the_unblocked_solver_bitwise() {
        let mut rng = StdRng::seed_from_u64(34);
        let a = random_symmetric(&mut rng, 64);
        let fast = sym_eig(&a);
        let unb = sym_eig_unblocked(&a);
        assert_eig_bitwise_eq(&fast, &unb, "n=64");
        let refr = sym_eig_reference(&a);
        assert_eig_bitwise_eq(&refr, &unb, "reference n=64");
    }

    #[test]
    fn blocked_bits_are_invariant_to_gemm_blocking() {
        let mut rng = StdRng::seed_from_u64(35);
        let a = random_symmetric(&mut rng, 160);
        let base = sym_eig(&a);
        let prev = crate::blocking::force_blocking(crate::blocking::Blocking {
            mc: 16,
            kc: 16,
            nc: 16,
        });
        let shrunk = sym_eig(&a);
        crate::blocking::force_blocking(prev);
        assert_eig_bitwise_eq(&base, &shrunk, "TUCKER_BLOCK shrink");
    }

    #[test]
    fn blocked_agrees_with_unblocked_numerically() {
        let mut rng = StdRng::seed_from_u64(37);
        let a = random_symmetric(&mut rng, 150);
        let blocked = sym_eig(&a);
        let unb = sym_eig_unblocked(&a);
        for (x, y) in blocked.values.iter().zip(unb.values.iter()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn repeated_eigenvalues() {
        // 3x3 with a double eigenvalue: diag(2,2,5) rotated.
        let mut rng = StdRng::seed_from_u64(27);
        let q = {
            // random orthogonal via QR of random matrix
            let m = Matrix::from_fn(3, 3, |_, _| rng.gen_range(-1.0..1.0));
            crate::qr::householder_qr(&m).q
        };
        let d = Matrix::from_fn(3, 3, |i, j| {
            if i == j {
                if i < 2 {
                    2.0
                } else {
                    5.0
                }
            } else {
                0.0
            }
        });
        let qd = gemm(Transpose::No, Transpose::No, 1.0, &q, &d);
        let a = gemm(Transpose::No, Transpose::Yes, 1.0, &qd, &q);
        let e = sym_eig(&a);
        assert!((e.values[0] - 2.0).abs() < 1e-9);
        assert!((e.values[1] - 2.0).abs() < 1e-9);
        assert!((e.values[2] - 5.0).abs() < 1e-9);
        assert!(reconstruction_error(&a, &e) < 1e-9);
    }
}
