//! Runtime SIMD tier selection for the packed GEMM/SYRK microkernels.
//!
//! The microkernels ([`crate::microkernel`]) are compiled in four tiers —
//! AVX-512, AVX2, SSE2, and portable scalar — and the tier is chosen **once
//! per process** at runtime:
//!
//! 1. `TUCKER_SIMD={auto,avx512,avx2,sse2,scalar}` requests a tier
//!    explicitly (`auto` and unset mean "best supported").
//! 2. The request is clamped to what the CPU supports
//!    (`is_x86_feature_detected!("avx512f")` / `("avx2")`; SSE2 is part of
//!    the `x86_64` baseline; non-x86 targets always run scalar). A request the host
//!    cannot honor falls back to the best supported tier with a one-time
//!    warning on stderr — it never aborts, so the fallback tiers stay
//!    testable on any machine.
//!
//! **The tier is invisible in the results.** Every tier implements the same
//! per-element accumulation contract (one running sum per output element, in
//! ascending contraction order, with no fused multiply-add), so outputs are
//! bit-identical across `TUCKER_SIMD` settings — CI checks this by running
//! the kernel and determinism suites under both `scalar` and `auto`, and the
//! in-process [`force_tier`] hook lets one test binary compare all supported
//! tiers directly.

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction-set tier a microkernel invocation executes with.
///
/// Ordering is meaningful: a numerically larger tier is a superset of the
/// smaller ones, and requested tiers are clamped downward to the detected
/// maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable scalar Rust; runs everywhere.
    Scalar = 1,
    /// 128-bit SSE2 (`x86_64` baseline).
    Sse2 = 2,
    /// 256-bit AVX2 (runtime-detected).
    Avx2 = 3,
    /// 512-bit AVX-512F (runtime-detected). Still no FMA — wider registers
    /// only hold more independent per-element accumulators, so the bits
    /// match the other tiers by construction.
    Avx512 = 4,
}

impl SimdTier {
    /// Lower-case tier name, as accepted by `TUCKER_SIMD`.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }

    /// Stable small integer for metrics/span args.
    pub fn id(self) -> u8 {
        self as u8
    }
}

/// `0` = not yet selected; otherwise a `SimdTier` discriminant.
static TIER: AtomicU8 = AtomicU8::new(0);

fn tier_from_u8(v: u8) -> Option<SimdTier> {
    match v {
        1 => Some(SimdTier::Scalar),
        2 => Some(SimdTier::Sse2),
        3 => Some(SimdTier::Avx2),
        4 => Some(SimdTier::Avx512),
        _ => None,
    }
}

/// The best tier the running CPU supports.
pub fn detected_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            SimdTier::Avx512
        } else if std::arch::is_x86_feature_detected!("avx2") {
            SimdTier::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline — always present.
            SimdTier::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdTier::Scalar
    }
}

fn select_from_env() -> SimdTier {
    let supported = detected_tier();
    let requested = match std::env::var("TUCKER_SIMD") {
        Ok(v) => v,
        Err(_) => return supported,
    };
    let requested = requested.trim().to_ascii_lowercase();
    let tier = match requested.as_str() {
        "" | "auto" => supported,
        "scalar" => SimdTier::Scalar,
        "sse2" => SimdTier::Sse2,
        "avx2" => SimdTier::Avx2,
        "avx512" => SimdTier::Avx512,
        other => {
            eprintln!(
                "tucker-linalg: TUCKER_SIMD={other:?} is not one of \
                 auto/avx512/avx2/sse2/scalar; using {}",
                supported.name()
            );
            supported
        }
    };
    if tier > supported {
        eprintln!(
            "tucker-linalg: TUCKER_SIMD={} is not supported by this CPU; using {}",
            tier.name(),
            supported.name()
        );
        return supported;
    }
    tier
}

/// The tier every microkernel invocation in this process uses.
///
/// Selected on first call from `TUCKER_SIMD` + CPU detection and cached;
/// [`force_tier`] can change it afterwards (tests and benches only).
pub fn current_tier() -> SimdTier {
    if let Some(t) = tier_from_u8(TIER.load(Ordering::Relaxed)) {
        return t;
    }
    let t = select_from_env();
    TIER.store(t.id(), Ordering::Relaxed);
    t
}

/// Forces the process-wide tier, for tests and benchmarks that compare tiers
/// within one process. Returns `false` (and changes nothing) when the host
/// CPU does not support `tier`.
///
/// Kernel calls racing with a `force_tier` may use either the old or the new
/// tier, but any *single* kernel invocation uses exactly one — and since all
/// tiers are bit-identical, results never depend on the race. Callers that
/// compare timings should still serialize around this (the bundled test
/// suites hold a mutex).
pub fn force_tier(tier: SimdTier) -> bool {
    if tier > detected_tier() {
        return false;
    }
    TIER.store(tier.id(), Ordering::Relaxed);
    true
}

/// Every tier the host CPU can execute, in ascending order — the iteration
/// set for cross-tier bit-equality tests.
pub fn supported_tiers() -> Vec<SimdTier> {
    let max = detected_tier();
    [
        SimdTier::Scalar,
        SimdTier::Sse2,
        SimdTier::Avx2,
        SimdTier::Avx512,
    ]
    .into_iter()
    .filter(|&t| t <= max)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detected_tier_is_at_least_the_baseline() {
        #[cfg(target_arch = "x86_64")]
        assert!(detected_tier() >= SimdTier::Sse2);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(detected_tier(), SimdTier::Scalar);
    }

    #[test]
    fn supported_tiers_are_ascending_and_end_at_detected() {
        let tiers = supported_tiers();
        assert!(!tiers.is_empty());
        assert!(tiers.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*tiers.last().unwrap(), detected_tier());
        assert_eq!(tiers[0], SimdTier::Scalar);
    }

    #[test]
    fn force_tier_rejects_unsupported_and_accepts_scalar() {
        // Scalar is supported everywhere.
        assert!(force_tier(SimdTier::Scalar));
        assert_eq!(current_tier(), SimdTier::Scalar);
        // Restore the detected tier for other tests in this binary.
        assert!(force_tier(detected_tier()));
        assert_eq!(current_tier(), detected_tier());
    }

    #[test]
    fn names_round_trip() {
        for t in [
            SimdTier::Scalar,
            SimdTier::Sse2,
            SimdTier::Avx2,
            SimdTier::Avx512,
        ] {
            assert!(!t.name().is_empty());
            assert!(t.id() >= 1 && t.id() <= 4);
            assert_eq!(tier_from_u8(t.id()), Some(t));
        }
        assert_eq!(tier_from_u8(0), None);
    }
}
